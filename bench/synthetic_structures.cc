/**
 * @file
 * Machine responses to pure dependence structures.
 *
 * Each synthetic workload pushes one property to an extreme (serial
 * chain, full independence, log-depth tree, pure WAW reuse, memory
 * stream, branch-gated loop); the table shows which machine
 * mechanism each structure isolates.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/codegen/synthetic.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Synthetic dependence structures, M11BR5\n"
        "(issue rates; DF = pure dataflow limit)\n\n");

    const MachineConfig cfg = configM11BR5();

    const std::vector<std::pair<const char *, DynTrace>> workloads = {
        { "serial chain (fadd)", synthetic::chain(400) },
        { "independent (fadd)", synthetic::independent(400) },
        { "reduction tree x8", synthetic::reductionTree(8) },
        { "WAW storm (fmul/and)", synthetic::wawStorm(400) },
        { "memory stream 70/30", synthetic::memoryStream(400) },
        { "loop, 6-op body", synthetic::loopPattern(6, 60) },
    };

    AsciiTable table;
    table.setHeader({ "Structure", "CRAY-like", "OOO w=4",
                      "Tomasulo", "RUU 4x64", "DF limit" });

    for (const auto &[name, trace] : workloads) {
        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, cfg);
        TomasuloSim tom({ 4, 2, BranchPolicy::kBlocking }, cfg);
        RuuSim ruu({ 4, 64, BusKind::kPerUnit }, cfg);
        table.addRow({
            name,
            AsciiTable::num(cray.run(trace).issueRate()),
            AsciiTable::num(ooo.run(trace).issueRate()),
            AsciiTable::num(tom.run(trace).issueRate()),
            AsciiTable::num(ruu.run(trace).issueRate()),
            AsciiTable::num(computeLimits(trace, cfg).actualRate),
        });
    }
    table.print(std::cout);

    std::printf(
        "\nReading the table:\n"
        " - the serial chain caps everything at 1/latency;\n"
        " - independence separates issue width from dependence "
        "handling;\n"
        " - the WAW storm isolates renaming: blocking machines "
        "serialize on\n   the register reservation, renaming "
        "machines run at unit speed;\n"
        " - the memory stream isolates the single port;\n"
        " - the loop pattern isolates branch gating (compare with "
        "BR2 or the\n   speculation ablation).\n");
    return 0;
}
