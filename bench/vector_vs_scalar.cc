/**
 * @file
 * Extension: the vector unit the paper's "vectorizable" loops would
 * actually use.
 *
 * The paper studies scalar issue logic precisely because vector
 * hardware already handled the parallel loops ("we expect the
 * vectorizable loops to exhibit a reasonably high degree of
 * parallelism"), and its M5 configuration models staging scalar
 * data through vector registers.  This bench runs strip-mined
 * CRAY-1 vector compilations of LL1/LL7/LL12 on the same CRAY-like
 * machine and compares them with every scalar issue scheme —
 * showing how far even the best scalar issue logic (RUU) remains
 * from simply using the vector unit, and what chaining contributes.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Vector unit vs scalar issue schemes (cycles per kernel,\n"
        "M11BR5; speedups relative to the CRAY-like scalar "
        "machine)\n\n");

    AsciiTable table;
    table.setHeader({ "Loop", "scalar CRAY", "scalar RUU 4x100",
                      "vector (no chain)", "vector (chained)",
                      "chained speedup" });

    const MachineConfig cfg = configM11BR5();
    for (int id : vectorizedLoopIds()) {
        const DynTrace &scalar = TraceLibrary::instance().trace(id);
        const KernelRun vec = runKernel(buildVectorizedKernel(id));

        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        RuuSim ruu({ 4, 100, BusKind::kPerUnit }, cfg);
        ScoreboardConfig unchained = ScoreboardConfig::crayLike();
        unchained.vectorChaining = false;
        ScoreboardSim no_chain(unchained, cfg);
        ScoreboardSim chained(ScoreboardConfig::crayLike(), cfg);

        const double base = double(cray.run(scalar).cycles);
        const double with_chain =
            double(chained.run(vec.trace).cycles);
        table.addRow({
            "LL" + std::to_string(id),
            std::to_string(cray.run(scalar).cycles),
            std::to_string(ruu.run(scalar).cycles),
            std::to_string(no_chain.run(vec.trace).cycles),
            std::to_string(chained.run(vec.trace).cycles),
            AsciiTable::num(base / with_chain, 1) + "x",
        });
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: the vector unit beats even the most "
        "aggressive scalar\nissue logic by several times on these "
        "loops -- the context in which the\npaper's question (how "
        "far can *scalar* issue be pushed?) matters, since\nthe "
        "scalar unit handles everything the vectorizer cannot.\n"
        "Chaining is worth roughly another 20-40%%.\n");
    return 0;
}
