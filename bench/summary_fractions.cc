/**
 * @file
 * Reproduces the section 6 "Discussion and Conclusions" narrative:
 * each machine organization's performance as a percentage of the
 * theoretical maximum (the actual dataflow limit), alongside the
 * percentage ranges the paper quotes.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

using namespace mfusim;

namespace
{

double
meanLimit(LoopClass cls, const MachineConfig &cfg)
{
    std::vector<double> rates;
    for (int id : loopsOf(cls)) {
        rates.push_back(computeLimits(
                            TraceLibrary::instance().trace(id), cfg)
                            .actualRate);
    }
    return harmonicMean(rates);
}

struct Line
{
    const char *organization;
    SimFactory factory;
    const char *paperScalar;    //!< the paper's quoted % range
    const char *paperVector;
};

} // namespace

int
main()
{
    std::printf(
        "Section 6 summary: percent of the theoretical maximum\n"
        "(min-max over the four M/BR configurations; paper's quoted\n"
        " range in brackets)\n\n");

    const std::vector<Line> lines = {
        { "Simple serial machine",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<SimpleSim>(c);
          },
          "18-26%", "7-9%" },
        { "+ overlap distinct FUs",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<ScoreboardSim>(
                  ScoreboardConfig::serialMemory(), c);
          },
          "27-39%", "10-14%" },
        { "+ interleaved memory",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<ScoreboardSim>(
                  ScoreboardConfig::nonSegmented(), c);
          },
          "33-41%", "15-17%" },
        { "+ pipelined FUs (CRAY-like)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<ScoreboardSim>(
                  ScoreboardConfig::crayLike(), c);
          },
          "35-45%", "23-27%" },
        { "1 issue unit + dep. resolution",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<RuuSim>(
                  RuuConfig{ 1, 50, BusKind::kPerUnit }, c);
          },
          "56-62%", "~29%" },
        { "2 issue units (RUU 50)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<RuuSim>(
                  RuuConfig{ 2, 50, BusKind::kPerUnit }, c);
          },
          "60-68%", "44-46%" },
        { "4 issue units (RUU 100)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<RuuSim>(
                  RuuConfig{ 4, 100, BusKind::kPerUnit }, c);
          },
          "64-69%", "57-64%" },
    };

    AsciiTable table;
    table.setHeader({ "Organization", "Scalar %max [paper]",
                      "Vector %max [paper]" });

    for (const Line &line : lines) {
        std::string cells[2];
        int idx = 0;
        for (const LoopClass cls :
             { LoopClass::kScalar, LoopClass::kVectorizable }) {
            double lo = 1e9, hi = 0.0;
            for (const MachineConfig &cfg : standardConfigs()) {
                const double frac =
                    meanIssueRate(line.factory, cls, cfg) /
                    meanLimit(cls, cfg);
                lo = std::min(lo, frac);
                hi = std::max(hi, frac);
            }
            cells[idx++] = AsciiTable::num(lo * 100, 0) + "-" +
                AsciiTable::num(hi * 100, 0) + "% [" +
                (cls == LoopClass::kScalar ? line.paperScalar
                                           : line.paperVector) +
                "]";
        }
        table.addRow({ line.organization, cells[0], cells[1] });
    }
    table.print(std::cout);

    std::printf(
        "\nNote: the paper's CRAY-like row is quoted from its "
        "percentages for\npipelining over the NonSegmented machine; "
        "exact ranges differ because\nthe theoretical maxima differ "
        "per configuration.\n");
    return 0;
}
