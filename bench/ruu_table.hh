/**
 * @file
 * Shared driver for Tables 7-8: multiple issue units with RUU
 * dependency resolution, swept over RUU sizes {10..100}, 1..4 issue
 * units, N-Bus (restricted) and 1-Bus organizations.
 */

#ifndef MFUSIM_BENCH_RUU_TABLE_HH
#define MFUSIM_BENCH_RUU_TABLE_HH

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/sim/ruu_sim.hh"

namespace mfusim
{
namespace bench
{

inline int
runRuuTable(const char *title, LoopClass cls)
{
    std::printf("%s\n(measured [paper])\n\n", title);

    RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Machine", "RUU", "1 N-Bus", "1 1-Bus",
                      "2 N-Bus", "2 1-Bus", "3 N-Bus", "3 1-Bus",
                      "4 N-Bus", "4 1-Bus" });

    const auto &configs = standardConfigs();
    for (int cfg = 0; cfg < 4; ++cfg) {
        for (int size_idx = 0; size_idx < 6; ++size_idx) {
            const unsigned size =
                unsigned(paper::ruuSizes()[std::size_t(size_idx)]);
            std::vector<std::string> row = {
                size_idx == 0
                    ? configs[std::size_t(cfg)].name()
                    : "",
                std::to_string(size),
            };
            for (unsigned units = 1; units <= 4; ++units) {
                for (const BusKind bus :
                     { BusKind::kPerUnit, BusKind::kSingle }) {
                    const double measured = meanIssueRate(
                        [units, size,
                         bus](const MachineConfig &c)
                            -> std::unique_ptr<Simulator> {
                            return std::make_unique<RuuSim>(
                                RuuConfig{ units, size, bus }, c);
                        },
                        cls, configs[std::size_t(cfg)]);
                    const double published = paper::table7_8(
                        cls, cfg, size_idx, int(units),
                        bus == BusKind::kSingle);
                    row.push_back(cell(measured, published));
                    ratios.add(measured, published);
                }
            }
            table.addRow(std::move(row));
        }
        if (cfg < 3)
            table.addRule();
    }
    table.print(std::cout);
    ratios.printSummary(title);
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_RUU_TABLE_HH
