/**
 * @file
 * Shared driver for Tables 7-8: multiple issue units with RUU
 * dependency resolution, swept over RUU sizes {10..100}, 1..4 issue
 * units, N-Bus (restricted) and 1-Bus organizations.
 */

#ifndef MFUSIM_BENCH_RUU_TABLE_HH
#define MFUSIM_BENCH_RUU_TABLE_HH

#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/sim/ruu_sim.hh"

namespace mfusim
{
namespace bench
{

inline int
runRuuTable(const char *title, LoopClass cls)
{
    std::printf("%s\n(measured [paper])\n\n", title);

    // All 48 (size, units, bus) variants of one (config, loop) cell
    // time the same decoded trace: each grid cell hands them to the
    // batched sweep entry together (runBatch falls back to the
    // scalar path for the RUU machines, so the win here is the
    // shared decode and one-pass cache population, not lockstep).
    // Cells still write only their own slots and the render stays
    // serial, so the printed table is bit-identical to a serial run.
    constexpr int kConfigs = 4;
    constexpr int kSizes = 6;
    constexpr int kUnits = 4;
    constexpr int kBusses = 2;
    const auto &configs = standardConfigs();
    const std::vector<int> &loops = loopsOf(cls);
    std::vector<SimFactory> variants;
    for (int size_idx = 0; size_idx < kSizes; ++size_idx) {
        const unsigned size =
            unsigned(paper::ruuSizes()[std::size_t(size_idx)]);
        for (unsigned units = 1; units <= kUnits; ++units) {
            for (const BusKind bus :
                 { BusKind::kPerUnit, BusKind::kSingle }) {
                variants.push_back(
                    [units, size, bus](const MachineConfig &c)
                        -> std::unique_ptr<Simulator> {
                        return std::make_unique<RuuSim>(
                            RuuConfig{ units, size, bus }, c);
                    });
            }
        }
    }
    // rate of (config, variant, loop)
    std::vector<double> cube(kConfigs * variants.size() *
                             loops.size());
    runGrid(std::size_t(kConfigs) * loops.size(), [&](std::size_t i) {
        const std::size_t cfg = i / loops.size();
        const std::size_t li = i % loops.size();
        const auto cell = batchedPerLoopRates(
            variants, { loops[li] }, configs[cfg]);
        for (std::size_t v = 0; v < variants.size(); ++v)
            cube[(cfg * variants.size() + v) * loops.size() + li] =
                cell[v].front();
    });
    std::vector<double> measured(kConfigs * kSizes * kUnits * kBusses);
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const std::size_t cfg = i / (kSizes * kUnits * kBusses);
        const std::size_t v = i % (kSizes * kUnits * kBusses);
        measured[i] = harmonicMean(std::span<const double>(
            &cube[(cfg * variants.size() + v) * loops.size()],
            loops.size()));
    }

    RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Machine", "RUU", "1 N-Bus", "1 1-Bus",
                      "2 N-Bus", "2 1-Bus", "3 N-Bus", "3 1-Bus",
                      "4 N-Bus", "4 1-Bus" });

    std::size_t i = 0;
    for (int cfg = 0; cfg < kConfigs; ++cfg) {
        for (int size_idx = 0; size_idx < kSizes; ++size_idx) {
            const unsigned size =
                unsigned(paper::ruuSizes()[std::size_t(size_idx)]);
            std::vector<std::string> row = {
                size_idx == 0
                    ? configs[std::size_t(cfg)].name()
                    : "",
                std::to_string(size),
            };
            for (int units = 1; units <= kUnits; ++units) {
                for (int bus = 0; bus < kBusses; ++bus, ++i) {
                    const double published = paper::table7_8(
                        cls, cfg, size_idx, units, bus == 1);
                    row.push_back(cell(measured[i], published));
                    ratios.add(measured[i], published);
                }
            }
            table.addRow(std::move(row));
        }
        if (cfg < 3)
            table.addRule();
    }
    table.print(std::cout);
    ratios.printSummary(title);
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_RUU_TABLE_HH
