/**
 * @file
 * google-benchmark microbenchmarks of simulator throughput
 * (simulated instructions per wall-clock second).  Not a paper
 * table; this guards the simulators' own performance so the full
 * table sweeps stay fast.
 */

#include <benchmark/benchmark.h>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace
{

using namespace mfusim;

const DynTrace &
bigTrace()
{
    // LL6 is the longest trace (~17k dynamic ops).
    return TraceLibrary::instance().trace(6);
}

void
BM_SimpleSim(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    SimpleSim sim(configM11BR5());
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_SimpleSim);

void
BM_ScoreboardCrayLike(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    for (auto _ : state) {
        ScoreboardSim sim(ScoreboardConfig::crayLike(),
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_ScoreboardCrayLike);

void
BM_MultiIssue(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    const unsigned width = unsigned(state.range(0));
    const bool ooo = state.range(1) != 0;
    for (auto _ : state) {
        MultiIssueSim sim({ width, ooo, BusKind::kPerUnit, false },
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_MultiIssue)
    ->Args({ 4, 0 })
    ->Args({ 4, 1 })
    ->Args({ 8, 1 });

void
BM_Ruu(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    const unsigned width = unsigned(state.range(0));
    const unsigned size = unsigned(state.range(1));
    for (auto _ : state) {
        RuuSim sim({ width, size, BusKind::kPerUnit },
                   configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_Ruu)->Args({ 1, 10 })->Args({ 4, 100 });

void
BM_DataflowLimits(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            computeLimits(trace, configM11BR5()).actualRate);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_DataflowLimits);

void
BM_TraceGeneration(benchmark::State &state)
{
    // Assemble + interpret + validate LL1 from scratch.
    for (auto _ : state) {
        const Kernel kernel = buildKernel(1);
        benchmark::DoNotOptimize(runKernel(kernel).trace.size());
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
