/**
 * @file
 * google-benchmark microbenchmarks of simulator throughput
 * (simulated instructions per wall-clock second).  Not a paper
 * table; this guards the simulators' own performance so the full
 * table sweeps stay fast.
 *
 * Each simulator is measured on two paths:
 *
 *  - BM_<sim>: the canonical sweep path — the trace is pre-decoded
 *    once (TraceLibrary's decoded cache) and the timing loop runs on
 *    the DecodedTrace arrays; this is what every table driver does.
 *  - BM_<sim>DynTrace: the one-shot path — run(DynTrace) decodes per
 *    call; what a caller pays when it times a trace exactly once.
 *
 * BM_DecodeTrace isolates the decode cost itself.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/decoded_trace.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/steady_state.hh"

namespace
{

using namespace mfusim;

const DynTrace &
bigTrace()
{
    // LL6 is the longest trace (~17k dynamic ops).
    return TraceLibrary::instance().trace(6);
}

const DecodedTrace &
bigDecoded()
{
    return TraceLibrary::instance().decoded(6, configM11BR5());
}

// ---- canonical pre-decoded path ---------------------------------

void
BM_SimpleSim(benchmark::State &state)
{
    const DecodedTrace &trace = bigDecoded();
    SimpleSim sim(configM11BR5());
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_SimpleSim);

void
BM_ScoreboardCrayLike(benchmark::State &state)
{
    const DecodedTrace &trace = bigDecoded();
    for (auto _ : state) {
        ScoreboardSim sim(ScoreboardConfig::crayLike(),
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_ScoreboardCrayLike);

void
BM_MultiIssue(benchmark::State &state)
{
    const DecodedTrace &trace = bigDecoded();
    const unsigned width = unsigned(state.range(0));
    const bool ooo = state.range(1) != 0;
    for (auto _ : state) {
        MultiIssueSim sim({ width, ooo, BusKind::kPerUnit, false },
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_MultiIssue)
    ->Args({ 4, 0 })
    ->Args({ 4, 1 })
    ->Args({ 8, 1 });

void
BM_Ruu(benchmark::State &state)
{
    const DecodedTrace &trace = bigDecoded();
    const unsigned width = unsigned(state.range(0));
    const unsigned size = unsigned(state.range(1));
    for (auto _ : state) {
        RuuSim sim({ width, size, BusKind::kPerUnit },
                   configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_Ruu)->Args({ 1, 10 })->Args({ 4, 100 });

void
BM_DataflowLimits(benchmark::State &state)
{
    const DecodedTrace &trace = bigDecoded();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            computeLimits(trace).actualRate);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_DataflowLimits);

// ---- one-shot run(DynTrace) path (decode per call) ---------------

void
BM_SimpleSimDynTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    SimpleSim sim(configM11BR5());
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_SimpleSimDynTrace);

void
BM_ScoreboardCrayLikeDynTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    for (auto _ : state) {
        ScoreboardSim sim(ScoreboardConfig::crayLike(),
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_ScoreboardCrayLikeDynTrace);

void
BM_MultiIssueDynTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    const unsigned width = unsigned(state.range(0));
    const bool ooo = state.range(1) != 0;
    for (auto _ : state) {
        MultiIssueSim sim({ width, ooo, BusKind::kPerUnit, false },
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_MultiIssueDynTrace)->Args({ 8, 1 });

void
BM_RuuDynTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    const unsigned width = unsigned(state.range(0));
    const unsigned size = unsigned(state.range(1));
    for (auto _ : state) {
        RuuSim sim({ width, size, BusKind::kPerUnit },
                   configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_RuuDynTrace)->Args({ 4, 100 });

void
BM_DataflowLimitsDynTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            computeLimits(trace, configM11BR5()).actualRate);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_DataflowLimitsDynTrace);

// ---- steady-state fast path --------------------------------------
//
// The same (simulator, loop) measured with the steady-state
// extrapolation on and off; the on/off items_per_second ratio is the
// fast path's speedup.  Results are bit-identical either way (see
// sim/steady_state.hh), so these runs guard speed only.  Loops 6, 7
// and 13 are the three longest traces.

void
BM_ScoreboardSteady(benchmark::State &state)
{
    const int loop = int(state.range(0));
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(loop, configM11BR5());
    setSteadyStateEnabled(state.range(1) != 0);
    for (auto _ : state) {
        ScoreboardSim sim(ScoreboardConfig::crayLike(),
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    setSteadyStateEnabled(true);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_ScoreboardSteady)
    ->Args({ 6, 0 })
    ->Args({ 6, 1 })
    ->Args({ 7, 0 })
    ->Args({ 7, 1 })
    ->Args({ 13, 0 })
    ->Args({ 13, 1 });

void
BM_MultiIssueSteady(benchmark::State &state)
{
    const int loop = int(state.range(0));
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(loop, configM11BR5());
    setSteadyStateEnabled(state.range(1) != 0);
    for (auto _ : state) {
        MultiIssueSim sim({ 8, true, BusKind::kPerUnit, false },
                          configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    setSteadyStateEnabled(true);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_MultiIssueSteady)
    ->Args({ 6, 0 })
    ->Args({ 6, 1 })
    ->Args({ 7, 0 })
    ->Args({ 7, 1 })
    ->Args({ 13, 0 })
    ->Args({ 13, 1 });

void
BM_RuuSteady(benchmark::State &state)
{
    const int loop = int(state.range(0));
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(loop, configM11BR5());
    setSteadyStateEnabled(state.range(1) != 0);
    for (auto _ : state) {
        RuuSim sim({ 4, 100, BusKind::kPerUnit }, configM11BR5());
        benchmark::DoNotOptimize(sim.run(trace).cycles);
    }
    setSteadyStateEnabled(true);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_RuuSteady)
    ->Args({ 6, 0 })
    ->Args({ 6, 1 })
    ->Args({ 7, 0 })
    ->Args({ 7, 1 })
    ->Args({ 13, 0 })
    ->Args({ 13, 1 });

// ---- batched lockstep sweep --------------------------------------
//
// The full Table 3 in-order grid — 4 standard configs x scalar-class
// loops x 16 (stations, bus) variants — timed through the batched
// lockstep kernel (batched=1) and the equivalent per-variant scalar
// loop (batched=0), with the steady-state fast path off and on.  The
// ResultCache is bypassed on both paths so the on/off
// items_per_second ratio isolates the kernel itself; that ratio is
// the batched-sweep speedup gate in tools/check_bench_regression.py.

void
BM_BatchedSweep(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;
    setSteadyStateEnabled(state.range(1) != 0);
    const auto &configs = standardConfigs();
    const std::vector<int> &loops = loopsOf(LoopClass::kScalar);
    std::int64_t ops = 0;
    for (auto _ : state) {
        ops = 0;
        for (const MachineConfig &cfg : configs) {
            for (const int loop : loops) {
                const DecodedTrace &trace =
                    TraceLibrary::instance().decoded(loop, cfg);
                std::vector<std::unique_ptr<Simulator>> sims;
                for (unsigned stations = 1; stations <= 8;
                     ++stations) {
                    for (const BusKind bus :
                         { BusKind::kPerUnit, BusKind::kSingle }) {
                        sims.push_back(
                            std::make_unique<MultiIssueSim>(
                                MultiIssueConfig{ stations, false,
                                                  bus, false },
                                cfg));
                    }
                }
                if (batched) {
                    std::vector<BatchLane> lanes;
                    lanes.reserve(sims.size());
                    for (const auto &sim : sims)
                        lanes.push_back({ sim.get(), &trace });
                    benchmark::DoNotOptimize(
                        runBatch(lanes).results.front().cycles);
                } else {
                    for (const auto &sim : sims)
                        benchmark::DoNotOptimize(
                            sim->run(trace).cycles);
                }
                ops += std::int64_t(trace.size()) *
                       std::int64_t(sims.size());
            }
        }
    }
    setSteadyStateEnabled(true);
    state.SetItemsProcessed(std::int64_t(state.iterations()) * ops);
}
BENCHMARK(BM_BatchedSweep)
    ->Args({ 0, 0 })
    ->Args({ 1, 0 })
    ->Args({ 0, 1 })
    ->Args({ 1, 1 })
    ->Unit(benchmark::kMillisecond);

// ---- decode and generation costs ---------------------------------

void
BM_DecodeTrace(benchmark::State &state)
{
    const DynTrace &trace = bigTrace();
    const MachineConfig cfg = configM11BR5();
    for (auto _ : state) {
        const DecodedTrace decoded(trace, cfg);
        benchmark::DoNotOptimize(decoded.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(trace.size()));
}
BENCHMARK(BM_DecodeTrace);

void
BM_TraceGeneration(benchmark::State &state)
{
    // Assemble + interpret + validate LL1 from scratch.
    for (auto _ : state) {
        const Kernel kernel = buildKernel(1);
        benchmark::DoNotOptimize(runKernel(kernel).trace.size());
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
