/**
 * @file
 * Shared driver for Tables 3-6: multiple issue units over an
 * instruction buffer, sequential or out-of-order issue, N-Bus and
 * 1-Bus organizations, 1..8 issue stations.
 */

#ifndef MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
#define MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/sim/multi_issue_sim.hh"

namespace mfusim
{
namespace bench
{

inline int
runMultiIssueTable(const char *title, LoopClass cls, bool outOfOrder)
{
    std::printf("%s\n(measured [paper])\n\n", title);

    // The table is a flat grid of independent (stations, config,
    // bus) cells: evaluate it on the worker pool, with every cell
    // writing only its own slot, then render serially — the printed
    // table is bit-identical to a serial run.
    constexpr int kStations = 8;
    constexpr int kConfigs = 4;
    constexpr int kBusses = 2;
    const auto &configs = standardConfigs();
    std::vector<double> measured(kStations * kConfigs * kBusses);
    runGrid(measured.size(), [&](std::size_t i) {
        const unsigned stations = unsigned(i) / (kConfigs * kBusses) + 1;
        const int cfg = int(i / kBusses) % kConfigs;
        const BusKind bus = i % kBusses == 0 ? BusKind::kPerUnit
                                             : BusKind::kSingle;
        measured[i] = meanIssueRate(
            [stations, bus, outOfOrder](const MachineConfig &c)
                -> std::unique_ptr<Simulator> {
                return std::make_unique<MultiIssueSim>(
                    MultiIssueConfig{ stations, outOfOrder, bus,
                                      false },
                    c);
            },
            cls, configs[std::size_t(cfg)]);
    });

    RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Stations", "M11BR5 N-Bus", "M11BR5 1-Bus",
                      "M11BR2 N-Bus", "M11BR2 1-Bus", "M5BR5 N-Bus",
                      "M5BR5 1-Bus", "M5BR2 N-Bus", "M5BR2 1-Bus" });

    std::size_t i = 0;
    for (int stations = 1; stations <= kStations; ++stations) {
        std::vector<std::string> row = { std::to_string(stations) };
        for (int cfg = 0; cfg < kConfigs; ++cfg) {
            for (int bus = 0; bus < kBusses; ++bus, ++i) {
                const bool one_bus = bus == 1;
                const double published =
                    outOfOrder
                        ? paper::table5_6(cls, cfg, stations, one_bus)
                        : paper::table3_4(cls, cfg, stations,
                                          one_bus);
                row.push_back(cell(measured[i], published));
                ratios.add(measured[i], published);
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    ratios.printSummary(title);
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
