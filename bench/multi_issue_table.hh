/**
 * @file
 * Shared driver for Tables 3-6: multiple issue units over an
 * instruction buffer, sequential or out-of-order issue, N-Bus and
 * 1-Bus organizations, 1..8 issue stations.
 */

#ifndef MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
#define MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH

#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/sim/multi_issue_sim.hh"

namespace mfusim
{
namespace bench
{

inline int
runMultiIssueTable(const char *title, LoopClass cls, bool outOfOrder)
{
    std::printf("%s\n(measured [paper])\n\n", title);

    // All 16 (stations, bus) variants of one (config, loop) cell
    // time the same decoded trace, so each grid cell advances them
    // together through the batched lockstep kernel — one trace pass,
    // 16 lanes — instead of 16 scalar re-walks.  Cells still write
    // only their own slots and the render stays serial, so the
    // printed table is bit-identical to the scalar sweep.
    constexpr int kStations = 8;
    constexpr int kConfigs = 4;
    constexpr int kBusses = 2;
    const auto &configs = standardConfigs();
    const std::vector<int> &loops = loopsOf(cls);
    std::vector<SimFactory> variants;
    for (unsigned stations = 1; stations <= kStations; ++stations) {
        for (const BusKind bus :
             { BusKind::kPerUnit, BusKind::kSingle }) {
            variants.push_back(
                [stations, bus, outOfOrder](const MachineConfig &c)
                    -> std::unique_ptr<Simulator> {
                    return std::make_unique<MultiIssueSim>(
                        MultiIssueConfig{ stations, outOfOrder, bus,
                                          false },
                        c);
                });
        }
    }
    // rate of (config, variant, loop)
    std::vector<double> cube(kConfigs * variants.size() *
                             loops.size());
    runGrid(std::size_t(kConfigs) * loops.size(), [&](std::size_t i) {
        const std::size_t cfg = i / loops.size();
        const std::size_t li = i % loops.size();
        const auto cell = batchedPerLoopRates(
            variants, { loops[li] }, configs[cfg]);
        for (std::size_t v = 0; v < variants.size(); ++v)
            cube[(cfg * variants.size() + v) * loops.size() + li] =
                cell[v].front();
    });
    std::vector<double> measured(kStations * kConfigs * kBusses);
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const std::size_t stations = i / (kConfigs * kBusses);
        const std::size_t cfg = i / kBusses % kConfigs;
        const std::size_t bus = i % kBusses;
        const std::size_t v = stations * kBusses + bus;
        measured[i] = harmonicMean(std::span<const double>(
            &cube[(cfg * variants.size() + v) * loops.size()],
            loops.size()));
    }

    RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Stations", "M11BR5 N-Bus", "M11BR5 1-Bus",
                      "M11BR2 N-Bus", "M11BR2 1-Bus", "M5BR5 N-Bus",
                      "M5BR5 1-Bus", "M5BR2 N-Bus", "M5BR2 1-Bus" });

    std::size_t i = 0;
    for (int stations = 1; stations <= kStations; ++stations) {
        std::vector<std::string> row = { std::to_string(stations) };
        for (int cfg = 0; cfg < kConfigs; ++cfg) {
            for (int bus = 0; bus < kBusses; ++bus, ++i) {
                const bool one_bus = bus == 1;
                const double published =
                    outOfOrder
                        ? paper::table5_6(cls, cfg, stations, one_bus)
                        : paper::table3_4(cls, cfg, stations,
                                          one_bus);
                row.push_back(cell(measured[i], published));
                ratios.add(measured[i], published);
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    ratios.printSummary(title);
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
