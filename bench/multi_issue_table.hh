/**
 * @file
 * Shared driver for Tables 3-6: multiple issue units over an
 * instruction buffer, sequential or out-of-order issue, N-Bus and
 * 1-Bus organizations, 1..8 issue stations.
 */

#ifndef MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
#define MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/sim/multi_issue_sim.hh"

namespace mfusim
{
namespace bench
{

inline int
runMultiIssueTable(const char *title, LoopClass cls, bool outOfOrder)
{
    std::printf("%s\n(measured [paper])\n\n", title);

    RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Stations", "M11BR5 N-Bus", "M11BR5 1-Bus",
                      "M11BR2 N-Bus", "M11BR2 1-Bus", "M5BR5 N-Bus",
                      "M5BR5 1-Bus", "M5BR2 N-Bus", "M5BR2 1-Bus" });

    for (unsigned stations = 1; stations <= 8; ++stations) {
        std::vector<std::string> row = { std::to_string(stations) };
        const auto &configs = standardConfigs();
        for (int cfg = 0; cfg < 4; ++cfg) {
            for (const BusKind bus :
                 { BusKind::kPerUnit, BusKind::kSingle }) {
                const double measured = meanIssueRate(
                    [stations, bus,
                     outOfOrder](const MachineConfig &c)
                        -> std::unique_ptr<Simulator> {
                        return std::make_unique<MultiIssueSim>(
                            MultiIssueConfig{ stations, outOfOrder,
                                              bus, false },
                            c);
                    },
                    cls, configs[std::size_t(cfg)]);
                const bool one_bus = bus == BusKind::kSingle;
                const double published =
                    outOfOrder
                        ? paper::table5_6(cls, cfg, int(stations),
                                          one_bus)
                        : paper::table3_4(cls, cfg, int(stations),
                                          one_bus);
                row.push_back(cell(measured, published));
                ratios.add(measured, published);
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    ratios.printSummary(title);
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_MULTI_ISSUE_TABLE_HH
