/**
 * @file
 * Shared helpers for the table-reproduction bench binaries.
 *
 * Every bench prints one of the paper's tables with three values per
 * cell where the paper published a number: the measured issue rate,
 * the paper's value in brackets, and (in the summary line) the mean
 * measured/paper ratio.  Absolute rates are not expected to match
 * (mfusim's hand-compiled kernels are not CFT's output); the shape
 * -- orderings, saturation points, sensitivities -- is the
 * reproduction target.  See EXPERIMENTS.md.
 */

#ifndef MFUSIM_BENCH_BENCH_UTIL_HH
#define MFUSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "mfusim/core/table.hh"

namespace mfusim
{
namespace bench
{

/** "0.44 [0.59]": measured with the paper value in brackets. */
inline std::string
cell(double measured, double paper)
{
    return AsciiTable::num(measured) + " [" + AsciiTable::num(paper) +
        "]";
}

/** Tracks measured/paper ratios to summarize calibration. */
class RatioTracker
{
  public:
    void
    add(double measured, double paper)
    {
        if (paper > 0.0) {
            sum_ += measured / paper;
            ++count_;
        }
    }

    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / double(count_);
    }

    void
    printSummary(const char *what) const
    {
        std::printf(
            "\nMean measured/paper ratio for %s: %.2f\n"
            "(absolute scale differs -- different compiler, same "
            "model; see EXPERIMENTS.md)\n",
            what, mean());
    }

  private:
    double sum_ = 0.0;
    std::size_t count_ = 0;
};

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_BENCH_UTIL_HH
