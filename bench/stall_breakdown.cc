/**
 * @file
 * Where the issue cycles go: stall attribution for the single-issue
 * machines of Table 1.
 *
 * The paper's Table 1 narrative — interleaving memory matters,
 * pipelining the units barely does, branches and data dependences
 * dominate — is made quantitative here by charging every lost issue
 * cycle to its binding hazard.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/obs/run_metrics.hh"
#include "mfusim/sim/scoreboard_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Issue-stall breakdown, single-issue machines (percent of\n"
        "total cycles, summed over all 14 loops)\n\n");

    AsciiTable table;
    table.setHeader({ "Machine", "Config", "busy%", "RAW%", "WAW%",
                      "struct%", "bus%", "branch%" });

    const std::vector<std::pair<const char *, ScoreboardConfig>>
        machines = {
            { "SerialMemory", ScoreboardConfig::serialMemory() },
            { "NonSegmented", ScoreboardConfig::nonSegmented() },
            { "CRAY-like", ScoreboardConfig::crayLike() },
        };

    for (const auto &[name, org] : machines) {
        for (const MachineConfig &cfg :
             { configM11BR5(), configM5BR2() }) {
            // Aggregate through the observability layer: each run's
            // StallBreakdown lands in a MetricsRegistry under the
            // standard cycles.stall.* names, and the table is
            // rendered from the registry.  tests cross-check that
            // this path is count-identical to summing the
            // SimResult fields directly.
            MetricsRegistry reg;
            for (int id = 1; id <= 14; ++id) {
                ScoreboardSim sim(org, cfg);
                const SimResult r =
                    sim.run(TraceLibrary::instance().trace(id));
                addStallBreakdown(reg, r.stalls);
                reg.counter("ops.total").add(r.instructions);
                reg.counter("cycles.total").add(r.cycles);
            }
            const std::uint64_t cycles =
                reg.counterValue("cycles.total");
            const auto pct = [&reg, cycles](const char *key) {
                return AsciiTable::num(
                    100.0 * double(reg.counterValue(key)) /
                        double(cycles),
                    1);
            };
            table.addRow({
                name,
                cfg.name(),
                pct("ops.total"),
                pct("cycles.stall.raw"),
                pct("cycles.stall.waw"),
                pct("cycles.stall.fu_busy"),
                pct("cycles.stall.bus_busy"),
                pct("cycles.stall.branch"),
            });
        }
        table.addRule();
    }
    table.print(std::cout);

    std::printf(
        "\nReading the table:\n"
        " - busy%% = cycles an instruction actually issued (the "
        "issue rate);\n"
        " - struct%% collapses from SerialMemory to NonSegmented "
        "(memory\n   interleaving) and is nearly gone on the "
        "CRAY-like machine --\n   exactly why the paper found "
        "pipelining the units unprofitable\n   once dependences "
        "still block issue;\n"
        " - what remains is RAW + branch: the motivation for "
        "dependency\n   resolution (Tables 7/8) and, beyond the "
        "paper, speculation.\n");
    return 0;
}
