/**
 * @file
 * Reproduces Table 1: "Instruction Issue Rates for Different Basic
 * Machine Organizations" -- the Simple, SerialMemory, NonSegmented
 * and CRAY-like single-issue machines over the four M/BR
 * configurations, for both loop classes.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

using namespace mfusim;

namespace
{

SimFactory
factoryFor(int machine)
{
    return [machine](const MachineConfig &cfg)
        -> std::unique_ptr<Simulator> {
        switch (machine) {
          case paper::kSimple:
            return std::make_unique<SimpleSim>(cfg);
          case paper::kSerialMemory:
            return std::make_unique<ScoreboardSim>(
                ScoreboardConfig::serialMemory(), cfg);
          case paper::kNonSegmented:
            return std::make_unique<ScoreboardSim>(
                ScoreboardConfig::nonSegmented(), cfg);
          default:
            return std::make_unique<ScoreboardSim>(
                ScoreboardConfig::crayLike(), cfg);
        }
    };
}

const char *machineNames[4] = {
    "Simple", "SerialMemory", "NonSegmented", "CRAY-like",
};

} // namespace

int
main()
{
    std::printf("Table 1: issue rates of single-issue machines\n");
    std::printf("(measured [paper])\n\n");

    bench::RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Code", "Machine", "M11BR5", "M11BR2", "M5BR5",
                      "M5BR2" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        for (int machine = 0; machine < 4; ++machine) {
            std::vector<std::string> row = {
                machine == 0 ? loopClassName(cls) : "",
                machineNames[machine],
            };
            const auto means =
                meanIssueRateAllConfigs(factoryFor(machine), cls);
            for (int cfg = 0; cfg < 4; ++cfg) {
                const double published =
                    paper::table1(cls, machine, cfg);
                row.push_back(bench::cell(means[std::size_t(cfg)],
                                          published));
                ratios.add(means[std::size_t(cfg)], published);
            }
            table.addRow(std::move(row));
        }
        if (cls == LoopClass::kScalar)
            table.addRule();
    }
    table.print(std::cout);
    ratios.printSummary("Table 1");
    return 0;
}
