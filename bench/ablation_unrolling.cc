/**
 * @file
 * Ablation: software loop unrolling (extension beyond the paper).
 *
 * The paper keeps code untouched but predicts: "loop unrolling will
 * in some cases shorten the critical path because some of the
 * program's branches are removed."  This bench unrolls two parallel
 * loops (LL1, LL12) and two recurrences (LL5, LL11) by 1..8x and
 * measures the pseudo-dataflow limit and machine issue rates.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Ablation: software unrolling x1..x8, M11BR5\n"
        "(pseudo-dataflow limit | CRAY-like | RUU 4x48 per cell)\n\n");

    const MachineConfig cfg = configM11BR5();
    AsciiTable table;
    table.setHeader({ "Loop", "Kind", "x1", "x2", "x4", "x8" });

    for (int id : unrollableLoopIds()) {
        std::vector<std::string> row = {
            "LL" + std::to_string(id),
            (id == 1 || id == 12) ? "parallel" : "recurrence",
        };
        for (int factor : { 1, 2, 4, 8 }) {
            const Kernel kernel = buildUnrolledKernel(id, factor);
            const KernelRun run = runKernel(kernel);
            const double limit =
                computeLimits(run.trace, cfg).pseudoRate;
            ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
            RuuSim ruu({ 4, 48, BusKind::kPerUnit }, cfg);
            row.push_back(AsciiTable::num(limit) + "|" +
                          AsciiTable::num(
                              cray.run(run.trace).issueRate()) +
                          "|" +
                          AsciiTable::num(
                              ruu.run(run.trace).issueRate()));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: for the parallel loops the dataflow limit "
        "climbs\nsteeply with the unroll factor (branch gating "
        "removed) and the RUU\ncaptures much of it; the recurrences' "
        "limits barely move (the serial\nfp chain, not the branch, "
        "is the critical path), and no machine gains\nmore than the "
        "removed loop overhead.\n");
    return 0;
}
