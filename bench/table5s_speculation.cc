/**
 * @file
 * Table 5s (extension): out-of-order multiple issue (w=4, N-Bus)
 * under branch speculation, scalar loops.  The speculative
 * counterpart of Table 5's w=4 row: the same machine swept over the
 * predictor-quality axis instead of the station count.
 */

#include <memory>

#include "mfusim/sim/multi_issue_sim.hh"
#include "speculation_table.hh"

int
main()
{
    using namespace mfusim;
    return bench::runSpeculationTable(
        "Table 5s: OOO issue (w=4, N-Bus) under speculation, "
        "scalar loops",
        LoopClass::kScalar,
        [](const MachineConfig &c,
           BranchPolicy policy) -> std::unique_ptr<Simulator> {
            return std::make_unique<MultiIssueSim>(
                MultiIssueConfig{ 4, true, BusKind::kPerUnit, false,
                                  policy },
                c);
        });
}
