/**
 * @file
 * Ablation: replicated functional units and memory ports
 * (extension).
 *
 * The paper's opening sentence — designers seek performance by
 * "increas[ing] the number of functional units (or their
 * availability through pipelining)" — yet its base machine fixes one
 * unit of each class.  This bench replicates units and ports under
 * the most aggressive issue scheme (RUU 4x100) to locate the real
 * resource wall.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"

using namespace mfusim;

namespace
{

double
ruuRate(LoopClass cls, const MachineConfig &cfg, unsigned fu,
        unsigned mem, BranchPolicy policy)
{
    return meanIssueRate(
        [fu, mem, policy](const MachineConfig &c)
            -> std::unique_ptr<Simulator> {
            RuuConfig org{ 4, 100, BusKind::kPerUnit, policy, fu,
                           mem };
            return std::make_unique<RuuSim>(org, c);
        },
        cls, cfg);
}

double
meanLimit(LoopClass cls, const MachineConfig &cfg, unsigned fu,
          unsigned mem)
{
    std::vector<double> rates;
    for (int id : loopsOf(cls)) {
        rates.push_back(computeLimits(
                            TraceLibrary::instance().trace(id), cfg,
                            false, fu, mem)
                            .actualRate);
    }
    return harmonicMean(rates);
}

} // namespace

int
main()
{
    std::printf(
        "Ablation: replicated execution resources under RUU 4x100\n"
        "(fu = copies of every functional unit, mem = memory "
        "ports;\n blocking branches vs oracle prediction, M11BR5)\n\n");

    const MachineConfig cfg = configM11BR5();
    AsciiTable table;
    table.setHeader({ "Code", "fu x mem", "blocking", "oracle",
                      "resource limit" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        for (const auto &[fu, mem] :
             std::vector<std::pair<unsigned, unsigned>>{
                 { 1, 1 }, { 2, 1 }, { 4, 1 }, { 1, 2 }, { 2, 2 },
                 { 4, 4 } }) {
            std::vector<double> limit_rates;
            for (int id : loopsOf(cls)) {
                limit_rates.push_back(
                    computeLimits(
                        TraceLibrary::instance().trace(id), cfg,
                        false, fu, mem)
                        .resourceRate);
            }
            table.addRow({
                loopClassName(cls),
                std::to_string(fu) + " x " + std::to_string(mem),
                AsciiTable::num(ruuRate(cls, cfg, fu, mem,
                                        BranchPolicy::kBlocking)),
                AsciiTable::num(ruuRate(cls, cfg, fu, mem,
                                        BranchPolicy::kOracle)),
                AsciiTable::num(harmonicMean(limit_rates)),
            });
        }
        table.addRule();
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: replicating every unit and port buys "
        "almost nothing\n(<0.1 issue rate) even at 4x4 and even "
        "with oracle branches: once the\nresource limit is lifted "
        "far above the dataflow limit (%0.2f at 4x4\nscalar), the "
        "programs' dependence structure binds.  This confirms "
        "the\npaper's focus on issue logic rather than raw "
        "resources.\n",
        meanLimit(LoopClass::kScalar, cfg, 4, 4));
    return 0;
}
