/**
 * @file
 * Ablation: branch prediction (extension beyond the paper).
 *
 * The paper deliberately studies machines with no branch
 * speculation.  This bench quantifies that choice: every machine is
 * rerun under a static BTFN predictor and under a perfect oracle,
 * bracketing what any prediction scheme could add on top of the
 * paper's results.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Ablation: branch speculation (M11BR5).  The paper's model\n"
        "is 'blocking'; btfn = static backward-taken predictor;\n"
        "oracle = perfect prediction.\n\n");

    // Predictor quality on these workloads.
    {
        std::uint64_t correct = 0, total = 0;
        for (int id = 1; id <= 14; ++id) {
            const TraceStats stats =
                TraceLibrary::instance().trace(id).stats();
            correct += stats.btfnCorrectBranches;
            total += stats.branches;
        }
        std::printf("static BTFN accuracy over LL1-14: %.1f%% "
                    "(loop-closing branches dominate)\n\n",
                    100.0 * double(correct) / double(total));
    }

    const MachineConfig cfg = configM11BR5();
    AsciiTable table;
    table.setHeader({ "Code", "Machine", "blocking", "btfn", "oracle",
                      "oracle gain" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        const auto sweep = [&](const char *name,
                               const std::function<std::unique_ptr<
                                   Simulator>(const MachineConfig &,
                                              BranchPolicy)> &make) {
            double rates[3];
            int idx = 0;
            for (const BranchPolicy policy :
                 { BranchPolicy::kBlocking, BranchPolicy::kBtfn,
                   BranchPolicy::kOracle }) {
                rates[idx++] = meanIssueRate(
                    [&make, policy](const MachineConfig &c) {
                        return make(c, policy);
                    },
                    cls, cfg);
            }
            table.addRow({
                loopClassName(cls),
                name,
                AsciiTable::num(rates[0]),
                AsciiTable::num(rates[1]),
                AsciiTable::num(rates[2]),
                AsciiTable::num(
                    (rates[2] - rates[0]) / rates[0] * 100, 0) + "%",
            });
        };

        sweep("CRAY-like",
              [](const MachineConfig &c, BranchPolicy policy)
                  -> std::unique_ptr<Simulator> {
                  ScoreboardConfig org = ScoreboardConfig::crayLike();
                  org.branchPolicy = policy;
                  return std::make_unique<ScoreboardSim>(org, c);
              });
        sweep("OOO issue (w=4)",
              [](const MachineConfig &c, BranchPolicy policy)
                  -> std::unique_ptr<Simulator> {
                  MultiIssueConfig org{ 4, true, BusKind::kPerUnit,
                                        false, policy };
                  return std::make_unique<MultiIssueSim>(org, c);
              });
        sweep("RUU (w=4, 100)",
              [](const MachineConfig &c, BranchPolicy policy)
                  -> std::unique_ptr<Simulator> {
                  RuuConfig org{ 4, 100, BusKind::kPerUnit, policy };
                  return std::make_unique<RuuSim>(org, c);
              });
        table.addRule();
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: prediction is nearly worthless for the "
        "blocking\nsingle-issue machine (data hazards dominate) but "
        "multiplies the RUU\nmachine's rate -- once dependencies are "
        "resolved in hardware, control\nis the last wall.  This is "
        "the paper's implicit motivation for the\nspeculative "
        "out-of-order designs that followed it.\n");
    return 0;
}
