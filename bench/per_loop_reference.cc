/**
 * @file
 * Per-loop reference dump: the numbers behind every harmonic mean.
 *
 * The paper reports only class-level harmonic means; this bench
 * prints the underlying per-loop issue rates for the key machines,
 * so any class-level shift can be traced to the loops that caused
 * it.  Also serves as the repository's regression reference (the
 * headline values are pinned in tests/test_regression_pins.cc).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/dataflow/trace_analysis.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

using namespace mfusim;

int
main()
{
    for (const MachineConfig &cfg :
         { configM11BR5(), configM5BR2() }) {
        std::printf("Per-loop issue rates, %s\n\n",
                    cfg.name().c_str());
        AsciiTable table;
        table.setHeader({ "Loop", "Class", "Simple", "CRAY",
                          "Seq w=4", "OOO w=4", "RUU 1x50",
                          "RUU 4x100", "DF", "Serial", "Buf" });
        for (const KernelSpec &spec : kernelSpecs()) {
            const DynTrace &trace =
                TraceLibrary::instance().trace(spec.id);
            SimpleSim simple(cfg);
            ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
            MultiIssueSim seq({ 4, false, BusKind::kPerUnit, false },
                              cfg);
            MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false },
                              cfg);
            RuuSim ruu1({ 1, 50, BusKind::kPerUnit }, cfg);
            RuuSim ruu4({ 4, 100, BusKind::kPerUnit }, cfg);
            const LimitResult pure = computeLimits(trace, cfg);
            const LimitResult serial =
                computeLimits(trace, cfg, true);
            const BufferDemand demand = bufferDemand(trace, cfg);
            table.addRow({
                "LL" + std::to_string(spec.id),
                spec.vectorizable ? "vec" : "scal",
                AsciiTable::num(simple.run(trace).issueRate()),
                AsciiTable::num(cray.run(trace).issueRate()),
                AsciiTable::num(seq.run(trace).issueRate()),
                AsciiTable::num(ooo.run(trace).issueRate()),
                AsciiTable::num(ruu1.run(trace).issueRate()),
                AsciiTable::num(ruu4.run(trace).issueRate()),
                AsciiTable::num(pure.actualRate),
                AsciiTable::num(serial.actualRate),
                std::to_string(demand.peakLiveValues),
            });
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "DF = actual dataflow limit; Serial = no-WAW-buffering "
        "limit;\nBuf = peak live values the dataflow schedule "
        "implies (compare with\nthe RUU sizes of Tables 7/8).\n");
    return 0;
}
