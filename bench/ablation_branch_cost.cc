/**
 * @file
 * Ablation: branch execution time, including a near-oracle bound.
 *
 * The paper varies BR in {5, 2} and observes that a faster branch
 * can substitute for several issue units.  This bench sweeps BR in
 * {5, 2, 1} (1 approximating a machine that resolves branches the
 * cycle the condition is known -- the best a no-speculation design
 * can do) to bound what the paper's "no branch prediction"
 * assumption costs.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Ablation: branch time BR in {5, 2, 1} (M11; BR1 = "
        "near-oracle,\nno-speculation lower bound on branch cost)\n\n");

    AsciiTable table;
    table.setHeader({ "Code", "Machine", "BR5", "BR2", "BR1",
                      "BR5->BR1 gain" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        const auto sweep = [&](const char *name,
                               const SimFactory &factory) {
            double rates[3];
            int idx = 0;
            for (unsigned br : { 5u, 2u, 1u }) {
                const MachineConfig cfg{ 11, br, {} };
                rates[idx++] = meanIssueRate(factory, cls, cfg);
            }
            table.addRow({
                loopClassName(cls),
                name,
                AsciiTable::num(rates[0]),
                AsciiTable::num(rates[1]),
                AsciiTable::num(rates[2]),
                AsciiTable::num(
                    (rates[2] - rates[0]) / rates[0] * 100, 0) + "%",
            });
        };
        sweep("CRAY-like", [](const MachineConfig &c)
                               -> std::unique_ptr<Simulator> {
            return std::make_unique<ScoreboardSim>(
                ScoreboardConfig::crayLike(), c);
        });
        sweep("OOO issue (w=4)",
              [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
                  return std::make_unique<MultiIssueSim>(
                      MultiIssueConfig{ 4, true, BusKind::kPerUnit,
                                        false },
                      c);
              });
        sweep("RUU (w=4, 100)",
              [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
                  return std::make_unique<RuuSim>(
                      RuuConfig{ 4, 100, BusKind::kPerUnit }, c);
              });
        table.addRule();
    }
    table.print(std::cout);
    std::printf(
        "\nExpected shape: the more aggressive the issue logic, the "
        "larger the\nrelative gain from faster branches -- control "
        "becomes the bottleneck\nonce data dependencies are "
        "resolved in hardware.\n");
    return 0;
}
