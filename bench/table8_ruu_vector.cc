/**
 * @file
 * Reproduces Table 8: "Multiple Issue Units with Dependency
 * Resolution; Vectorizable Code".
 */

#include "ruu_table.hh"

int
main()
{
    return mfusim::bench::runRuuTable(
        "Table 8: RUU dependency resolution, vectorizable loops",
        mfusim::LoopClass::kVectorizable);
}
