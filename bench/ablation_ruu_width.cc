/**
 * @file
 * Ablation: RUU issue width beyond the paper's 4 units.
 *
 * "We present the results for up to 4 issue units since having more
 * than 4 issue units did not make a significant difference."  This
 * bench extends the sweep to 8 and 16 units to verify the
 * saturation and locate the binding constraint (functional-unit
 * throughput and the program's dataflow, not issue width).
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Ablation: RUU issue units beyond 4 (M11BR5 and M5BR2,\n"
        "RUU size 96, restricted N-Bus)\n\n");

    AsciiTable table;
    table.setHeader({ "Code", "Config", "w=1", "w=2", "w=4", "w=8",
                      "w=16", "dataflow limit" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        for (const MachineConfig &cfg :
             { configM11BR5(), configM5BR2() }) {
            std::vector<std::string> row = { loopClassName(cls),
                                             cfg.name() };
            for (unsigned width : { 1u, 2u, 4u, 8u, 16u }) {
                const double rate = meanIssueRate(
                    [width](const MachineConfig &c)
                        -> std::unique_ptr<Simulator> {
                        return std::make_unique<RuuSim>(
                            RuuConfig{ width, 96, BusKind::kPerUnit },
                            c);
                    },
                    cls, cfg);
                row.push_back(AsciiTable::num(rate));
            }
            std::vector<double> limits;
            for (int id : loopsOf(cls)) {
                limits.push_back(
                    computeLimits(TraceLibrary::instance().trace(id),
                                  cfg)
                        .actualRate);
            }
            row.push_back(AsciiTable::num(harmonicMean(limits)));
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::printf(
        "\nExpected shape (paper): scalar code saturates by 2-4 "
        "units; widths\nbeyond 4 add little even for vectorizable "
        "code, which stays well\nunder the dataflow limit (branch "
        "serialization and FU throughput bind).\n");
    return 0;
}
