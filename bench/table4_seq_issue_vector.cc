/**
 * @file
 * Reproduces Table 4: "Multiple Issue Units, Sequential Issue for
 * Vectorizable Code".
 */

#include "multi_issue_table.hh"

int
main()
{
    return mfusim::bench::runMultiIssueTable(
        "Table 4: multiple issue units, sequential issue, "
        "vectorizable loops",
        mfusim::LoopClass::kVectorizable, /*outOfOrder=*/false);
}
