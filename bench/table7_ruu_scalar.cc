/**
 * @file
 * Reproduces Table 7: "Multiple Issue Units with Dependency
 * Resolution; Scalar Code".
 */

#include "ruu_table.hh"

int
main()
{
    return mfusim::bench::runRuuTable(
        "Table 7: RUU dependency resolution, scalar loops",
        mfusim::LoopClass::kScalar);
}
