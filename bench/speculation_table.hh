/**
 * @file
 * Shared driver for Tables 5s/8s: one speculative machine swept over
 * the predictor-quality axis (extension beyond the paper).
 *
 * Rows walk from the paper's blocking front end through real
 * predictors (always-taken, BTFN, 2-bit counters), a synthetic
 * fixed-accuracy ladder 80..99%, and the perfect predictor; the
 * legacy oracle branch policy closes the table as the non-speculative
 * upper bound the perfect predictor must reproduce bit-identically.
 * Columns are the four standard machine configurations.  No paper
 * numbers exist for these tables, so cells are measured-only.
 */

#ifndef MFUSIM_BENCH_SPECULATION_TABLE_HH
#define MFUSIM_BENCH_SPECULATION_TABLE_HH

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/spec/predictor.hh"

namespace mfusim
{
namespace bench
{

/** Builds the swept machine for one (config, branch policy) point. */
using SpecMachineMaker = std::function<std::unique_ptr<Simulator>(
    const MachineConfig &, BranchPolicy)>;

inline int
runSpeculationTable(const char *title, LoopClass cls,
                    const SpecMachineMaker &make)
{
    std::printf("%s\n(measured only -- no paper data; the paper's "
                "machines do not speculate)\n\n",
                title);

    struct Row
    {
        const char *label;
        const char *pred; // nullptr = no predictor armed
        BranchPolicy policy;
    };
    const std::vector<Row> rows = {
        { "blocking (paper)", nullptr, BranchPolicy::kBlocking },
        { "pred=taken", "taken", BranchPolicy::kBlocking },
        { "pred=btfn", "btfn", BranchPolicy::kBlocking },
        { "pred=fixed:80", "fixed:80", BranchPolicy::kBlocking },
        { "pred=fixed:85", "fixed:85", BranchPolicy::kBlocking },
        { "pred=fixed:90", "fixed:90", BranchPolicy::kBlocking },
        { "pred=fixed:95", "fixed:95", BranchPolicy::kBlocking },
        { "pred=fixed:99", "fixed:99", BranchPolicy::kBlocking },
        { "pred=2bit", "2bit", BranchPolicy::kBlocking },
        { "pred=perfect", "perfect", BranchPolicy::kBlocking },
        { "oracle (no spec)", nullptr, BranchPolicy::kOracle },
    };

    // One variant per row; each carries its predictor in its own copy
    // of the machine configuration.  All rows of one (config, loop)
    // cell go through the batched sweep entry together: speculative
    // lanes fall back to the scalar path inside runBatch, so the win
    // is the shared decode and one-pass cache population.
    constexpr int kConfigs = 4;
    const auto &configs = standardConfigs();
    const std::vector<int> &loops = loopsOf(cls);
    std::vector<SimFactory> variants;
    for (const Row &row : rows) {
        variants.push_back([&make, row](const MachineConfig &c)
                               -> std::unique_ptr<Simulator> {
            MachineConfig mc = c;
            if (row.pred != nullptr) {
                mc.predictor = PredictorSpec::parse(row.pred);
                mc.predictor.validate();
            }
            return make(mc, row.policy);
        });
    }

    // rate of (config, row, loop)
    std::vector<double> cube(kConfigs * rows.size() * loops.size());
    runGrid(std::size_t(kConfigs) * loops.size(), [&](std::size_t i) {
        const std::size_t cfg = i / loops.size();
        const std::size_t li = i % loops.size();
        const auto cell =
            batchedPerLoopRates(variants, { loops[li] }, configs[cfg]);
        for (std::size_t v = 0; v < variants.size(); ++v)
            cube[(cfg * variants.size() + v) * loops.size() + li] =
                cell[v].front();
    });

    AsciiTable table;
    table.setHeader({ "Predictor", configs[0].name(),
                      configs[1].name(), configs[2].name(),
                      configs[3].name() });
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::vector<std::string> row = { rows[r].label };
        for (std::size_t cfg = 0; cfg < kConfigs; ++cfg) {
            const double mean = harmonicMean(std::span<const double>(
                &cube[(cfg * variants.size() + r) * loops.size()],
                loops.size()));
            row.push_back(AsciiTable::num(mean));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: rates climb monotonically with predictor\n"
        "accuracy (fixed:80 .. fixed:99), and pred=perfect matches\n"
        "the oracle row bit-for-bit -- a correctly predicted branch\n"
        "costs exactly what the legacy oracle policy charged.\n");
    return 0;
}

} // namespace bench
} // namespace mfusim

#endif // MFUSIM_BENCH_SPECULATION_TABLE_HH
