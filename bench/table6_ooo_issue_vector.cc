/**
 * @file
 * Reproduces Table 6: "Multiple Issue Units, Out-of-Order Issue for
 * Vectorizable Loops".
 */

#include "multi_issue_table.hh"

int
main()
{
    return mfusim::bench::runMultiIssueTable(
        "Table 6: multiple issue units, out-of-order issue, "
        "vectorizable loops",
        mfusim::LoopClass::kVectorizable, /*outOfOrder=*/true);
}
