/**
 * @file
 * Section 3.3: "Other Issue Schemes with a Single Issue Unit".
 *
 * The paper surveys single-issue dependency-resolution schemes --
 * the CDC 6600 scoreboard (RAW handled at the units, WAW blocks),
 * the IBM 360/91 Tomasulo scheme (RAW and WAW both resolved), and
 * the RUU -- and quotes: "using the dependency resolution scheme
 * described in [10], the issue rate of an M11BR5 machine with a
 * single issue unit can be improved to about 0.72 instructions per
 * cycle for scalar code and 0.81 instructions for vectorizable
 * code."
 *
 * This bench reproduces that progression on mfusim's traces.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Section 3.3: single-issue dependency-resolution schemes\n"
        "(issue rates; paper quotes RUU-style single issue at 0.72 "
        "scalar /\n0.81 vectorizable on M11BR5)\n\n");

    const std::vector<std::pair<const char *, SimFactory>> schemes = {
        { "CRAY-like blocking issue",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<ScoreboardSim>(
                  ScoreboardConfig::crayLike(), c);
          } },
        { "CDC 6600 (RAW at units)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<Cdc6600Sim>(Cdc6600Config{},
                                                  c);
          } },
        { "Tomasulo (3 RS, 1 CDB)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<TomasuloSim>(
                  TomasuloConfig{ 3, 1, BranchPolicy::kBlocking },
                  c);
          } },
        { "Tomasulo (8 RS, 2 CDB)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<TomasuloSim>(
                  TomasuloConfig{ 8, 2, BranchPolicy::kBlocking },
                  c);
          } },
        { "RUU (1 unit, 50 entries)",
          [](const MachineConfig &c) -> std::unique_ptr<Simulator> {
              return std::make_unique<RuuSim>(
                  RuuConfig{ 1, 50, BusKind::kPerUnit }, c);
          } },
    };

    AsciiTable table;
    table.setHeader({ "Scheme", "Scalar M11BR5", "Scalar M5BR2",
                      "Vector M11BR5", "Vector M5BR2" });
    for (const auto &[name, factory] : schemes) {
        table.addRow({
            name,
            AsciiTable::num(meanIssueRate(factory, LoopClass::kScalar,
                                          configM11BR5())),
            AsciiTable::num(meanIssueRate(factory, LoopClass::kScalar,
                                          configM5BR2())),
            AsciiTable::num(meanIssueRate(
                factory, LoopClass::kVectorizable, configM11BR5())),
            AsciiTable::num(meanIssueRate(
                factory, LoopClass::kVectorizable, configM5BR2())),
        });
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: each step of hazard resolution (RAW at "
        "the units,\nthen WAW renamed, then a unified windowed "
        "buffer) raises the rate;\nthe RUU row is the paper's "
        "'dependency resolution with a single\nissue unit' "
        "configuration.\n");
    return 0;
}
