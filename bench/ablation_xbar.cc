/**
 * @file
 * Ablation: X-Bar vs N-Bus vs 1-Bus result interconnect.
 *
 * The paper: "the results for the X-bar case are essentially the
 * same as those for the N-bus case, we only present the results for
 * the N-bus case."  This bench verifies that claim in the
 * reproduction, across widths, for sequential and out-of-order
 * issue.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/sim/multi_issue_sim.hh"

using namespace mfusim;

namespace
{

double
rate(LoopClass cls, const MachineConfig &cfg, unsigned width, bool ooo,
     BusKind bus)
{
    return meanIssueRate(
        [width, ooo, bus](const MachineConfig &c)
            -> std::unique_ptr<Simulator> {
            return std::make_unique<MultiIssueSim>(
                MultiIssueConfig{ width, ooo, bus, false }, c);
        },
        cls, cfg);
}

} // namespace

int
main()
{
    std::printf(
        "Ablation: result interconnect (X-Bar vs N-Bus vs 1-Bus)\n"
        "M11BR5, both loop classes, sequential and out-of-order "
        "issue\n\n");

    const MachineConfig cfg = configM11BR5();
    AsciiTable table;
    table.setHeader({ "Code", "Issue", "Width", "X-Bar", "N-Bus",
                      "1-Bus", "XBar-NBus" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        for (const bool ooo : { false, true }) {
            for (unsigned width : { 2u, 4u, 8u }) {
                const double xbar =
                    rate(cls, cfg, width, ooo, BusKind::kCrossbar);
                const double nbus =
                    rate(cls, cfg, width, ooo, BusKind::kPerUnit);
                const double onebus =
                    rate(cls, cfg, width, ooo, BusKind::kSingle);
                table.addRow({
                    loopClassName(cls),
                    ooo ? "OOO" : "Seq",
                    std::to_string(width),
                    AsciiTable::num(xbar),
                    AsciiTable::num(nbus),
                    AsciiTable::num(onebus),
                    AsciiTable::num(xbar - nbus, 3),
                });
            }
        }
        table.addRule();
    }
    table.print(std::cout);
    std::printf(
        "\nExpected shape (paper): X-Bar == N-Bus to rounding; "
        "1-Bus close behind\nat these low issue rates.\n");
    return 0;
}
