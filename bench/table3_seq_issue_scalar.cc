/**
 * @file
 * Reproduces Table 3: "Multiple Issue Units, Sequential Issue of
 * Scalar Code".
 */

#include "multi_issue_table.hh"

int
main()
{
    return mfusim::bench::runMultiIssueTable(
        "Table 3: multiple issue units, sequential issue, scalar "
        "loops",
        mfusim::LoopClass::kScalar, /*outOfOrder=*/false);
}
