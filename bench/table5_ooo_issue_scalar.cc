/**
 * @file
 * Reproduces Table 5: "Multiple Issue Units, Out-of-Order Issue for
 * Scalar Code".
 */

#include "multi_issue_table.hh"

int
main()
{
    return mfusim::bench::runMultiIssueTable(
        "Table 5: multiple issue units, out-of-order issue, scalar "
        "loops",
        mfusim::LoopClass::kScalar, /*outOfOrder=*/true);
}
