/**
 * @file
 * Ablation: WAR hazards in the out-of-order instruction buffer.
 *
 * The paper models only RAW and WAW blocking in the buffer ("WAR
 * hazards are not important in a single processor situation") --
 * true for in-order issue, but out-of-order issue with issue-time
 * operand read would need WAR interlocks too.  This bench measures
 * what honoring WAR hazards in the buffer would cost.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/sim/multi_issue_sim.hh"

using namespace mfusim;

int
main()
{
    std::printf(
        "Ablation: blocking WAR hazards in the out-of-order buffer\n"
        "(paper's model ignores WAR; cost of honoring it)\n\n");

    AsciiTable table;
    table.setHeader({ "Code", "Config", "Width", "No WAR (paper)",
                      "WAR blocked", "Delta" });

    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        for (const MachineConfig &cfg : standardConfigs()) {
            for (unsigned width : { 4u, 8u }) {
                const auto rate = [&](bool war) {
                    return meanIssueRate(
                        [width, war](const MachineConfig &c)
                            -> std::unique_ptr<Simulator> {
                            return std::make_unique<MultiIssueSim>(
                                MultiIssueConfig{
                                    width, true, BusKind::kPerUnit,
                                    war },
                                c);
                        },
                        cls, cfg);
                };
                const double loose = rate(false);
                const double strict = rate(true);
                table.addRow({
                    loopClassName(cls),
                    cfg.name(),
                    std::to_string(width),
                    AsciiTable::num(loose),
                    AsciiTable::num(strict),
                    AsciiTable::num(loose - strict, 3),
                });
            }
        }
        table.addRule();
    }
    table.print(std::cout);
    std::printf(
        "\nExpected shape: small deltas -- the 8 S registers are "
        "recycled\nquickly, but most issue blockage is RAW/branch, "
        "not WAR.\n");
    return 0;
}
