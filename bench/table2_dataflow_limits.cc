/**
 * @file
 * Reproduces Table 2: "The Pseudo-Dataflow and Resource Limits for
 * Vector and Scalar Loops" -- the Pure (renamed registers) and
 * Serial (in-order completion per register) limit computations.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/harness/trace_library.hh"

using namespace mfusim;

namespace
{

struct ClassLimits
{
    double pseudo;
    double resource;
    double actual;
};

ClassLimits
limitsFor(LoopClass cls, const MachineConfig &cfg, bool serial)
{
    std::vector<double> pseudo, resource, actual;
    for (int id : loopsOf(cls)) {
        const LimitResult r = computeLimits(
            TraceLibrary::instance().trace(id), cfg, serial);
        pseudo.push_back(r.pseudoRate);
        resource.push_back(r.resourceRate);
        actual.push_back(r.actualRate);
    }
    return { harmonicMean(pseudo), harmonicMean(resource),
             harmonicMean(actual) };
}

} // namespace

int
main()
{
    std::printf("Table 2: pseudo-dataflow and resource limits\n");
    std::printf("(measured [paper])\n\n");

    bench::RatioTracker ratios;
    AsciiTable table;
    table.setHeader({ "Code", "Machine", "Pseudo-Dataflow",
                      "Resource", "Actual" });

    for (const bool serial : { false, true }) {
        for (const LoopClass cls :
             { LoopClass::kScalar, LoopClass::kVectorizable }) {
            const auto &configs = standardConfigs();
            for (int cfg = 0; cfg < 4; ++cfg) {
                const ClassLimits mine = limitsFor(
                    cls, configs[std::size_t(cfg)], serial);
                const paper::Table2Row pub =
                    paper::table2(serial, cls, cfg);
                table.addRow({
                    cfg == 0 ? loopClassName(cls) : "",
                    std::string(serial ? "Serial " : "Pure ") +
                        configs[std::size_t(cfg)].name(),
                    bench::cell(mine.pseudo, pub.pseudo),
                    bench::cell(mine.resource, pub.resource),
                    bench::cell(mine.actual, pub.actual),
                });
                ratios.add(mine.actual, pub.actual);
            }
            table.addRule();
        }
    }
    table.print(std::cout);
    ratios.printSummary("Table 2 (actual limits)");

    std::printf(
        "\nKey shape checks:\n"
        " - Pure pseudo-dataflow limits are identical for M11 and "
        "M5\n   (memory latency hidden under longer chains), as in "
        "the paper.\n"
        " - Serial (no WAW buffering) limits fall below ~1 "
        "instruction/cycle.\n"
        " - Vectorizable loops show a higher pure limit than scalar "
        "loops.\n");
    return 0;
}
