/**
 * @file
 * Table 8s (extension): RUU dependency resolution (w=4, RUU=50)
 * under branch speculation, vectorizable loops as scalar code.  The
 * speculative counterpart of Table 8's (4 units, RUU 50) cell: once
 * the RUU resolves data dependencies in hardware, control is the
 * last wall, so this machine gains the most from prediction.
 */

#include <memory>

#include "mfusim/sim/ruu_sim.hh"
#include "speculation_table.hh"

int
main()
{
    using namespace mfusim;
    return bench::runSpeculationTable(
        "Table 8s: RUU (w=4, size=50) under speculation, "
        "vectorizable loops",
        LoopClass::kVectorizable,
        [](const MachineConfig &c,
           BranchPolicy policy) -> std::unique_ptr<Simulator> {
            return std::make_unique<RuuSim>(
                RuuConfig{ 4, 50, BusKind::kPerUnit, policy }, c);
        });
}
