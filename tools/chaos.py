#!/usr/bin/env python3
"""Chaos harness for `mfusim serve`: kill it, corrupt it, starve it —
then prove it recovers.

Standard library only.  Each scenario boots real daemon processes
(ephemeral ports), drives them over HTTP, injures one on purpose, and
asserts the recovery invariants the serving tier promises:

  kill9        SIGKILL mid-traffic with a persistent cache attached;
               a restarted daemon must warm-load the journal, accept
               zero corrupted entries, and answer every recovered
               cell bit-identically to a cold control daemon.  The
               /v1/trace flight recorder must stay serviceable (200,
               valid mfusim-serve-trace-v1, balanced b/e pairs) both
               mid-hammer and on the reborn daemon.
  corrupt      garbage appended to the journal tail; the restart
               must truncate it (metrics prove it) and keep serving
               bit-identical results.
  faults       a soak under MFUSIM_FAULTS (short reads/writes, torn
               journal appends, dying workers): every 2xx the clients
               manage to get must still be bit-identical, and the
               daemon must survive with its worker pool self-healed.
  slowloris    connections that dribble header bytes forever must be
               cut off with 408 by the header clock while live
               requests keep flowing, bit-identical, around them.
  drain        SIGTERM must finish in-flight work and exit 0 via the
               "drained, bye" path.

Exit status: 0 when every selected scenario holds, 1 otherwise.

Example (the CI chaos-smoke job):

    python3 tools/chaos.py --binary build/tools/mfusim
"""

import argparse
import json
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request


# ----------------------------------------------------------- daemon glue

class Daemon:
    """One `mfusim serve` subprocess on an ephemeral port."""

    def __init__(self, binary, cache_dir=None, faults=None, workers=4,
                 log_path=None, extra_args=None):
        argv = [binary, "serve", "--port", "0",
                "--workers", str(workers)]
        if cache_dir:
            argv += ["--cache-dir", cache_dir]
        if extra_args:
            argv += list(extra_args)
        env = dict(os.environ)
        env.pop("MFUSIM_FAULTS", None)
        if faults:
            env["MFUSIM_FAULTS"] = faults
        self.log_path = log_path
        self.log = open(log_path, "ab") if log_path else None
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, env=env)
        self.port = self._await_port()
        # Keep draining stdout into the log so the pipe never fills.
        self.pump = threading.Thread(target=self._pump, daemon=True)
        self.pump.start()

    def _await_port(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    "daemon exited before announcing its port "
                    f"(exit {self.proc.poll()})")
            if self.log:
                self.log.write(line)
                self.log.flush()
            text = line.decode(errors="replace")
            marker = "listening on port "
            if marker in text:
                return int(text.split(marker)[1].split()[0])
        raise RuntimeError("daemon never announced its port")

    def _pump(self):
        for line in self.proc.stdout:
            if self.log:
                self.log.write(line)
                self.log.flush()

    def url(self, path):
        return f"http://127.0.0.1:{self.port}{path}"

    def kill9(self):
        self.proc.kill()
        self.proc.wait()

    def sigterm(self, timeout=30.0):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def alive(self):
        return self.proc.poll() is None

    def close(self):
        if self.alive():
            self.proc.kill()
            self.proc.wait()
        if self.log:
            self.log.close()
            self.log = None


def http_get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode()


def simulate(daemon, loop, machine, config, timeout=30.0, retries=6):
    """POST /v1/simulate with bounded retries; None when every
    attempt failed (a chaos run drops connections on purpose)."""
    body = json.dumps({"loop": loop, "machine": machine,
                       "config": config}).encode()
    for attempt in range(retries + 1):
        request = urllib.request.Request(
            daemon.url("/v1/simulate"), data=body,
            headers={"Content-Type": "application/json"},
            method="POST")
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout) as response:
                return json.loads(response.read())
        except Exception:
            if attempt == retries:
                return None
            time.sleep(random.uniform(0, 0.05 * (2 ** attempt)))
    return None


def metric(text, name):
    """Value of a metric line in Prometheus exposition text."""
    for line in text.splitlines():
        if line.startswith(name + " ") or \
                line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    return None


def result_bits(payload):
    """The fields that must be bit-identical across recovery."""
    return (payload["instructions"], payload["cycles"],
            payload["rate_str"])


CELLS = [(loop, machine, config)
         for loop in (1, 3, 7, 12)
         for machine in ("cray", "ruu:4:50", "ooo:4", "tomasulo:3:1")
         for config in ("M11BR5",)]


def baseline(daemon):
    """Answer every cell on a pristine daemon: the ground truth."""
    truth = {}
    for loop, machine, config in CELLS:
        payload = simulate(daemon, loop, machine, config)
        if payload is None:
            raise RuntimeError(
                f"control daemon failed on {loop}/{machine}")
        truth[(loop, machine, config)] = result_bits(payload)
    return truth


class ScenarioFailure(Exception):
    pass


def expect(condition, message):
    if not condition:
        raise ScenarioFailure(message)


def expect_trace_serviceable(daemon, when, min_spans=0):
    """GET /v1/trace must answer 200 with a structurally sound
    flight-recorder dump: the recorder is the tool you reach for
    exactly when the daemon is in trouble, so chaos is when it must
    keep working."""
    status, body = http_get(daemon.url("/v1/trace"))
    expect(status == 200, f"/v1/trace {status} {when}")
    dump = json.loads(body)
    expect(dump.get("schema") == "mfusim-serve-trace-v1",
           f"/v1/trace schema {dump.get('schema')!r} {when}")
    events = dump.get("traceEvents", [])
    begins = sum(1 for ev in events if ev.get("ph") == "b")
    ends = sum(1 for ev in events if ev.get("ph") == "e")
    expect(begins == ends,
           f"/v1/trace {begins} begins vs {ends} ends {when}")
    expect(ends >= min_spans,
           f"/v1/trace only {ends} spans {when}, "
           f"expected >= {min_spans}")
    return ends


# ------------------------------------------------------------- scenarios

def scenario_kill9(binary, workdir, truth):
    """SIGKILL mid-append; the restart must recover a warm,
    bit-identical cache."""
    cache = os.path.join(workdir, "kill9-cache")
    victim = Daemon(binary, cache_dir=cache,
                    log_path=os.path.join(workdir, "kill9.log"))
    try:
        # Warm a few cells, then SIGKILL while a writer thread keeps
        # new appends (fresh unrolled variants -> cache misses ->
        # journal writes) in flight.
        for loop, machine, config in CELLS[:6]:
            simulate(victim, loop, machine, config)
        stop = threading.Event()

        def hammer():
            factor = 2
            while not stop.is_set():
                simulate(victim, f"1x{factor}", "ruu:4:50", "M11BR5",
                         timeout=5.0, retries=0)
                factor = factor % 8 + 2
        writer = threading.Thread(target=hammer, daemon=True)
        writer.start()
        time.sleep(0.5)
        # Flight recorder under fire: the dump must be readable WHILE
        # the hammer thread keeps appends in flight.
        spans = expect_trace_serviceable(victim, "mid-hammer",
                                         min_spans=6)
        victim.kill9()          # no drain, no fsync, mid-traffic
        stop.set()
        writer.join(timeout=10)
    finally:
        victim.close()

    reborn = Daemon(binary, cache_dir=cache,
                    log_path=os.path.join(workdir, "kill9.log"))
    try:
        _, metrics = http_get(reborn.url("/metrics"))
        recovered = metric(
            metrics, "mfusim_result_cache_persist_recovered_total")
        expect(recovered is not None and recovered >= 6,
               f"expected >= 6 recovered entries, got {recovered}")
        hits = 0
        for (loop, machine, config), bits in truth.items():
            payload = simulate(reborn, loop, machine, config)
            expect(payload is not None,
                   f"no answer for {loop}/{machine} after restart")
            expect(result_bits(payload) == bits,
                   f"{loop}/{machine}: recovered answer "
                   f"{result_bits(payload)} != control {bits}")
            hits += bool(payload["cached"])
        expect(hits >= 6,
               f"expected >= 6 warm answers after restart, got {hits}")
        # The reborn daemon starts a fresh recorder; after the replay
        # above it must already hold every cell's span.
        expect_trace_serviceable(reborn, "after restart",
                                 min_spans=len(truth))
        print(f"  kill9: recovered={int(recovered)} warm_hits={hits} "
              f"trace_spans_mid_hammer={spans} "
              f"all {len(truth)} cells bit-identical")
    finally:
        reborn.close()


def scenario_corrupt(binary, workdir, truth):
    """A corrupted journal tail must be truncated, never parsed."""
    cache = os.path.join(workdir, "corrupt-cache")
    first = Daemon(binary, cache_dir=cache,
                   log_path=os.path.join(workdir, "corrupt.log"))
    try:
        for loop, machine, config in CELLS:
            simulate(first, loop, machine, config)
        code = first.sigterm()
        expect(code == 0, f"drain exit code {code}")
    finally:
        first.close()

    journal = os.path.join(cache, "results.mfuj")
    expect(os.path.exists(journal), "journal file missing after drain")
    with open(journal, "ab") as f:
        f.write(b"MFUR\x40\x00\x00\x00garbage-that-is-not-a-record")
    tail_bytes = 36

    reborn = Daemon(binary, cache_dir=cache,
                    log_path=os.path.join(workdir, "corrupt.log"))
    try:
        _, metrics = http_get(reborn.url("/metrics"))
        truncated = metric(
            metrics,
            "mfusim_result_cache_persist_truncated_bytes_total")
        expect(truncated is not None and truncated >= tail_bytes,
               f"expected >= {tail_bytes} truncated bytes, "
               f"got {truncated}")
        for (loop, machine, config), bits in truth.items():
            payload = simulate(reborn, loop, machine, config)
            expect(payload is not None and
                   result_bits(payload) == bits,
                   f"{loop}/{machine}: wrong bits after corruption")
        print(f"  corrupt: truncated={int(truncated)}B, all "
              f"{len(truth)} cells bit-identical")
    finally:
        reborn.close()


def scenario_faults(binary, workdir, truth):
    """Soak under injected transport + persistence faults."""
    cache = os.path.join(workdir, "faults-cache")
    spec = ("http.read:short:every=3,http.write:short:every=5,"
            "persist.write:torn:every=7,worker.die:every=29")
    daemon = Daemon(binary, cache_dir=cache, faults=spec, workers=2,
                    log_path=os.path.join(workdir, "faults.log"))
    answered = 0
    try:
        for round_ in range(3):
            for (loop, machine, config), bits in truth.items():
                payload = simulate(daemon, loop, machine, config,
                                   timeout=15.0)
                if payload is None:
                    continue    # dropped by an injected fault
                answered += 1
                expect(result_bits(payload) == bits,
                       f"{loop}/{machine}: answer corrupted under "
                       f"faults (round {round_})")
        expect(daemon.alive(), "daemon died during the fault soak")
        expect(answered >= len(truth),
               f"too few successful answers under faults: {answered}")
        _, metrics = http_get(daemon.url("/metrics"))
        deaths = metric(metrics, "mfusim_http_worker_deaths_total")
        expect(deaths is not None and deaths >= 1,
               f"expected respawned workers, deaths={deaths}")
        read_fires = metric(metrics,
                            "mfusim_faults_http_read_fires_total")
        expect(read_fires is not None and read_fires >= 1,
               "http.read fault never fired")
        code = daemon.sigterm()
        expect(code == 0, f"drain exit code {code} after soak")
        print(f"  faults: answered={answered} "
              f"worker_deaths={int(deaths)} all bit-identical")
    finally:
        daemon.close()


def scenario_slowloris(binary, workdir, truth):
    """Header-dribbling connections are cut with 408; live traffic
    keeps flowing around them."""
    daemon = Daemon(binary, workers=2,
                    extra_args=["--header-timeout-ms", "500"],
                    log_path=os.path.join(workdir, "slowloris.log"))
    attackers = []
    stop = threading.Event()
    try:
        # Eight attackers send a partial request line, then dribble
        # one header byte every 100 ms — each dribble resets nothing:
        # the header clock runs from the FIRST byte.
        for _ in range(8):
            sock = socket.create_connection(
                ("127.0.0.1", daemon.port), timeout=10.0)
            sock.sendall(b"GET /healthz HT")
            attackers.append(sock)

        def dribble():
            while not stop.is_set():
                for sock in attackers:
                    try:
                        sock.sendall(b"T")
                    except OSError:
                        pass    # already cut off — expected
                time.sleep(0.1)
        dribbler = threading.Thread(target=dribble, daemon=True)
        dribbler.start()

        # With every attacker mid-dribble, live requests must still
        # be answered promptly and bit-identically: attackers park in
        # the reactor, they never occupy the two workers.
        for (loop, machine, config) in list(truth)[:4]:
            started = time.monotonic()
            payload = simulate(daemon, loop, machine, config,
                               timeout=15.0)
            elapsed = time.monotonic() - started
            expect(payload is not None,
                   f"no answer for {loop}/{machine} during slowloris")
            expect(result_bits(payload) ==
                   truth[(loop, machine, config)],
                   f"{loop}/{machine}: wrong bits during slowloris")
            expect(elapsed < 10.0,
                   f"{loop}/{machine} took {elapsed:.1f}s "
                   f"during slowloris")

        # Every attacker must be answered 408 and disconnected within
        # a few header budgets.
        cut = 0
        deadline = time.monotonic() + 10.0
        for sock in attackers:
            data = b""
            try:
                sock.settimeout(
                    max(0.1, deadline - time.monotonic()))
                while True:
                    got = sock.recv(4096)
                    if not got:
                        break
                    data += got
            except OSError:
                pass
            if b" 408 " in data:
                cut += 1
        expect(cut == len(attackers),
               f"only {cut}/{len(attackers)} attackers got 408")
        expect(daemon.alive(), "daemon died under slowloris")
        code = daemon.sigterm()
        expect(code == 0, f"drain exit code {code} after slowloris")
        print(f"  slowloris: {cut}/{len(attackers)} attackers cut "
              f"with 408, live traffic bit-identical")
    finally:
        stop.set()
        for sock in attackers:
            try:
                sock.close()
            except OSError:
                pass
        daemon.close()


def scenario_drain(binary, workdir, truth):
    """SIGTERM finishes in-flight work and says goodbye."""
    del truth
    log_path = os.path.join(workdir, "drain.log")
    daemon = Daemon(binary, log_path=log_path)
    try:
        status, _ = http_get(daemon.url("/healthz"))
        expect(status == 200, f"healthz {status}")
        code = daemon.sigterm()
        expect(code == 0, f"drain exit code {code}")
        daemon.pump.join(timeout=10)
        with open(log_path, "rb") as f:
            log = f.read().decode(errors="replace")
        expect("drained, bye" in log, "no 'drained, bye' in log")
        print("  drain: clean exit, 'drained, bye' logged")
    finally:
        daemon.close()


SCENARIOS = {
    "kill9": scenario_kill9,
    "corrupt": scenario_corrupt,
    "faults": scenario_faults,
    "slowloris": scenario_slowloris,
    "drain": scenario_drain,
}


def main():
    parser = argparse.ArgumentParser(
        description="mfusim serve chaos harness")
    parser.add_argument("--binary", default="build/tools/mfusim",
                        help="path to the mfusim CLI binary")
    parser.add_argument("--scenario", action="append",
                        choices=sorted(SCENARIOS), default=None,
                        help="run only these (repeatable); "
                             "default: all")
    parser.add_argument("--workdir", default=None,
                        help="keep logs/caches here instead of a "
                             "temp dir")
    args = parser.parse_args()

    if not os.path.exists(args.binary):
        print(f"chaos: binary not found: {args.binary}",
              file=sys.stderr)
        return 1
    selected = args.scenario or sorted(SCENARIOS)

    workdir = args.workdir or tempfile.mkdtemp(prefix="mfusim_chaos_")
    os.makedirs(workdir, exist_ok=True)
    print(f"chaos: workdir {workdir}")

    # One pristine control daemon answers every cell first: the
    # ground truth every scenario checks bit-identity against.
    control = Daemon(args.binary,
                     log_path=os.path.join(workdir, "control.log"))
    try:
        truth = baseline(control)
    finally:
        control.close()
    print(f"chaos: control baseline over {len(truth)} cells")

    failures = []
    for name in selected:
        print(f"chaos: scenario {name}")
        try:
            SCENARIOS[name](args.binary, workdir, truth)
        except ScenarioFailure as failure:
            failures.append(f"{name}: {failure}")
            print(f"  FAIL: {failure}", file=sys.stderr)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            failures.append(f"{name}: {error!r}")
            print(f"  ERROR: {error!r}", file=sys.stderr)

    if not args.workdir and not failures:
        shutil.rmtree(workdir, ignore_errors=True)
    if failures:
        print(f"chaos: {len(failures)} scenario(s) failed "
              f"(logs in {workdir})", file=sys.stderr)
        return 1
    print(f"chaos: all {len(selected)} scenario(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
