/**
 * @file
 * mfusim command-line tool: inspect kernels, generate and save
 * traces, analyze trace structure, and time traces on any machine
 * organization without writing code.
 *
 * Usage:
 *   mfusim [--jobs N] [--audit] [--no-steady-state]
 *          [--trace-out F] [--metrics-out F] [--pipeview]
 *          <command> ...
 *
 *   mfusim --version
 *   mfusim list
 *   mfusim disasm  <loop>
 *   mfusim analyze <loop> [config]
 *   mfusim limits  <loop> [config]
 *   mfusim rate    <loop> <machine> [config]
 *   mfusim save    <loop> <file>
 *   mfusim replay  <file> <machine> [config]
 *
 * --jobs N  worker threads for sweeps (also: MFUSIM_JOBS env var);
 *           used by "rate all"
 * --audit   run every simulation under the SimAudit legality checker
 *           (also: MFUSIM_AUDIT=1 env var); a violated invariant
 *           aborts with exit code 6
 * --no-steady-state
 *           disable the steady-state extrapolation fast path (also:
 *           MFUSIM_NO_STEADY_STATE=1 env var); results are identical
 *           either way — this is a debugging escape hatch
 * --trace-out F    (rate/replay, single loop) write the pipeline
 *           schedule as Chrome/Perfetto trace-event JSON to F
 * --metrics-out F  (rate/replay) write the run's MetricsRegistry to
 *           F — JSON, or CSV when F ends in ".csv"; with "rate all"
 *           the per-loop registries are merged across the sweep
 * --pipeview       (rate/replay, single loop) print an ASCII
 *           pipeline diagram of the first ops to stdout
 * --version print the git revision this binary was built from
 *
 * Attaching any of the observability sinks disables the steady-state
 * fast path for that run, so traces and metrics are cycle-exact.
 *
 * Exit codes: 0 success, 1 generic failure, 2 usage, 3 bad config,
 * 4 bad trace, 5 simulator failure (livelock watchdog / unsupported
 * trace), 6 audit violation, 7 sweep cell failure(s).
 * <loop>    1..14 (optionally "<id>x<factor>" for an unrolled
 *           variant, e.g. "1x4", or "<id>v" for a vector-unit
 *           compilation, e.g. "7v"), or "all" (rate only): every
 *           library loop, timed on the sweep worker pool
 * <config>  M11BR5 (default) | M11BR2 | M5BR5 | M5BR2
 * <machine> simple | serialmem | nonseg | cray | cdc |
 *           tomasulo[:<rs>[:<cdb>]] |
 *           seq:<w> | ooo:<w> | ruu:<w>:<size>
 *           with optional ",1bus" / ",xbar" and ",btfn" / ",oracle"
 *           suffixes, e.g. "ruu:4:50,1bus,oracle"
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mfusim/mfusim.hh"

#ifndef MFUSIM_GIT_SHA
#define MFUSIM_GIT_SHA "unknown"
#endif

using namespace mfusim;

namespace
{

/** Global observability options (set by the flag stripper). */
struct ObsOptions
{
    std::string traceOut;
    std::string metricsOut;
    bool pipeview = false;

    bool active() const
    {
        return !traceOut.empty() || !metricsOut.empty() || pipeview;
    }
};

ObsOptions g_obs;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mfusim [--jobs N] [--audit] "
                 "[--no-steady-state]\n"
                 "       [--trace-out F] [--metrics-out F] "
                 "[--pipeview]\n"
                 "       "
                 "list | disasm <loop> | analyze <loop> [cfg] |\n"
                 "       limits <loop> [cfg] | "
                 "rate <loop>|all <machine> [cfg] |\n"
                 "       save <loop> <file> | "
                 "replay <file> <machine> [cfg]\n"
                 "       mfusim --version\n");
    std::exit(2);
}

MachineConfig
parseConfig(const std::string &name)
{
    for (const MachineConfig &cfg : standardConfigs()) {
        if (cfg.name() == name)
            return cfg;
    }
    std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
    std::exit(2);
}

/**
 * "5" -> canonical loop 5; "1x4" -> loop 1 unrolled by 4;
 * "7v" -> loop 7 compiled for the vector unit.
 */
Kernel
parseKernel(const std::string &spec)
{
    try {
        if (!spec.empty() && spec.back() == 'v') {
            return buildVectorizedKernel(
                std::stoi(spec.substr(0, spec.size() - 1)));
        }
        const auto x = spec.find('x');
        if (x == std::string::npos)
            return buildKernel(std::stoi(spec));
        return buildUnrolledKernel(std::stoi(spec.substr(0, x)),
                                   std::stoi(spec.substr(x + 1)));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bad loop '%s': %s\n", spec.c_str(),
                     e.what());
        std::exit(2);
    }
}

DynTrace
traceFor(const std::string &spec)
{
    const Kernel kernel = parseKernel(spec);
    KernelRun run = runKernel(kernel, "LL" + spec);
    if (run.mismatches != 0) {
        std::fprintf(stderr,
                     "loop %s failed reference validation "
                     "(%zu/%zu cells)\n",
                     spec.c_str(), run.mismatches, run.checkedCells);
        std::exit(1);
    }
    return std::move(run.trace);
}

std::unique_ptr<Simulator>
parseMachine(const std::string &spec, const MachineConfig &cfg)
{
    // Split "name,opt,opt" on commas.
    std::vector<std::string> parts;
    std::stringstream in(spec);
    std::string part;
    while (std::getline(in, part, ','))
        parts.push_back(part);
    if (parts.empty())
        usage();

    BusKind bus = BusKind::kPerUnit;
    BranchPolicy policy = BranchPolicy::kBlocking;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "1bus")
            bus = BusKind::kSingle;
        else if (parts[i] == "xbar")
            bus = BusKind::kCrossbar;
        else if (parts[i] == "btfn")
            policy = BranchPolicy::kBtfn;
        else if (parts[i] == "oracle")
            policy = BranchPolicy::kOracle;
        else {
            std::fprintf(stderr, "unknown machine option '%s'\n",
                         parts[i].c_str());
            std::exit(2);
        }
    }

    // Split the machine name on colons: name[:w[:size]].
    std::vector<std::string> fields;
    std::stringstream name_in(parts[0]);
    while (std::getline(name_in, part, ':'))
        fields.push_back(part);

    const auto arg = [&fields](std::size_t i) -> unsigned {
        if (i >= fields.size()) {
            std::fprintf(stderr, "machine spec needs more fields\n");
            std::exit(2);
        }
        return unsigned(std::stoul(fields[i]));
    };

    if (fields[0] == "simple")
        return std::make_unique<SimpleSim>(cfg);
    if (fields[0] == "serialmem" || fields[0] == "nonseg" ||
        fields[0] == "cray") {
        ScoreboardConfig org =
            fields[0] == "serialmem" ?
                ScoreboardConfig::serialMemory() :
                fields[0] == "nonseg" ?
                    ScoreboardConfig::nonSegmented() :
                    ScoreboardConfig::crayLike();
        org.branchPolicy = policy;
        return std::make_unique<ScoreboardSim>(org, cfg);
    }
    if (fields[0] == "seq" || fields[0] == "ooo") {
        MultiIssueConfig org{ arg(1), fields[0] == "ooo", bus, false,
                              policy };
        return std::make_unique<MultiIssueSim>(org, cfg);
    }
    if (fields[0] == "ruu") {
        RuuConfig org{ arg(1), arg(2), bus, policy };
        return std::make_unique<RuuSim>(org, cfg);
    }
    if (fields[0] == "cdc") {
        Cdc6600Config org;
        // ",xbar" lifts the single-result-bus completion model.
        org.modelResultBus = bus != BusKind::kCrossbar;
        org.branchPolicy = policy;
        return std::make_unique<Cdc6600Sim>(org, cfg);
    }
    if (fields[0] == "tomasulo") {
        TomasuloConfig org;
        if (fields.size() > 1)
            org.stationsPerFu = arg(1);
        if (fields.size() > 2)
            org.cdbCount = arg(2);
        org.branchPolicy = policy;
        return std::make_unique<TomasuloSim>(org, cfg);
    }
    std::fprintf(stderr, "unknown machine '%s'\n", parts[0].c_str());
    std::exit(2);
}

/** Write @p metrics to @p path — CSV by extension, JSON otherwise. */
void
writeMetricsFile(const MetricsRegistry &metrics,
                 const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw Error("cannot open '" + path + "'");
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        metrics.writeCsv(out);
    else
        metrics.writeJson(out);
}

/**
 * Run @p sim on @p dyn honoring the global observability flags.
 *
 * With no flags this is the plain (or audited) run.  With any flag
 * set the run is phased — decode, period-detect, simulate, each
 * wall-timed into a profile.* gauge — with a PipeTraceRecorder
 * attached (which disables the steady-state fast path, making every
 * output cycle-exact), and the requested artifacts are written
 * afterwards.  --audit composes: the Auditor joins the recorder
 * behind one FanoutSink.
 */
SimResult
runObserved(Simulator &sim, const DynTrace &dyn,
            const MachineConfig &cfg)
{
    const bool audit = auditRequested();
    if (!g_obs.active())
        return audit ? runAudited(sim, DecodedTrace(dyn, cfg))
                     : sim.run(dyn);

    MetricsRegistry metrics;
    std::unique_ptr<DecodedTrace> decoded;
    {
        ScopedPhaseTimer phase(
            metrics.gauge("profile.decode_seconds"));
        decoded = std::make_unique<DecodedTrace>(dyn, cfg);
    }
    {
        // Periodicity is computed lazily; forcing it here separates
        // its cost from the simulate phase.
        ScopedPhaseTimer phase(
            metrics.gauge("profile.period_detect_seconds"));
        (void)decoded->periodicity();
    }

    PipeTraceRecorder recorder;
    FanoutSink fanout;
    fanout.add(&recorder);
    std::unique_ptr<Auditor> auditor;
    if (audit) {
        auditor = std::make_unique<Auditor>(
            *decoded, sim.auditRules(), sim.name());
        fanout.add(auditor.get());
    }

    sim.attachAudit(&fanout);
    SimResult result;
    try {
        ScopedPhaseTimer phase(
            metrics.gauge("profile.simulate_seconds"));
        result = sim.run(*decoded);
    } catch (...) {
        sim.attachAudit(nullptr);
        throw;
    }
    sim.attachAudit(nullptr);
    if (auditor)
        auditor->finish();

    populateRunMetrics(metrics, *decoded, recorder, result, sim);

    if (!g_obs.traceOut.empty()) {
        std::ofstream out(g_obs.traceOut);
        if (!out)
            throw Error("cannot open '" + g_obs.traceOut + "'");
        writeChromeTrace(out, recorder, *decoded,
                         sim.name() + " " + cfg.name() + " " +
                             dyn.name());
    }
    if (!g_obs.metricsOut.empty())
        writeMetricsFile(metrics, g_obs.metricsOut);
    if (g_obs.pipeview)
        writePipeview(std::cout, recorder, *decoded);
    return result;
}

int
cmdList()
{
    AsciiTable table;
    table.setHeader({ "Loop", "Name", "Class", "Ops", "Branches",
                      "Mem%", "BTFN%" });
    for (const KernelSpec &spec : kernelSpecs()) {
        const DynTrace &trace =
            TraceLibrary::instance().trace(spec.id);
        const TraceStats stats = trace.stats();
        table.addRow({
            "LL" + std::to_string(spec.id),
            spec.name,
            spec.vectorizable ? "vector" : "scalar",
            std::to_string(stats.totalOps),
            std::to_string(stats.branches),
            AsciiTable::num(stats.memoryFraction() * 100, 0),
            AsciiTable::num(stats.btfnAccuracy() * 100, 0),
        });
    }
    table.print(std::cout);
    return 0;
}

int
cmdDisasm(const std::string &loop)
{
    const Kernel kernel = parseKernel(loop);
    std::fputs(kernel.program.disassemble().c_str(), stdout);
    return 0;
}

int
cmdAnalyze(const std::string &loop, const MachineConfig &cfg)
{
    const DynTrace trace = traceFor(loop);
    std::fputs(analyzeTrace(trace, cfg).c_str(), stdout);
    return 0;
}

int
cmdLimits(const std::string &loop, const MachineConfig &cfg)
{
    const DynTrace trace = traceFor(loop);
    const LimitResult pure = computeLimits(trace, cfg, false);
    const LimitResult serial = computeLimits(trace, cfg, true);
    std::printf("loop %s, %s:\n", loop.c_str(), cfg.name().c_str());
    std::printf("  pseudo-dataflow  %.3f (%llu cycles)\n",
                pure.pseudoRate,
                (unsigned long long)pure.pseudoCycles);
    std::printf("  resource         %.3f (%llu cycles)\n",
                pure.resourceRate,
                (unsigned long long)pure.resourceCycles);
    std::printf("  actual           %.3f\n", pure.actualRate);
    std::printf("  serial (no WAW)  %.3f\n", serial.actualRate);
    return 0;
}

int
cmdRateAll(const std::string &machine, const MachineConfig &cfg)
{
    // One grid cell per library loop, timed on the sweep worker
    // pool (mfusim --jobs N / MFUSIM_JOBS).
    const SimFactory factory = [&machine](const MachineConfig &c) {
        return parseMachine(machine, c);
    };
    if (!g_obs.traceOut.empty() || g_obs.pipeview) {
        std::fprintf(stderr, "--trace-out/--pipeview need a single "
                             "loop, not 'all'\n");
        return 2;
    }
    std::vector<int> loops;
    for (const KernelSpec &spec : kernelSpecs())
        loops.push_back(spec.id);
    std::vector<double> rates;
    if (!g_obs.metricsOut.empty()) {
        // Instrumented sweep: per-cell registries, merged in loop
        // order.
        SweepMetrics sweep =
            parallelPerLoopMetrics(factory, loops, cfg);
        rates = std::move(sweep.rates);
        writeMetricsFile(sweep.metrics, g_obs.metricsOut);
    } else {
        rates = parallelPerLoopRates(factory, loops, cfg);
    }

    const std::string sim_name = parseMachine(machine, cfg)->name();
    std::printf("%s, %s (%u jobs):\n", sim_name.c_str(),
                cfg.name().c_str(), defaultSweepJobs());
    AsciiTable table;
    table.setHeader({ "Loop", "Class", "Rate" });
    std::vector<double> scalar_rates, vector_rates;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const bool vec = kernelSpecs()[i].vectorizable;
        (vec ? vector_rates : scalar_rates).push_back(rates[i]);
        table.addRow({ "LL" + std::to_string(loops[i]),
                       vec ? "vector" : "scalar",
                       AsciiTable::num(rates[i], 4) });
    }
    table.print(std::cout);
    std::printf("harmonic mean: scalar %.4f, vectorizable %.4f\n",
                harmonicMean(scalar_rates),
                harmonicMean(vector_rates));
    return 0;
}

int
cmdRate(const std::string &loop, const std::string &machine,
        const MachineConfig &cfg)
{
    if (loop == "all")
        return cmdRateAll(machine, cfg);
    const DynTrace trace = traceFor(loop);
    auto sim = parseMachine(machine, cfg);
    const SimResult result = runObserved(*sim, trace, cfg);
    std::printf("%s on %s, %s: %.4f instr/cycle "
                "(%llu instructions, %llu cycles)%s\n",
                trace.name().c_str(), sim->name().c_str(),
                cfg.name().c_str(), result.issueRate(),
                (unsigned long long)result.instructions,
                (unsigned long long)result.cycles,
                auditRequested() ? " [audited]" : "");
    return 0;
}

int
cmdSave(const std::string &loop, const std::string &path)
{
    const DynTrace trace = traceFor(loop);
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    saveTrace(out, trace);
    std::printf("wrote %zu ops to %s\n", trace.size(), path.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, const std::string &machine,
          const MachineConfig &cfg)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    const DynTrace trace = loadTrace(in);
    auto sim = parseMachine(machine, cfg);
    const SimResult result = runObserved(*sim, trace, cfg);
    std::printf("%s on %s, %s: %.4f instr/cycle%s\n",
                trace.name().c_str(), sim->name().c_str(),
                cfg.name().c_str(), result.issueRate(),
                auditRequested() ? " [audited]" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the global --jobs option before command dispatch.
    const auto parse_jobs = [](const std::string &value) {
        try {
            std::size_t used = 0;
            const unsigned long jobs = std::stoul(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
            setDefaultSweepJobs(unsigned(jobs));
        } catch (const std::exception &) {
            std::fprintf(stderr, "--jobs expects a number, got '%s'\n",
                         value.c_str());
            std::exit(2);
        }
    };
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            if (i + 1 >= argc)
                usage();
            parse_jobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            parse_jobs(arg.substr(7));
        } else if (arg == "--audit") {
            setAuditRequested(true);
        } else if (arg == "--no-steady-state") {
            setSteadyStateEnabled(false);
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                usage();
            g_obs.traceOut = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            g_obs.traceOut = arg.substr(12);
        } else if (arg == "--metrics-out") {
            if (i + 1 >= argc)
                usage();
            g_obs.metricsOut = argv[++i];
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            g_obs.metricsOut = arg.substr(14);
        } else if (arg == "--pipeview") {
            g_obs.pipeview = true;
        } else if (arg == "--version") {
            std::printf("mfusim %s\n", MFUSIM_GIT_SHA);
            return 0;
        } else {
            args.push_back(arg);
        }
    }
    argc = int(args.size()) + 1;
    std::vector<char *> argv_vec{ argv[0] };
    for (std::string &arg : args)
        argv_vec.push_back(arg.data());
    argv = argv_vec.data();

    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const auto cfg_arg = [&](int index) {
        return index < argc ? parseConfig(argv[index])
                            : configM11BR5();
    };

    // Typed mfusim errors map to distinct exit codes (see the file
    // comment); anything else is a generic failure (1).
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "disasm" && argc >= 3)
            return cmdDisasm(argv[2]);
        if (cmd == "analyze" && argc >= 3)
            return cmdAnalyze(argv[2], cfg_arg(3));
        if (cmd == "limits" && argc >= 3)
            return cmdLimits(argv[2], cfg_arg(3));
        if (cmd == "rate" && argc >= 4)
            return cmdRate(argv[2], argv[3], cfg_arg(4));
        if (cmd == "save" && argc >= 4)
            return cmdSave(argv[2], argv[3]);
        if (cmd == "replay" && argc >= 4)
            return cmdReplay(argv[2], argv[3], cfg_arg(4));
    } catch (const Error &e) {
        std::fprintf(stderr, "mfusim: %s\n", e.what());
        return e.exitCode();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mfusim: %s\n", e.what());
        return 1;
    }
    usage();
}
