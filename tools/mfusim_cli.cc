/**
 * @file
 * mfusim command-line tool: inspect kernels, generate and save
 * traces, analyze trace structure, and time traces on any machine
 * organization without writing code.
 *
 * Usage:
 *   mfusim [--jobs N] [--audit] [--no-steady-state]
 *          [--predictor SPEC]
 *          [--trace-out F] [--metrics-out F] [--pipeview]
 *          <command> ...
 *
 *   mfusim --version
 *   mfusim list
 *   mfusim disasm  <loop>
 *   mfusim analyze <loop> [config]
 *   mfusim limits  <loop> [config]
 *   mfusim rate    <loop> <machine> [config]
 *   mfusim save    <loop> <file>
 *   mfusim replay  <file> <machine> [config]
 *   mfusim serve   [--port N] [--workers K] [--queue-depth D]
 *                  [--deadline-ms M] [--max-body B] [--cache-dir P]
 *                  [--header-timeout-ms H] [--write-timeout-ms W]
 *                  [--idle-timeout-ms I] [--max-pipeline P]
 *                  [--slow-request-ms S] [--trace-ring N]
 *                  [--trace-dump PREFIX] [--no-request-trace]
 *
 * --jobs N  worker threads for sweeps (also: MFUSIM_JOBS env var);
 *           used by "rate all"
 * --audit   run every simulation under the SimAudit legality checker
 *           (also: MFUSIM_AUDIT=1 env var); a violated invariant
 *           aborts with exit code 6
 * --no-steady-state
 *           disable the steady-state extrapolation fast path (also:
 *           MFUSIM_NO_STEADY_STATE=1 env var); results are identical
 *           either way — this is a debugging escape hatch
 * --predictor SPEC
 *           arm a branch predictor on the run's machine config
 *           (MultiIssue / RUU machines only).  SPEC is
 *           perfect | taken | btfn | 2bit[:TABLE] | fixed:PCT[:sSEED]
 *           with an optional ":wN" wrong-path-window suffix, e.g.
 *           "2bit:1024:w8" or "fixed:90".  Equivalent to the
 *           ",pred=SPEC" machine-spec option.
 * --trace-out F    (rate/replay, single loop) write the pipeline
 *           schedule as Chrome/Perfetto trace-event JSON to F
 * --metrics-out F  (rate/replay) write the run's MetricsRegistry to
 *           F — JSON, or CSV when F ends in ".csv"; with "rate all"
 *           the per-loop registries are merged across the sweep
 * --pipeview       (rate/replay, single loop) print an ASCII
 *           pipeline diagram of the first ops to stdout
 * --version print the git revision this binary was built from
 *
 * Attaching any of the observability sinks disables the steady-state
 * fast path for that run, so traces and metrics are cycle-exact.
 *
 * Exit codes: 0 success, 1 generic failure, 2 usage, 3 bad config,
 * 4 bad trace, 5 simulator failure (livelock watchdog / unsupported
 * trace), 6 audit violation, 7 sweep cell failure(s), 8 serve
 * failure (e.g. the port is taken), 128+signo when a sweep is
 * interrupted by SIGINT/SIGTERM (partial output is still flushed).
 *
 * serve: a batching simulation-as-a-service HTTP daemon — see
 * docs/SERVING.md.  --port P (default 8100, 0 = ephemeral),
 * --workers K request workers (default 4), --queue-depth D bounded
 * admission queue (default 64, overflow answers 429), --deadline-ms
 * M per-request deadline (default 30000), --max-body B largest
 * accepted body in bytes (default 1 MiB), --cache-dir P persist the
 * result cache to a crash-safe journal under P (restarts warm-load
 * it), --header-timeout-ms H anti-slowloris header-phase deadline
 * (default 5000), --write-timeout-ms W response-write budget
 * (default 10000), --idle-timeout-ms I parked keep-alive timeout
 * (default 5000), --max-pipeline P pipelined-requests-per-connection
 * bound (default 16).  SIGINT/SIGTERM drain gracefully.
 * MFUSIM_FAULTS arms deterministic fault injection for chaos testing
 * (see core/faultpoint.hh for the spec grammar).
 *
 * serve tracing (obs/req_trace.hh, docs/SERVING.md): request
 * lifecycle tracing is on by default — every request is phase-
 * stamped into per-worker flight-recorder rings, exported live via
 * GET /v1/trace?last=N and dumped to <PREFIX>-<n>.json on SIGUSR2
 * (--trace-dump PREFIX, default "mfusim-trace").  --trace-ring N
 * sets spans retained per ring (default 2048), --slow-request-ms S
 * logs a structured line for requests slower than S ms (default 0 =
 * off), --no-request-trace disarms the whole subsystem (/v1/trace
 * then answers 503).
 * <loop>    1..14 (optionally "<id>x<factor>" for an unrolled
 *           variant, e.g. "1x4", or "<id>v" for a vector-unit
 *           compilation, e.g. "7v"), or "all" (rate only): every
 *           library loop, timed on the sweep worker pool
 * <config>  M11BR5 (default) | M11BR2 | M5BR5 | M5BR2
 * <machine> simple | serialmem | nonseg | cray | cdc |
 *           tomasulo[:<rs>[:<cdb>]] |
 *           seq:<w> | ooo:<w> | ruu:<w>:<size>
 *           with optional ",1bus" / ",xbar", ",btfn" / ",oracle" and
 *           ",pred=SPEC" suffixes, e.g. "ruu:4:50,1bus,oracle" or
 *           "ooo:4,pred=2bit"
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include "mfusim/mfusim.hh"
#include "mfusim/obs/req_trace.hh"

#ifndef MFUSIM_GIT_SHA
#define MFUSIM_GIT_SHA "unknown"
#endif

#ifndef MFUSIM_BUILD_TYPE
#define MFUSIM_BUILD_TYPE "unknown"
#endif

using namespace mfusim;

namespace
{

/** Global observability options (set by the flag stripper). */
struct ObsOptions
{
    std::string traceOut;
    std::string metricsOut;
    bool pipeview = false;

    bool active() const
    {
        return !traceOut.empty() || !metricsOut.empty() || pipeview;
    }
};

ObsOptions g_obs;

/** --predictor SPEC, applied to every command's machine config. */
std::string g_predictor;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mfusim [--jobs N] [--audit] "
                 "[--no-steady-state]\n"
                 "       [--predictor SPEC]\n"
                 "       [--trace-out F] [--metrics-out F] "
                 "[--pipeview]\n"
                 "       "
                 "list | disasm <loop> | analyze <loop> [cfg] |\n"
                 "       limits <loop> [cfg] | "
                 "rate <loop>|all <machine> [cfg] |\n"
                 "       save <loop> <file> | "
                 "replay <file> <machine> [cfg] |\n"
                 "       serve [--port N] [--workers K] "
                 "[--queue-depth D]\n"
                 "             [--deadline-ms M] [--max-body B] "
                 "[--cache-dir P]\n"
                 "             [--header-timeout-ms H] "
                 "[--write-timeout-ms W]\n"
                 "             [--idle-timeout-ms I] "
                 "[--max-pipeline P]\n"
                 "             [--slow-request-ms S] "
                 "[--trace-ring N]\n"
                 "             [--trace-dump PREFIX] "
                 "[--no-request-trace]\n"
                 "       mfusim --version\n");
    std::exit(2);
}

// The shared spec grammar lives in harness/spec_parse.hh (the serve
// daemon uses it too).  These wrappers keep the CLI's historical
// behaviour: a bad spec prints to stderr and exits with the usage
// code (2) instead of the ConfigError code (3).

MachineConfig
parseConfig(const std::string &name)
{
    try {
        return parseConfigSpec(name);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

Kernel
parseKernel(const std::string &spec)
{
    try {
        return parseKernelSpec(spec);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

DynTrace
traceFor(const std::string &spec)
{
    try {
        return traceForLoopSpec(spec);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

std::unique_ptr<Simulator>
parseMachine(const std::string &spec, const MachineConfig &cfg)
{
    try {
        return parseMachineSpec(spec, cfg);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

/** Write @p metrics to @p path — CSV by extension, JSON otherwise. */
void
writeMetricsFile(const MetricsRegistry &metrics,
                 const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw Error("cannot open '" + path + "'");
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        metrics.writeCsv(out);
    else
        metrics.writeJson(out);
}

/**
 * Run @p sim on @p dyn honoring the global observability flags.
 *
 * With no flags this is the plain (or audited) run.  With any flag
 * set the run is phased — decode, period-detect, simulate, each
 * wall-timed into a profile.* gauge — with a PipeTraceRecorder
 * attached (which disables the steady-state fast path, making every
 * output cycle-exact), and the requested artifacts are written
 * afterwards.  --audit composes: the Auditor joins the recorder
 * behind one FanoutSink.
 */
SimResult
runObserved(Simulator &sim, const DynTrace &dyn,
            const MachineConfig &cfg)
{
    const bool audit = auditRequested();
    if (!g_obs.active())
        return audit ? runAudited(sim, DecodedTrace(dyn, cfg))
                     : sim.run(dyn);

    MetricsRegistry metrics;
    std::unique_ptr<DecodedTrace> decoded;
    {
        ScopedPhaseTimer phase(
            metrics.gauge("profile.decode_seconds"));
        decoded = std::make_unique<DecodedTrace>(dyn, cfg);
    }
    {
        // Periodicity is computed lazily; forcing it here separates
        // its cost from the simulate phase.
        ScopedPhaseTimer phase(
            metrics.gauge("profile.period_detect_seconds"));
        (void)decoded->periodicity();
    }

    PipeTraceRecorder recorder;
    FanoutSink fanout;
    fanout.add(&recorder);
    std::unique_ptr<Auditor> auditor;
    if (audit) {
        auditor = std::make_unique<Auditor>(
            *decoded, sim.auditRules(), sim.name());
        fanout.add(auditor.get());
    }

    sim.attachAudit(&fanout);
    SimResult result;
    try {
        ScopedPhaseTimer phase(
            metrics.gauge("profile.simulate_seconds"));
        result = sim.run(*decoded);
    } catch (...) {
        sim.attachAudit(nullptr);
        throw;
    }
    sim.attachAudit(nullptr);
    if (auditor)
        auditor->finish();

    populateRunMetrics(metrics, *decoded, recorder, result, sim);

    if (!g_obs.traceOut.empty()) {
        std::ofstream out(g_obs.traceOut);
        if (!out)
            throw Error("cannot open '" + g_obs.traceOut + "'");
        writeChromeTrace(out, recorder, *decoded,
                         sim.name() + " " + cfg.name() + " " +
                             dyn.name());
    }
    if (!g_obs.metricsOut.empty())
        writeMetricsFile(metrics, g_obs.metricsOut);
    if (g_obs.pipeview)
        writePipeview(std::cout, recorder, *decoded);
    return result;
}

int
cmdList()
{
    AsciiTable table;
    table.setHeader({ "Loop", "Name", "Class", "Ops", "Branches",
                      "Mem%", "BTFN%" });
    for (const KernelSpec &spec : kernelSpecs()) {
        const DynTrace &trace =
            TraceLibrary::instance().trace(spec.id);
        const TraceStats stats = trace.stats();
        table.addRow({
            "LL" + std::to_string(spec.id),
            spec.name,
            spec.vectorizable ? "vector" : "scalar",
            std::to_string(stats.totalOps),
            std::to_string(stats.branches),
            AsciiTable::num(stats.memoryFraction() * 100, 0),
            AsciiTable::num(stats.btfnAccuracy() * 100, 0),
        });
    }
    table.print(std::cout);
    return 0;
}

int
cmdDisasm(const std::string &loop)
{
    const Kernel kernel = parseKernel(loop);
    std::fputs(kernel.program.disassemble().c_str(), stdout);
    return 0;
}

int
cmdAnalyze(const std::string &loop, const MachineConfig &cfg)
{
    const DynTrace trace = traceFor(loop);
    std::fputs(analyzeTrace(trace, cfg).c_str(), stdout);
    return 0;
}

int
cmdLimits(const std::string &loop, const MachineConfig &cfg)
{
    const DynTrace trace = traceFor(loop);
    const LimitResult pure = computeLimits(trace, cfg, false);
    const LimitResult serial = computeLimits(trace, cfg, true);
    std::printf("loop %s, %s:\n", loop.c_str(), cfg.name().c_str());
    std::printf("  pseudo-dataflow  %.3f (%llu cycles)\n",
                pure.pseudoRate,
                (unsigned long long)pure.pseudoCycles);
    std::printf("  resource         %.3f (%llu cycles)\n",
                pure.resourceRate,
                (unsigned long long)pure.resourceCycles);
    std::printf("  actual           %.3f\n", pure.actualRate);
    std::printf("  serial (no WAW)  %.3f\n", serial.actualRate);
    return 0;
}

int
cmdRateAll(const std::string &machine, const MachineConfig &cfg)
{
    // One grid cell per library loop, timed on the sweep worker
    // pool (mfusim --jobs N / MFUSIM_JOBS).  Ctrl-C / SIGTERM stop
    // the grid at cell granularity; the partial table and metrics
    // file are still flushed before exiting 128+signo.
    installShutdownHandler();
    const SimFactory factory = [&machine](const MachineConfig &c) {
        return parseMachine(machine, c);
    };
    if (!g_obs.traceOut.empty() || g_obs.pipeview) {
        std::fprintf(stderr, "--trace-out/--pipeview need a single "
                             "loop, not 'all'\n");
        return 2;
    }
    std::vector<int> loops;
    for (const KernelSpec &spec : kernelSpecs())
        loops.push_back(spec.id);
    std::vector<double> rates;
    if (!g_obs.metricsOut.empty()) {
        // Instrumented sweep: per-cell registries, merged in loop
        // order.
        SweepMetrics sweep =
            parallelPerLoopMetrics(factory, loops, cfg);
        rates = std::move(sweep.rates);
        writeMetricsFile(sweep.metrics, g_obs.metricsOut);
    } else {
        rates = parallelPerLoopRates(factory, loops, cfg);
    }

    const std::string sim_name = parseMachine(machine, cfg)->name();
    std::printf("%s, %s (%u jobs):\n", sim_name.c_str(),
                cfg.name().c_str(), defaultSweepJobs());
    AsciiTable table;
    table.setHeader({ "Loop", "Class", "Rate" });
    std::vector<double> scalar_rates, vector_rates;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const bool vec = kernelSpecs()[i].vectorizable;
        (vec ? vector_rates : scalar_rates).push_back(rates[i]);
        table.addRow({ "LL" + std::to_string(loops[i]),
                       vec ? "vector" : "scalar",
                       AsciiTable::num(rates[i], 4) });
    }
    table.print(std::cout);
    std::printf("harmonic mean: scalar %.4f, vectorizable %.4f\n",
                harmonicMean(scalar_rates),
                harmonicMean(vector_rates));
    if (shutdownRequested()) {
        std::fflush(stdout);
        std::fprintf(stderr,
                     "mfusim: interrupted by signal %d; partial "
                     "results flushed\n",
                     shutdownSignal());
        return 128 + shutdownSignal();
    }
    return 0;
}

namespace
{

/**
 * SIGUSR2 self-pipe: the handler only writes one byte (async-signal
 * safe); the serve park loop polls the read end and dumps the flight
 * recorder when it fires.  Mirrors the shutdown self-pipe pattern
 * (core/shutdown.hh) — SIGUSR2 stays CLI-local because only the
 * serve command gives it a meaning.
 */
int g_usr2Pipe[2] = { -1, -1 };

void
handleUsr2(int)
{
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_usr2Pipe[1], &byte, 1);
}

} // namespace

int
cmdServe(const std::vector<std::string> &args)
{
    ServeOptions opts;
    std::string cacheDir;
    bool traceEnabled = true;
    std::size_t traceRing = 2048;
    unsigned long slowRequestMs = 0;
    std::string traceDumpPrefix = "mfusim-trace";
    const auto numeric = [](const std::string &flag,
                            const std::string &value) -> unsigned long {
        try {
            std::size_t used = 0;
            const unsigned long n = std::stoul(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
            return n;
        } catch (const std::exception &) {
            std::fprintf(stderr, "%s expects a number, got '%s'\n",
                         flag.c_str(), value.c_str());
            std::exit(2);
        }
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const auto value = [&]() -> std::string {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };
        if (args[i] == "--port")
            opts.port = std::uint16_t(numeric("--port", value()));
        else if (args[i] == "--workers")
            opts.workers = unsigned(numeric("--workers", value()));
        else if (args[i] == "--queue-depth")
            opts.queueDepth =
                unsigned(numeric("--queue-depth", value()));
        else if (args[i] == "--deadline-ms")
            opts.deadlineMs =
                unsigned(numeric("--deadline-ms", value()));
        else if (args[i] == "--max-body")
            opts.maxBodyBytes = numeric("--max-body", value());
        else if (args[i] == "--header-timeout-ms")
            opts.headerTimeoutMs =
                unsigned(numeric("--header-timeout-ms", value()));
        else if (args[i] == "--write-timeout-ms")
            opts.writeTimeoutMs =
                unsigned(numeric("--write-timeout-ms", value()));
        else if (args[i] == "--idle-timeout-ms")
            opts.idleTimeoutMs =
                unsigned(numeric("--idle-timeout-ms", value()));
        else if (args[i] == "--max-pipeline")
            opts.maxPipeline =
                unsigned(numeric("--max-pipeline", value()));
        else if (args[i] == "--cache-dir")
            cacheDir = value();
        else if (args[i] == "--slow-request-ms")
            slowRequestMs = numeric("--slow-request-ms", value());
        else if (args[i] == "--trace-ring")
            traceRing = numeric("--trace-ring", value());
        else if (args[i] == "--trace-dump")
            traceDumpPrefix = value();
        else if (args[i] == "--no-request-trace")
            traceEnabled = false;
        else
            usage();
    }
    if (traceRing == 0)
        traceRing = 1;

    // Arm fault injection from MFUSIM_FAULTS before any guarded code
    // runs; a typo in the spec must abort startup, not be silently
    // inert during a chaos run.
    try {
        FaultRegistry::instance().configureFromEnv();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "mfusim serve: MFUSIM_FAULTS: %s\n",
                     e.what());
        return 3;
    }
    if (FaultRegistry::instance().armed())
        std::printf("mfusim serve: fault injection armed: %s\n",
                    FaultRegistry::instance().spec().c_str());

    // Install the drain handler BEFORE the server threads start so
    // every thread inherits the disposition.
    installShutdownHandler();
    ResultCache::instance().setVersion(MFUSIM_GIT_SHA);

    // Warm-load the persistent result cache before serving starts:
    // a restarted daemon answers its first request from disk state.
    if (!cacheDir.empty()) {
        try {
            const PersistLoadStats load =
                ResultCache::instance().attachPersist(
                    std::make_unique<PersistentCache>(cacheDir));
            std::printf(
                "mfusim serve: cache journal %s: recovered %llu "
                "entr%s (%llu discarded, %llu bytes truncated%s)\n",
                ResultCache::instance().persist()->path().c_str(),
                (unsigned long long)load.recovered,
                load.recovered == 1 ? "y" : "ies",
                (unsigned long long)(load.discardedCorrupt +
                                     load.discardedVersion),
                (unsigned long long)load.truncatedBytes,
                load.loadFailed ? "; warm-load failed, starting cold"
                                : "");
        } catch (const Error &e) {
            std::fprintf(stderr,
                         "mfusim serve: --cache-dir %s unusable: %s; "
                         "continuing without persistence\n",
                         cacheDir.c_str(), e.what());
        }
    }

    // An event-driven server's connection capacity IS its fd budget:
    // raise the soft RLIMIT_NOFILE to the hard cap so thousands of
    // parked keep-alive connections do not hit a 1024-fd default.
    struct rlimit nofile;
    if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
        nofile.rlim_cur < nofile.rlim_max) {
        nofile.rlim_cur = nofile.rlim_max;
        setrlimit(RLIMIT_NOFILE, &nofile);
    }

    // The flight recorder: one ring per worker track plus the
    // reactor's, alive for the whole serve run.  Declared before the
    // server so it strictly outlives it (the server publishes into
    // it until stop() returns).
    std::unique_ptr<RequestTracer> tracer;
    if (traceEnabled) {
        ReqTraceOptions traceOpts;
        traceOpts.ringCapacity = traceRing;
        traceOpts.workers = opts.workers == 0 ? 1 : opts.workers;
        traceOpts.slowRequestNs =
            std::uint64_t(slowRequestMs) * 1000000u;
        tracer = std::make_unique<RequestTracer>(traceOpts);
        // Fault fires become instant events on the trace timeline.
        RequestTracer *raw = tracer.get();
        FaultRegistry::instance().setFireListener(
            [raw](const std::string &point) {
                raw->recordFault(point);
            });
    }

    SimServiceOptions serviceOpts;
    serviceOpts.version = MFUSIM_GIT_SHA;
    serviceOpts.gitSha = MFUSIM_GIT_SHA;
    serviceOpts.buildType = MFUSIM_BUILD_TYPE;
    serviceOpts.tracer = tracer.get();
    SimService service(serviceOpts);
    HttpServer server(opts,
                      [&service](const HttpRequest &request,
                                 unsigned budgetMs) {
                          return service.handle(request, budgetMs);
                      });
    service.setServer(&server);
    server.setFastHandler([&service](const HttpRequest &request,
                                     HttpResponse *response) {
        return service.tryFastAnswer(request, response);
    });
    server.setTracer(tracer.get());

    // SIGUSR2 dumps the flight recorder to a file without disturbing
    // the daemon — installed before the server threads spawn so every
    // thread inherits the disposition (the self-pipe makes it safe
    // from any of them).
    if (tracer != nullptr && g_usr2Pipe[0] < 0 &&
        pipe(g_usr2Pipe) == 0) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = handleUsr2;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;
        sigaction(SIGUSR2, &sa, nullptr);
    }

    server.start();
    std::printf("mfusim serve %s listening on port %u "
                "(%u workers, queue depth %u, deadline %u ms)\n",
                MFUSIM_GIT_SHA, server.port(), opts.workers,
                opts.queueDepth, opts.deadlineMs);
    std::fflush(stdout);

    // Park until SIGINT/SIGTERM: the self-pipe becomes readable the
    // instant the signal lands.  SIGUSR2 (second slot) dumps the
    // flight recorder and keeps serving.
    struct pollfd pfds[2] = { { shutdownFd(), POLLIN, 0 },
                              { g_usr2Pipe[0], POLLIN, 0 } };
    const nfds_t npfds = g_usr2Pipe[0] >= 0 ? 2 : 1;
    unsigned dumpCount = 0;
    while (!shutdownRequested()) {
        pfds[0].revents = pfds[1].revents = 0;
        if (poll(pfds, npfds, 1000) < 0 && errno != EINTR)
            break;
        if (npfds > 1 && (pfds[1].revents & POLLIN) != 0) {
            // One read drains all coalesced signal bytes; a burst
            // beyond the buffer just means one extra (harmless) dump
            // on the next loop.
            char drain[256];
            [[maybe_unused]] ssize_t got =
                read(g_usr2Pipe[0], drain, sizeof(drain));
            const std::string path = traceDumpPrefix + "-" +
                std::to_string(dumpCount++) + ".json";
            std::ofstream out(path);
            if (out) {
                tracer->writeServeTrace(out, 0);
                std::printf(
                    "mfusim serve: SIGUSR2, dumped flight "
                    "recorder to %s\n",
                    path.c_str());
            } else {
                std::fprintf(stderr,
                             "mfusim serve: SIGUSR2 dump to %s "
                             "failed\n",
                             path.c_str());
            }
            std::fflush(stdout);
        }
    }
    std::printf("mfusim serve: signal %d, draining...\n",
                shutdownSignal());
    std::fflush(stdout);
    server.stop();
    // The server is drained and its threads joined: no publisher can
    // touch the tracer past here, so the fault listener can go.
    FaultRegistry::instance().setFireListener(nullptr);
    // Make sure every journaled result survives the exit: appends
    // are fsync'd only periodically while serving.
    ResultCache::instance().flushPersist();
    ResultCache::instance().detachPersist();
    std::printf("mfusim serve: drained, bye\n");
    return 0;
}

int
cmdRate(const std::string &loop, const std::string &machine,
        const MachineConfig &cfg)
{
    if (loop == "all")
        return cmdRateAll(machine, cfg);
    const DynTrace trace = traceFor(loop);
    auto sim = parseMachine(machine, cfg);
    const SimResult result = runObserved(*sim, trace, cfg);
    // The simulator's own config may carry a ",pred=" predictor the
    // outer cfg does not; print the name the run actually used.
    std::printf("%s on %s, %s: %.4f instr/cycle "
                "(%llu instructions, %llu cycles)%s\n",
                trace.name().c_str(), sim->name().c_str(),
                sim->config().name().c_str(), result.issueRate(),
                (unsigned long long)result.instructions,
                (unsigned long long)result.cycles,
                auditRequested() ? " [audited]" : "");
    return 0;
}

int
cmdSave(const std::string &loop, const std::string &path)
{
    const DynTrace trace = traceFor(loop);
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    saveTrace(out, trace);
    std::printf("wrote %zu ops to %s\n", trace.size(), path.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, const std::string &machine,
          const MachineConfig &cfg)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    const DynTrace trace = loadTrace(in);
    auto sim = parseMachine(machine, cfg);
    const SimResult result = runObserved(*sim, trace, cfg);
    std::printf("%s on %s, %s: %.4f instr/cycle%s\n",
                trace.name().c_str(), sim->name().c_str(),
                sim->config().name().c_str(), result.issueRate(),
                auditRequested() ? " [audited]" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the global --jobs option before command dispatch.
    const auto parse_jobs = [](const std::string &value) {
        try {
            std::size_t used = 0;
            const unsigned long jobs = std::stoul(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
            setDefaultSweepJobs(unsigned(jobs));
        } catch (const std::exception &) {
            std::fprintf(stderr, "--jobs expects a number, got '%s'\n",
                         value.c_str());
            std::exit(2);
        }
    };
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            if (i + 1 >= argc)
                usage();
            parse_jobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            parse_jobs(arg.substr(7));
        } else if (arg == "--audit") {
            setAuditRequested(true);
        } else if (arg == "--no-steady-state") {
            setSteadyStateEnabled(false);
        } else if (arg == "--predictor") {
            if (i + 1 >= argc)
                usage();
            g_predictor = argv[++i];
        } else if (arg.rfind("--predictor=", 0) == 0) {
            g_predictor = arg.substr(12);
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                usage();
            g_obs.traceOut = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            g_obs.traceOut = arg.substr(12);
        } else if (arg == "--metrics-out") {
            if (i + 1 >= argc)
                usage();
            g_obs.metricsOut = argv[++i];
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            g_obs.metricsOut = arg.substr(14);
        } else if (arg == "--pipeview") {
            g_obs.pipeview = true;
        } else if (arg == "--version") {
            std::printf("mfusim %s\n", MFUSIM_GIT_SHA);
            return 0;
        } else {
            args.push_back(arg);
        }
    }
    argc = int(args.size()) + 1;
    std::vector<char *> argv_vec{ argv[0] };
    for (std::string &arg : args)
        argv_vec.push_back(arg.data());
    argv = argv_vec.data();

    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const auto cfg_arg = [&](int index) {
        MachineConfig cfg = index < argc ? parseConfig(argv[index])
                                         : configM11BR5();
        if (!g_predictor.empty()) {
            try {
                cfg.predictor = PredictorSpec::parse(g_predictor);
                cfg.predictor.validate();
            } catch (const ConfigError &e) {
                std::fprintf(stderr, "--predictor: %s\n", e.what());
                std::exit(2);
            }
        }
        return cfg;
    };

    // Typed mfusim errors map to distinct exit codes (see the file
    // comment); anything else is a generic failure (1).
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "disasm" && argc >= 3)
            return cmdDisasm(argv[2]);
        if (cmd == "analyze" && argc >= 3)
            return cmdAnalyze(argv[2], cfg_arg(3));
        if (cmd == "limits" && argc >= 3)
            return cmdLimits(argv[2], cfg_arg(3));
        if (cmd == "rate" && argc >= 4)
            return cmdRate(argv[2], argv[3], cfg_arg(4));
        if (cmd == "save" && argc >= 4)
            return cmdSave(argv[2], argv[3]);
        if (cmd == "replay" && argc >= 4)
            return cmdReplay(argv[2], argv[3], cfg_arg(4));
        if (cmd == "serve")
            return cmdServe(
                std::vector<std::string>(args.begin() + 1,
                                         args.end()));
    } catch (const Error &e) {
        std::fprintf(stderr, "mfusim: %s\n", e.what());
        return e.exitCode();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mfusim: %s\n", e.what());
        return 1;
    }
    usage();
}
