#!/usr/bin/env python3
"""Validate mfusim observability output files.

Usage: check_obs_json.py FILE [FILE...]

Each FILE is sniffed by its top-level keys:

  - a serve-tier flight-recorder dump ({"schema":
    "mfusim-serve-trace-v1"}, produced by `GET /v1/trace` or a
    SIGUSR2 dump) is checked for async b/e pairing, phase-sum
    identity on every request (sum(phase_ns.*) == total_ns), compute
    slices on named worker tracks, and well-formed fault instants;
  - a Chrome trace-event file ({"traceEvents": [...]}) is checked for
    structural validity: every event has the required keys for its
    phase, durations are non-negative, and "X" slices never end before
    they start;
  - an mfusim metrics file ({"schema": "mfusim-metrics-v1"}) is
    checked against the schema AND re-verifies the cycle accounting
    identity

        cycles.total = cycles.front_active
                     + sum(cycles.stall.*) + cycles.drain

    plus basic histogram consistency (bucket sums match counts,
    min <= mean <= max).

Exit code 0 if every file passes, 1 otherwise.  Used by the CI
observability smoke job; no third-party dependencies.
"""

import json
import math
import sys

KNOWN_STALL_CAUSES = {
    "raw",
    "waw",
    "fu_busy",
    "bus_busy",
    "branch",
    "buffer_drain",
    "serial",
    "mispredict",
    "squash_drain",
    "other",
}


def fail(path, message):
    print(f"{path}: FAIL: {message}")
    return False


def check_chrome_trace(path, data):
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    if not events:
        return fail(path, "traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(path, f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "C"):
            return fail(path, f"event {i}: unexpected phase {ph!r}")
        if "name" not in ev or "pid" not in ev:
            return fail(path, f"event {i}: missing name/pid")
        if ph in ("X", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                return fail(path, f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(path, f"event {i}: bad dur {dur!r}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(path, f"event {i}: counter without args")
    slices = sum(1 for ev in events if ev.get("ph") == "X")
    print(f"{path}: OK chrome-trace ({len(events)} events, "
          f"{slices} slices)")
    return True


REQ_PHASES = ("parse", "dispatch", "queue", "compute", "serialize",
              "write_first", "write_drain")


def check_serve_trace(path, data):
    """Validate a serve-tier flight-recorder dump
    (mfusim-serve-trace-v1): the Perfetto structure AND the tracing
    invariants the server promises."""
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "traceEvents missing or empty")
    if data.get("displayTimeUnit") != "ms":
        return fail(path, "displayTimeUnit is not 'ms'")

    thread_names = {}           # tid -> track name
    begin_ids = {}              # async id -> count of "b" events
    end_ids = {}                # async id -> count of "e" events
    slice_tids = set()          # tids carrying compute "X" slices
    counts = {"b": 0, "e": 0, "X": 0, "i": 0, "M": 0}
    spans = faults = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(path, f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in counts:
            return fail(path, f"event {i}: unexpected phase {ph!r}")
        counts[ph] += 1
        if "name" not in ev or "pid" not in ev:
            return fail(path, f"event {i}: missing name/pid")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict):
                return fail(path, f"event {i}: metadata without args")
            if ev["name"] in ("process_name", "thread_name") and \
                    "name" not in args:
                return fail(path, f"event {i}: {ev['name']} without "
                                  "args.name")
            if ev["name"] == "thread_name":
                thread_names[ev.get("tid")] = args["name"]
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(path, f"event {i}: bad ts {ts!r}")
        if ph in ("b", "e"):
            if ev.get("cat") != "request":
                return fail(path, f"event {i}: async event without "
                                  "cat 'request'")
            if "id" not in ev:
                return fail(path, f"event {i}: async event without id")
            side = begin_ids if ph == "b" else end_ids
            side[ev["id"]] = side.get(ev["id"], 0) + 1
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(path, f"event {i}: bad dur {dur!r}")
            slice_tids.add(ev.get("tid"))
        if ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                return fail(path, f"event {i}: instant without scope")
            faults += 1
        if ph == "e":
            spans += 1
            args = ev.get("args")
            if not isinstance(args, dict):
                return fail(path, f"event {i}: span end without args")
            for key in ("seq", "status", "fd", "gen", "worker",
                        "total_ns", "phase_ns"):
                if key not in args:
                    return fail(path, f"event {i}: span end missing "
                                      f"args.{key}")
            phase_ns = args["phase_ns"]
            if not isinstance(phase_ns, dict) or \
                    set(phase_ns) != set(REQ_PHASES):
                return fail(path, f"event {i}: phase_ns keys "
                                  f"{sorted(phase_ns)} != "
                                  f"{sorted(REQ_PHASES)}")
            for phase, ns in phase_ns.items():
                if not isinstance(ns, int) or ns < 0:
                    return fail(path, f"event {i}: phase {phase} "
                                      f"bad value {ns!r}")
            total = args["total_ns"]
            if sum(phase_ns.values()) != total:
                return fail(
                    path,
                    f"event {i} (seq {args['seq']}): phase-sum "
                    f"identity violated: {sum(phase_ns.values())} "
                    f"!= total_ns {total}")

    for async_id, n in end_ids.items():
        if begin_ids.get(async_id, 0) != n:
            return fail(path, f"async id {async_id}: {n} end(s) vs "
                              f"{begin_ids.get(async_id, 0)} begin(s)")
    if counts["b"] != counts["e"]:
        return fail(path, f"{counts['b']} begins vs {counts['e']} "
                          "ends")
    for tid in slice_tids:
        if tid not in thread_names:
            return fail(path, f"compute slice on unnamed track "
                              f"tid {tid}")
    print(f"{path}: OK serve-trace ({spans} spans, {counts['X']} "
          f"slices, {faults} fault instants, "
          f"{len(thread_names)} named tracks)")
    return True


def check_histogram(path, name, hist):
    for key in ("bucket_width", "count", "sum", "buckets", "overflow"):
        if key not in hist:
            return fail(path, f"histogram {name}: missing {key}")
    total = sum(hist["buckets"]) + hist["overflow"]
    if total != hist["count"]:
        return fail(
            path,
            f"histogram {name}: buckets+overflow {total} != "
            f"count {hist['count']}")
    if hist["count"] > 0:
        lo, hi, mean = hist["min"], hist["max"], hist["mean"]
        if not (lo <= mean <= hi) and not math.isclose(lo, hi):
            return fail(
                path,
                f"histogram {name}: mean {mean} outside "
                f"[{lo}, {hi}]")
    return True


def check_metrics(path, data):
    for section in ("labels", "counters", "gauges", "histograms",
                    "series"):
        if not isinstance(data.get(section), dict):
            return fail(path, f"missing section {section!r}")
    counters = data["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            return fail(path, f"counter {name}: bad value {value!r}")

    total = counters.get("cycles.total")
    if total is None:
        return fail(path, "no cycles.total counter")
    stall = 0
    for name, value in counters.items():
        if name.startswith("cycles.stall."):
            cause = name[len("cycles.stall."):]
            if cause not in KNOWN_STALL_CAUSES:
                return fail(path, f"unknown stall cause {cause!r}")
            stall += value
    active = counters.get("cycles.front_active", 0)
    drain = counters.get("cycles.drain", 0)
    if total != active + stall + drain:
        return fail(
            path,
            f"identity violated: total {total} != front_active "
            f"{active} + stalls {stall} + drain {drain}")

    for name, hist in data["histograms"].items():
        if not check_histogram(path, name, hist):
            return False
    for name, series in data["series"].items():
        points = series.get("points")
        if not isinstance(points, list):
            return fail(path, f"series {name}: missing points")
        cycles = [p[0] for p in points]
        if cycles != sorted(cycles):
            return fail(path, f"series {name}: cycles not sorted")

    print(f"{path}: OK metrics (total {total} = active {active} + "
          f"stalls {stall} + drain {drain})")
    return True


def check_file(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    if not isinstance(data, dict):
        return fail(path, "top level is not an object")
    if data.get("schema") == "mfusim-serve-trace-v1":
        return check_serve_trace(path, data)
    if "traceEvents" in data:
        return check_chrome_trace(path, data)
    if data.get("schema") == "mfusim-metrics-v1":
        return check_metrics(path, data)
    return fail(path, "neither a chrome trace nor mfusim metrics")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 1
    ok = all([check_file(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
