#!/usr/bin/env python3
"""Validate mfusim observability output files.

Usage: check_obs_json.py FILE [FILE...]

Each FILE is sniffed by its top-level keys:

  - a Chrome trace-event file ({"traceEvents": [...]}) is checked for
    structural validity: every event has the required keys for its
    phase, durations are non-negative, and "X" slices never end before
    they start;
  - an mfusim metrics file ({"schema": "mfusim-metrics-v1"}) is
    checked against the schema AND re-verifies the cycle accounting
    identity

        cycles.total = cycles.front_active
                     + sum(cycles.stall.*) + cycles.drain

    plus basic histogram consistency (bucket sums match counts,
    min <= mean <= max).

Exit code 0 if every file passes, 1 otherwise.  Used by the CI
observability smoke job; no third-party dependencies.
"""

import json
import math
import sys

KNOWN_STALL_CAUSES = {
    "raw",
    "waw",
    "fu_busy",
    "bus_busy",
    "branch",
    "buffer_drain",
    "serial",
    "other",
}


def fail(path, message):
    print(f"{path}: FAIL: {message}")
    return False


def check_chrome_trace(path, data):
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    if not events:
        return fail(path, "traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(path, f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "C"):
            return fail(path, f"event {i}: unexpected phase {ph!r}")
        if "name" not in ev or "pid" not in ev:
            return fail(path, f"event {i}: missing name/pid")
        if ph in ("X", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                return fail(path, f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(path, f"event {i}: bad dur {dur!r}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(path, f"event {i}: counter without args")
    slices = sum(1 for ev in events if ev.get("ph") == "X")
    print(f"{path}: OK chrome-trace ({len(events)} events, "
          f"{slices} slices)")
    return True


def check_histogram(path, name, hist):
    for key in ("bucket_width", "count", "sum", "buckets", "overflow"):
        if key not in hist:
            return fail(path, f"histogram {name}: missing {key}")
    total = sum(hist["buckets"]) + hist["overflow"]
    if total != hist["count"]:
        return fail(
            path,
            f"histogram {name}: buckets+overflow {total} != "
            f"count {hist['count']}")
    if hist["count"] > 0:
        lo, hi, mean = hist["min"], hist["max"], hist["mean"]
        if not (lo <= mean <= hi) and not math.isclose(lo, hi):
            return fail(
                path,
                f"histogram {name}: mean {mean} outside "
                f"[{lo}, {hi}]")
    return True


def check_metrics(path, data):
    for section in ("labels", "counters", "gauges", "histograms",
                    "series"):
        if not isinstance(data.get(section), dict):
            return fail(path, f"missing section {section!r}")
    counters = data["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            return fail(path, f"counter {name}: bad value {value!r}")

    total = counters.get("cycles.total")
    if total is None:
        return fail(path, "no cycles.total counter")
    stall = 0
    for name, value in counters.items():
        if name.startswith("cycles.stall."):
            cause = name[len("cycles.stall."):]
            if cause not in KNOWN_STALL_CAUSES:
                return fail(path, f"unknown stall cause {cause!r}")
            stall += value
    active = counters.get("cycles.front_active", 0)
    drain = counters.get("cycles.drain", 0)
    if total != active + stall + drain:
        return fail(
            path,
            f"identity violated: total {total} != front_active "
            f"{active} + stalls {stall} + drain {drain}")

    for name, hist in data["histograms"].items():
        if not check_histogram(path, name, hist):
            return False
    for name, series in data["series"].items():
        points = series.get("points")
        if not isinstance(points, list):
            return fail(path, f"series {name}: missing points")
        cycles = [p[0] for p in points]
        if cycles != sorted(cycles):
            return fail(path, f"series {name}: cycles not sorted")

    print(f"{path}: OK metrics (total {total} = active {active} + "
          f"stalls {stall} + drain {drain})")
    return True


def check_file(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    if not isinstance(data, dict):
        return fail(path, "top level is not an object")
    if "traceEvents" in data:
        return check_chrome_trace(path, data)
    if data.get("schema") == "mfusim-metrics-v1":
        return check_metrics(path, data)
    return fail(path, "neither a chrome trace nor mfusim metrics")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 1
    ok = all([check_file(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
