#!/usr/bin/env python3
"""Concurrent load generator for `mfusim serve`.

Standard library only (urllib + threads): usable from CI without
installing anything.  Fires a mixed burst of /v1/simulate requests —
optionally across several machine specs and loops — plus periodic
/healthz probes, then reports status-code counts and latency
percentiles and writes a machine-readable JSON report.  Overload
(429), 5xx, timeouts and connection failures are retried with
exponential backoff and full jitter, honoring the server's
load-aware Retry-After header; retry and timeout totals land in the
report.

Exit status: 0 when every gate passes; 1 when --fail-on-5xx saw a
5xx, the p99 exceeded --max-p99-ms, or nothing succeeded at all.

Example (the CI server-smoke job):

    python3 tools/loadgen.py --base-url http://127.0.0.1:8100 \
        --requests 200 --concurrency 8 \
        --machine simple --machine cray --machine cdc \
        --machine tomasulo:3:1 --machine ooo:4 --machine ruu:4:50 \
        --fail-on-5xx --max-p99-ms 2000 --report loadgen.json
"""

import argparse
import json
import random
import socket
import sys
import threading
import time
import urllib.error
import urllib.request


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (0.0 on empty)."""
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


class Worker(threading.Thread):
    """Pulls request indices off a shared counter until exhausted."""

    def __init__(self, args, counter, lock, results):
        super().__init__(daemon=True)
        self.args = args
        self.counter = counter
        self.lock = lock
        self.results = results

    def run(self):
        while True:
            with self.lock:
                index = self.counter[0]
                if index >= self.args.requests:
                    return
                self.counter[0] += 1
            self.one_request(index)

    def one_request(self, index):
        machine = self.args.machine[index % len(self.args.machine)]
        loop = self.args.loops[index % len(self.args.loops)]
        config = self.args.config[index % len(self.args.config)]
        body = json.dumps({
            "loop": loop,
            "machine": machine,
            "config": config,
        }).encode()
        start = time.monotonic()
        status, cached, retries, timeouts = 0, False, 0, 0
        for attempt in range(self.args.retries + 1):
            request = urllib.request.Request(
                self.args.base_url + "/v1/simulate",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST")
            retry_after = None
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=self.args.timeout) as response:
                    status = response.status
                    payload = json.loads(response.read())
                    cached = bool(payload.get("cached"))
            except urllib.error.HTTPError as error:
                status = error.code
                retry_after = error.headers.get("Retry-After")
            except (socket.timeout, TimeoutError):
                status = 0
                timeouts += 1
            except Exception:
                status = 0      # connection-level failure
            # Success and client errors are final; overload (429),
            # 5xx and connection failures are worth retrying.
            if 200 <= status < 300 or 400 <= status < 500 and \
                    status != 429:
                break
            if attempt == self.args.retries:
                break
            retries += 1
            # Exponential backoff with full jitter; a 429's
            # Retry-After (load-aware on the server side) takes
            # precedence, capped so a test run cannot stall.
            delay = (self.args.backoff_ms / 1000.0) * (2 ** attempt)
            if status == 429 and retry_after:
                try:
                    delay = min(float(retry_after),
                                self.args.max_backoff_ms / 1000.0)
                except ValueError:
                    pass
            delay = min(delay, self.args.max_backoff_ms / 1000.0)
            time.sleep(random.uniform(0, delay))
        elapsed_ms = (time.monotonic() - start) * 1000.0
        with self.lock:
            self.results.append(
                (status, elapsed_ms, cached, retries, timeouts))


def main():
    parser = argparse.ArgumentParser(
        description="mfusim serve load generator")
    parser.add_argument("--base-url", default="http://127.0.0.1:8100")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request timeout in seconds")
    parser.add_argument("--retries", type=int, default=3,
                        help="retry budget per request (429/5xx/"
                             "connection failures; 0 disables)")
    parser.add_argument("--backoff-ms", type=float, default=50.0,
                        help="base backoff, doubled per attempt with "
                             "full jitter")
    parser.add_argument("--max-backoff-ms", type=float,
                        default=2000.0,
                        help="cap on any single backoff sleep")
    parser.add_argument("--machine", action="append", default=None,
                        help="machine spec; repeatable, round-robined")
    parser.add_argument("--loop", dest="loops", action="append",
                        type=int, default=None,
                        help="loop id; repeatable, round-robined")
    parser.add_argument("--config", action="append", default=None)
    parser.add_argument("--fail-on-5xx", action="store_true")
    parser.add_argument("--max-p99-ms", type=float, default=None)
    parser.add_argument("--report", default=None,
                        help="write a JSON report here")
    args = parser.parse_args()
    if not args.machine:
        args.machine = ["cray"]
    if not args.loops:
        args.loops = [1, 3, 5, 7, 9, 12, 14]
    if not args.config:
        args.config = ["M11BR5", "M5BR2"]

    # One healthz probe up front: fail fast when the daemon is absent
    # rather than timing out N requests.
    try:
        with urllib.request.urlopen(args.base_url + "/healthz",
                                    timeout=args.timeout) as response:
            health = json.loads(response.read())
    except Exception as error:
        print(f"loadgen: /healthz unreachable: {error}",
              file=sys.stderr)
        return 1

    results = []
    counter = [0]
    lock = threading.Lock()
    started = time.monotonic()
    workers = [Worker(args, counter, lock, results)
               for _ in range(args.concurrency)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_seconds = time.monotonic() - started

    status_counts = {}
    for status, _, _, _, _ in results:
        key = str(status) if status else "connection_error"
        status_counts[key] = status_counts.get(key, 0) + 1
    latencies = sorted(ms for status, ms, _, _, _ in results
                       if 200 <= status < 300)
    cache_hits = sum(1 for status, _, cached, _, _ in results
                     if cached and 200 <= status < 300)
    count_5xx = sum(n for code, n in status_counts.items()
                    if code.isdigit() and code.startswith("5"))
    total_retries = sum(r for _, _, _, r, _ in results)
    total_timeouts = sum(t for _, _, _, _, t in results)
    retried_requests = sum(1 for _, _, _, r, _ in results if r)

    report = {
        "schema": "mfusim-loadgen-v1",
        "base_url": args.base_url,
        "server_version": health.get("version"),
        "requests": args.requests,
        "concurrency": args.concurrency,
        "machines": args.machine,
        "wall_seconds": round(wall_seconds, 3),
        "throughput_rps": round(len(results) / wall_seconds, 2)
            if wall_seconds > 0 else 0.0,
        "status_counts": status_counts,
        "count_5xx": count_5xx,
        "cache_hits": cache_hits,
        "retries": total_retries,
        "retried_requests": retried_requests,
        "timeouts": total_timeouts,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 2),
            "p90": round(percentile(latencies, 0.90), 2),
            "p99": round(percentile(latencies, 0.99), 2),
            "max": round(latencies[-1], 2) if latencies else 0.0,
        },
    }
    print(json.dumps(report, indent=2))
    if args.report:
        with open(args.report, "w") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    failures = []
    if not latencies:
        failures.append("no request succeeded")
    if args.fail_on_5xx and count_5xx:
        failures.append(f"{count_5xx} 5xx responses")
    if args.max_p99_ms is not None and latencies and \
            report["latency_ms"]["p99"] > args.max_p99_ms:
        failures.append(
            f"p99 {report['latency_ms']['p99']}ms exceeds "
            f"{args.max_p99_ms}ms")
    for failure in failures:
        print(f"loadgen: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
