#!/usr/bin/env python3
"""Concurrent load generator for `mfusim serve`.

Standard library only (urllib + threads): usable from CI without
installing anything.  Two modes:

**Burst mode** (default): fires a mixed burst of /v1/simulate
requests — optionally across several machine specs and loops — plus
periodic /healthz probes, then reports status-code counts and latency
percentiles and writes a machine-readable JSON report.  Overload
(429), 5xx, timeouts and connection failures are retried with
exponential backoff and full jitter, honoring the server's
load-aware Retry-After header; retry and timeout totals land in the
report.

**Saturation mode** (`--duration SECS`): measures *sustained*
throughput instead of burst completion.  A fixed fleet of
keep-alive connections (`--connections`, raw sockets so the Python
client costs as little as possible) each sends the same cache-hit
/v1/simulate request back to back for the whole duration; the report
carries sustained RPS, p50..p99.9 latency over the post-warmup
window, and the full latency distribution as log2 buckets in the
server's own histogram geometry (so
tools/check_latency_xcheck.py can cross-check the client view
against the mfusim_http_*_seconds histograms in /metrics).  `--idle-connections M` additionally parks M
keep-alive connections that never send another byte, and a
background /healthz probe records whether the parked fleet degrades
live-request latency — the "idle clients must not deny service"
acceptance check.  Gates: `--min-rps` (floor on sustained RPS) and
`--max-p99-ms` both apply.

Exit status: 0 when every gate passes; 1 when --fail-on-5xx saw a
5xx, the p99 exceeded --max-p99-ms, sustained RPS fell below
--min-rps, or nothing succeeded at all.

Examples (the CI server-smoke / serve-throughput jobs):

    python3 tools/loadgen.py --base-url http://127.0.0.1:8100 \
        --requests 200 --concurrency 8 \
        --machine simple --machine cray --machine cdc \
        --machine tomasulo:3:1 --machine ooo:4 --machine ruu:4:50 \
        --fail-on-5xx --max-p99-ms 2000 --report loadgen.json

    python3 tools/loadgen.py --base-url http://127.0.0.1:8100 \
        --duration 10 --connections 64 --idle-connections 200 \
        --machine cray --loop 5 --report SERVE_BENCH.json
"""

import argparse
import json
import random
import socket
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (0.0 on empty)."""
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


def log2_latency_histogram(latencies_ms):
    """Full client-side latency distribution in the server's own
    histogram geometry: log2 buckets over nanoseconds, bucket i
    holding values of bit width i with upper edge (2^i - 1) ns.
    Emitted as cumulative [le_seconds, count] pairs so
    tools/check_latency_xcheck.py can line the report up against the
    mfusim_http_*_seconds buckets scraped from /metrics."""
    per_bucket = {}
    for ms in latencies_ms:
        ns = max(0, int(ms * 1e6))
        index = ns.bit_length()
        per_bucket[index] = per_bucket.get(index, 0) + 1
    buckets, running = [], 0
    for i in range(0, max(per_bucket, default=0) + 1):
        running += per_bucket.get(i, 0)
        buckets.append([(2 ** i - 1) * 1e-9, running])
    return {
        "scheme": "log2-ns",
        "unit": "seconds",
        "count": len(latencies_ms),
        "buckets": buckets,
    }


class Worker(threading.Thread):
    """Pulls request indices off a shared counter until exhausted."""

    def __init__(self, args, counter, lock, results):
        super().__init__(daemon=True)
        self.args = args
        self.counter = counter
        self.lock = lock
        self.results = results

    def run(self):
        while True:
            with self.lock:
                index = self.counter[0]
                if index >= self.args.requests:
                    return
                self.counter[0] += 1
            self.one_request(index)

    def one_request(self, index):
        machine = self.args.machine[index % len(self.args.machine)]
        loop = self.args.loops[index % len(self.args.loops)]
        config = self.args.config[index % len(self.args.config)]
        body = json.dumps({
            "loop": loop,
            "machine": machine,
            "config": config,
        }).encode()
        start = time.monotonic()
        status, cached, retries, timeouts = 0, False, 0, 0
        for attempt in range(self.args.retries + 1):
            request = urllib.request.Request(
                self.args.base_url + "/v1/simulate",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST")
            retry_after = None
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=self.args.timeout) as response:
                    status = response.status
                    payload = json.loads(response.read())
                    cached = bool(payload.get("cached"))
            except urllib.error.HTTPError as error:
                status = error.code
                retry_after = error.headers.get("Retry-After")
            except (socket.timeout, TimeoutError):
                status = 0
                timeouts += 1
            except Exception:
                status = 0      # connection-level failure
            # Success and client errors are final; overload (429),
            # 5xx and connection failures are worth retrying.
            if 200 <= status < 300 or 400 <= status < 500 and \
                    status != 429:
                break
            if attempt == self.args.retries:
                break
            retries += 1
            # Exponential backoff with full jitter; a 429's
            # Retry-After (load-aware on the server side) takes
            # precedence, capped so a test run cannot stall.
            delay = (self.args.backoff_ms / 1000.0) * (2 ** attempt)
            if status == 429 and retry_after:
                try:
                    delay = min(float(retry_after),
                                self.args.max_backoff_ms / 1000.0)
                except ValueError:
                    pass
            delay = min(delay, self.args.max_backoff_ms / 1000.0)
            time.sleep(random.uniform(0, delay))
        elapsed_ms = (time.monotonic() - start) * 1000.0
        with self.lock:
            self.results.append(
                (status, elapsed_ms, cached, retries, timeouts))


# ------------------------------------------------------ saturation mode

def parse_host_port(base_url):
    parsed = urllib.parse.urlparse(base_url)
    return parsed.hostname or "127.0.0.1", parsed.port or 80


def read_http_response(sock, buffer):
    """Read one HTTP/1.1 response from a keep-alive socket.

    Returns (status, leftover_buffer) or (None, buffer) on EOF.
    Minimal on purpose: the daemon always answers with
    Content-Length, never chunked.
    """
    while True:
        head_end = buffer.find(b"\r\n\r\n")
        if head_end >= 0:
            break
        chunk = sock.recv(65536)
        if not chunk:
            return None, buffer
        buffer += chunk
    head = buffer[:head_end].decode(errors="replace")
    status = int(head.split(" ", 2)[1])
    content_length = 0
    for line in head.split("\r\n")[1:]:
        if line.lower().startswith("content-length:"):
            content_length = int(line.split(":", 1)[1].strip())
            break
    total = head_end + 4 + content_length
    while len(buffer) < total:
        chunk = sock.recv(65536)
        if not chunk:
            return None, buffer
        buffer += chunk
    return status, buffer[total:]


def read_sized_response(sock, buffer):
    """Like read_http_response, but also reports the full byte size
    of the response so the saturation fast path can learn the fixed
    length of a repeated cache-hit answer.

    Returns (status, size, leftover_buffer), with status None on EOF.
    """
    while True:
        head_end = buffer.find(b"\r\n\r\n")
        if head_end >= 0:
            break
        chunk = sock.recv(65536)
        if not chunk:
            return None, 0, buffer
        buffer += chunk
    head = buffer[:head_end].decode(errors="replace")
    status = int(head.split(" ", 2)[1])
    content_length = 0
    for line in head.split("\r\n")[1:]:
        if line.lower().startswith("content-length:"):
            content_length = int(line.split(":", 1)[1].strip())
            break
    total = head_end + 4 + content_length
    while len(buffer) < total:
        chunk = sock.recv(65536)
        if not chunk:
            return None, 0, buffer
        buffer += chunk
    return status, total, buffer[total:]


class SaturationWorker(threading.Thread):
    """One persistent keep-alive connection sending the same
    cache-hit request back to back until the deadline."""

    def __init__(self, host, port, request_bytes, warmup_until,
                 stop_at, lock, latencies, errors, pipeline=1):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.request_bytes = request_bytes
        self.warmup_until = warmup_until
        self.stop_at = stop_at
        self.lock = lock
        self.latencies = latencies      # post-warmup successes (ms)
        self.errors = errors            # [reconnects, non_2xx]
        self.pipeline = max(1, pipeline)

    def run(self):
        sock, buffer = None, b""
        local = []
        reconnects = non_2xx = 0
        batch = self.request_bytes * self.pipeline
        resp_len = None   # byte size of one 2xx answer, once known
        while time.monotonic() < self.stop_at:
            try:
                if sock is None:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=30.0)
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                    buffer = b""
                    resp_len = None
                start = time.monotonic()
                # Pipelining: one send carries the whole batch, then
                # the responses are collected strictly in order.
                sock.sendall(batch)
                if resp_len is not None:
                    # Fast path: the repeated cache-hit answer is
                    # byte-identical, so one bulk read of
                    # pipeline * resp_len bytes drains the batch.  The
                    # boundary check keeps it honest; any surprise
                    # (non-2xx, changed length) drops to the parser.
                    need = resp_len * self.pipeline
                    while len(buffer) < need:
                        chunk = sock.recv(65536)
                        if not chunk:
                            raise ConnectionError("peer closed")
                        buffer += chunk
                    if all(buffer.startswith(b"HTTP/1.1 2",
                                             i * resp_len)
                           for i in range(self.pipeline)):
                        now = time.monotonic()
                        buffer = buffer[need:]
                        if now >= self.warmup_until:
                            local.extend(
                                [(now - start) * 1000.0]
                                * self.pipeline)
                        continue
                    resp_len = None   # reparse the buffered bytes
                for _ in range(self.pipeline):
                    status, size, buffer = \
                        read_sized_response(sock, buffer)
                    now = time.monotonic()
                    if status is None:
                        raise ConnectionError("peer closed")
                    if 200 <= status < 300:
                        if resp_len is None:
                            resp_len = size
                        if now >= self.warmup_until:
                            local.append((now - start) * 1000.0)
                    else:
                        non_2xx += 1
            except Exception:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                sock = None
                reconnects += 1
                time.sleep(0.01)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        with self.lock:
            self.latencies.extend(local)
            self.errors[0] += reconnects
            self.errors[1] += non_2xx


def park_idle_connections(host, port, count):
    """Open @count keep-alive connections, prove each is live with
    one /healthz round trip, then leave them parked (no further
    bytes).  Returns the sockets so they stay open."""
    parked = []
    probe = (f"GET /healthz HTTP/1.1\r\nHost: {host}\r\n"
             "Connection: keep-alive\r\n\r\n").encode()
    for _ in range(count):
        try:
            sock = socket.create_connection((host, port),
                                            timeout=10.0)
            sock.sendall(probe)
            status, _ = read_http_response(sock, b"")
            if status == 200:
                parked.append(sock)
            else:
                sock.close()
        except Exception:
            break
    return parked


class HealthzProber(threading.Thread):
    """Periodic /healthz round trips on a fresh connection each time:
    the latency a bystander request sees while the fleet hammers."""

    def __init__(self, host, port, stop_at, interval=0.25):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.stop_at = stop_at
        self.interval = interval
        self.latencies = []
        self.failures = 0

    def run(self):
        request = (f"GET /healthz HTTP/1.1\r\nHost: {self.host}\r\n"
                   "Connection: close\r\n\r\n").encode()
        while time.monotonic() < self.stop_at:
            start = time.monotonic()
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=10.0)
                sock.sendall(request)
                status, _ = read_http_response(sock, b"")
                sock.close()
                if status == 200:
                    self.latencies.append(
                        (time.monotonic() - start) * 1000.0)
                else:
                    self.failures += 1
            except Exception:
                self.failures += 1
            time.sleep(self.interval)


def run_saturation(args, health):
    host, port = parse_host_port(args.base_url)
    body = json.dumps({
        "loop": args.loops[0],
        "machine": args.machine[0],
        "config": args.config[0],
    }).encode()
    request_bytes = (
        f"POST /v1/simulate HTTP/1.1\r\nHost: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n").encode() + body

    # Warm the cache once so the measured workload is pure hits.
    with urllib.request.urlopen(urllib.request.Request(
            args.base_url + "/v1/simulate", data=body,
            headers={"Content-Type": "application/json"},
            method="POST"), timeout=args.timeout) as response:
        json.loads(response.read())

    parked = park_idle_connections(host, port,
                                   args.idle_connections)
    if args.idle_connections and \
            len(parked) < args.idle_connections:
        print(f"loadgen: WARNING parked only {len(parked)} of "
              f"{args.idle_connections} idle connections",
              file=sys.stderr)

    start = time.monotonic()
    warmup_until = start + args.warmup
    stop_at = warmup_until + args.duration
    lock = threading.Lock()
    latencies, errors = [], [0, 0]
    workers = [SaturationWorker(host, port, request_bytes,
                                warmup_until, stop_at, lock,
                                latencies, errors,
                                pipeline=args.pipeline)
               for _ in range(args.connections)]
    prober = HealthzProber(host, port, stop_at)
    for worker in workers:
        worker.start()
    prober.start()
    for worker in workers:
        worker.join()
    prober.join()
    for sock in parked:
        try:
            sock.close()
        except OSError:
            pass

    latencies.sort()
    probe_lat = sorted(prober.latencies)
    sustained_rps = len(latencies) / args.duration \
        if args.duration > 0 else 0.0
    report = {
        "schema": "mfusim-loadgen-sat-v1",
        "base_url": args.base_url,
        "server_version": health.get("version"),
        "mode": "saturation",
        "duration_seconds": args.duration,
        "warmup_seconds": args.warmup,
        "connections": args.connections,
        "pipeline_depth": args.pipeline,
        "idle_connections": len(parked),
        "machine": args.machine[0],
        "loop": args.loops[0],
        "config": args.config[0],
        "requests_completed": len(latencies),
        "sustained_rps": round(sustained_rps, 1),
        "reconnects": errors[0],
        "non_2xx": errors[1],
        "latency_ms": {
            "min": round(latencies[0], 3) if latencies else 0.0,
            "mean": round(sum(latencies) / len(latencies), 3)
                if latencies else 0.0,
            "p50": round(percentile(latencies, 0.50), 3),
            "p90": round(percentile(latencies, 0.90), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "p999": round(percentile(latencies, 0.999), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "latency_histogram": log2_latency_histogram(latencies),
        "probe_healthz": {
            "count": len(probe_lat),
            "failures": prober.failures,
            "p50_ms": round(percentile(probe_lat, 0.50), 3),
            "p99_ms": round(percentile(probe_lat, 0.99), 3),
        },
    }
    print(json.dumps(report, indent=2))
    if args.report:
        with open(args.report, "w") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    failures = []
    if not latencies:
        failures.append("no request succeeded")
    if args.min_rps is not None and sustained_rps < args.min_rps:
        failures.append(f"sustained {sustained_rps:.1f} rps below "
                        f"floor {args.min_rps}")
    if args.max_p99_ms is not None and latencies and \
            report["latency_ms"]["p99"] > args.max_p99_ms:
        failures.append(
            f"p99 {report['latency_ms']['p99']}ms exceeds "
            f"{args.max_p99_ms}ms")
    if args.idle_connections and probe_lat and \
            prober.failures > len(probe_lat):
        failures.append(
            f"healthz probe failed {prober.failures} times with "
            f"{len(parked)} idle connections parked")
    for failure in failures:
        print(f"loadgen: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="mfusim serve load generator")
    parser.add_argument("--base-url", default="http://127.0.0.1:8100")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request timeout in seconds")
    parser.add_argument("--retries", type=int, default=3,
                        help="retry budget per request (429/5xx/"
                             "connection failures; 0 disables)")
    parser.add_argument("--backoff-ms", type=float, default=50.0,
                        help="base backoff, doubled per attempt with "
                             "full jitter")
    parser.add_argument("--max-backoff-ms", type=float,
                        default=2000.0,
                        help="cap on any single backoff sleep")
    parser.add_argument("--machine", action="append", default=None,
                        help="machine spec; repeatable, round-robined")
    parser.add_argument("--loop", dest="loops", action="append",
                        type=int, default=None,
                        help="loop id; repeatable, round-robined")
    parser.add_argument("--config", action="append", default=None)
    parser.add_argument("--fail-on-5xx", action="store_true")
    parser.add_argument("--max-p99-ms", type=float, default=None)
    parser.add_argument("--report", default=None,
                        help="write a JSON report here")
    parser.add_argument("--duration", type=float, default=None,
                        help="saturation mode: sustain load for this "
                             "many seconds instead of a burst")
    parser.add_argument("--connections", type=int, default=64,
                        help="saturation mode: keep-alive connections "
                             "sending back to back")
    parser.add_argument("--idle-connections", type=int, default=0,
                        help="saturation mode: extra parked "
                             "keep-alive connections that send "
                             "nothing")
    parser.add_argument("--pipeline", type=int, default=1,
                        help="saturation mode: HTTP/1.1 pipelining "
                             "depth per connection (requests sent "
                             "back to back before reading)")
    parser.add_argument("--warmup", type=float, default=1.0,
                        help="saturation mode: seconds excluded from "
                             "the measured window")
    parser.add_argument("--min-rps", type=float, default=None,
                        help="saturation mode: fail below this "
                             "sustained RPS")
    args = parser.parse_args()
    if not args.machine:
        args.machine = ["cray"]
    if not args.loops:
        args.loops = [1, 3, 5, 7, 9, 12, 14]
    if not args.config:
        args.config = ["M11BR5", "M5BR2"]
    if args.duration is not None:
        # Saturation mode hammers ONE cell so every request is a
        # cache hit: the transport, not the simulators, is under test.
        args.loops = args.loops[:1]
        args.machine = args.machine[:1]
        args.config = args.config[:1]

    # One healthz probe up front: fail fast when the daemon is absent
    # rather than timing out N requests.
    try:
        with urllib.request.urlopen(args.base_url + "/healthz",
                                    timeout=args.timeout) as response:
            health = json.loads(response.read())
    except Exception as error:
        print(f"loadgen: /healthz unreachable: {error}",
              file=sys.stderr)
        return 1

    if args.duration is not None:
        return run_saturation(args, health)

    results = []
    counter = [0]
    lock = threading.Lock()
    started = time.monotonic()
    workers = [Worker(args, counter, lock, results)
               for _ in range(args.concurrency)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_seconds = time.monotonic() - started

    status_counts = {}
    for status, _, _, _, _ in results:
        key = str(status) if status else "connection_error"
        status_counts[key] = status_counts.get(key, 0) + 1
    latencies = sorted(ms for status, ms, _, _, _ in results
                       if 200 <= status < 300)
    cache_hits = sum(1 for status, _, cached, _, _ in results
                     if cached and 200 <= status < 300)
    count_5xx = sum(n for code, n in status_counts.items()
                    if code.isdigit() and code.startswith("5"))
    total_retries = sum(r for _, _, _, r, _ in results)
    total_timeouts = sum(t for _, _, _, _, t in results)
    retried_requests = sum(1 for _, _, _, r, _ in results if r)

    report = {
        "schema": "mfusim-loadgen-v1",
        "base_url": args.base_url,
        "server_version": health.get("version"),
        "requests": args.requests,
        "concurrency": args.concurrency,
        "machines": args.machine,
        "wall_seconds": round(wall_seconds, 3),
        "throughput_rps": round(len(results) / wall_seconds, 2)
            if wall_seconds > 0 else 0.0,
        "status_counts": status_counts,
        "count_5xx": count_5xx,
        "cache_hits": cache_hits,
        "retries": total_retries,
        "retried_requests": retried_requests,
        "timeouts": total_timeouts,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 2),
            "p90": round(percentile(latencies, 0.90), 2),
            "p99": round(percentile(latencies, 0.99), 2),
            "max": round(latencies[-1], 2) if latencies else 0.0,
        },
    }
    print(json.dumps(report, indent=2))
    if args.report:
        with open(args.report, "w") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    failures = []
    if not latencies:
        failures.append("no request succeeded")
    if args.fail_on_5xx and count_5xx:
        failures.append(f"{count_5xx} 5xx responses")
    if args.max_p99_ms is not None and latencies and \
            report["latency_ms"]["p99"] > args.max_p99_ms:
        failures.append(
            f"p99 {report['latency_ms']['p99']}ms exceeds "
            f"{args.max_p99_ms}ms")
    for failure in failures:
        print(f"loadgen: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
