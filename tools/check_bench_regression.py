#!/usr/bin/env python3
"""Compare the two newest BENCH_*.json snapshots in the repo root.

For every benchmark present in both, the newer items_per_second must
be within --tolerance (default 15%) of the older one, or better.
Snapshots from different build types are never compared (a debug
snapshot would read as a catastrophic regression).  With fewer than
two comparable snapshots there is nothing to gate: exit 0 with a
note, so fresh clones and CI bootstrap runs pass.

The newest snapshot must additionally carry
context.library_build_type == "release": tools/run_bench.sh stamps
that key from the app's CMake build type (Release/RelWithDebInfo),
and a snapshot without it — or marked "debug" — came from an
unoptimized build and is rejected outright (exit 1), not silently
compared.

When the newest snapshot contains the BM_BatchedSweep pairs, the
batched/scalar items_per_second ratio must reach --batched-speedup
(default 2.0) for at least one steady-state setting: the batched
lockstep kernel exists to make sweeps faster, so losing that win is
a failure even if no individual benchmark regressed.

Usage: tools/check_bench_regression.py [--tolerance 0.15]
           [--batched-speedup 2.0] [repo-root]
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    benches = {
        b["name"]: b["items_per_second"]
        for b in data.get("benchmarks", [])
        if "items_per_second" in b and b.get("run_type") != "aggregate"
    }
    context = data.get("context", {})
    # context.self_profile (run_bench.sh's phase wall times) is
    # informational: printed when present in both snapshots, never
    # gated — wall times on shared CI machines are too noisy.
    return (context.get("build_type", "unknown"), benches,
            context.get("self_profile", {}),
            context.get("library_build_type", "unknown"))


def check_batched_speedup(benches, required):
    """Gate the BM_BatchedSweep batched/scalar throughput ratio.

    Benchmark names look like "BM_BatchedSweep/<batched>/<steady>".
    Returns (failures, checked): zero failures when no pair is
    present (older snapshots), or when at least one steady setting
    meets the required ratio.
    """
    pairs = {}
    for name, ips in benches.items():
        parts = name.split("/")
        if parts[0] != "BM_BatchedSweep" or len(parts) != 3:
            continue
        pairs.setdefault(parts[2], {})[parts[1]] = ips
    checked = 0
    best = 0.0
    for steady, sides in sorted(pairs.items()):
        if "0" not in sides or "1" not in sides:
            continue
        checked += 1
        ratio = sides["1"] / sides["0"]
        best = max(best, ratio)
        print(f"  BM_BatchedSweep steady={steady}: batched/scalar "
              f"{ratio:.2f}x (require >= {required:.1f}x on one)")
    if not checked:
        return 0, 0
    if best < required:
        print(f"batched sweep speedup gate FAILED: best ratio "
              f"{best:.2f}x < {required:.1f}x")
        return 1, checked
    return 0, checked


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--batched-speedup", type=float, default=2.0,
                        help="required BM_BatchedSweep batched/scalar "
                             "ratio (default 2.0)")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: script's parent dir)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    snapshots = sorted(glob.glob(os.path.join(root, "BENCH_*.json")),
                       key=os.path.getmtime)
    if not snapshots:
        print("check_bench_regression: no snapshots in repo root — "
              "nothing to gate")
        return 0

    new_path = snapshots[-1]
    new_type, new, new_profile, new_lib = load(new_path)
    if new_lib != "release":
        print(f"check_bench_regression: {os.path.basename(new_path)} "
              f"has library_build_type={new_lib!r}; snapshots must "
              "come from a Release build (tools/run_bench.sh refuses "
              "debug builds and stamps this key) — REJECTED")
        return 1

    speedup_failures, speedup_checked = check_batched_speedup(
        new, args.batched_speedup)

    if len(snapshots) < 2:
        print(f"check_bench_regression: {len(snapshots)} snapshot(s) "
              "in repo root; need two to compare — nothing to gate")
        return 1 if speedup_failures else 0

    old_path = snapshots[-2]
    old_type, old, old_profile, _old_lib = load(old_path)
    if old_type != new_type:
        print(f"check_bench_regression: build types differ "
              f"({os.path.basename(old_path)}={old_type}, "
              f"{os.path.basename(new_path)}={new_type}) — skipping")
        return 1 if speedup_failures else 0

    shared = sorted(set(old) & set(new))
    if not shared:
        print("check_bench_regression: no shared benchmarks — skipping")
        return 1 if speedup_failures else 0

    print(f"comparing {os.path.basename(new_path)} against "
          f"{os.path.basename(old_path)} "
          f"(tolerance -{args.tolerance:.0%})")
    failures = 0
    for name in shared:
        ratio = new[name] / old[name]
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  <-- REGRESSION"
            failures += 1
        print(f"  {name:45s} {old[name] / 1e6:9.2f} -> "
              f"{new[name] / 1e6:9.2f} M items/s  ({ratio:6.2f}x){flag}")

    for phase in sorted(set(old_profile) & set(new_profile)):
        print(f"  self-profile {phase:32s} "
              f"{old_profile[phase] * 1e3:9.2f} -> "
              f"{new_profile[phase] * 1e3:9.2f} ms  (informational)")

    if failures or speedup_failures:
        if failures:
            print(f"{failures} benchmark(s) regressed more than "
                  f"{args.tolerance:.0%}")
        return 1
    if speedup_checked:
        print("no regressions; batched sweep speedup gate green")
    else:
        print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
