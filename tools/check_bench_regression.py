#!/usr/bin/env python3
"""Compare the two newest BENCH_*.json snapshots in the repo root.

For every benchmark present in both, the newer items_per_second must
be within --tolerance (default 15%) of the older one, or better.
Snapshots from different build types are never compared (a debug
snapshot would read as a catastrophic regression).  With fewer than
two comparable snapshots there is nothing to gate: exit 0 with a
note, so fresh clones and CI bootstrap runs pass.

Usage: tools/check_bench_regression.py [--tolerance 0.15] [repo-root]
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    benches = {
        b["name"]: b["items_per_second"]
        for b in data.get("benchmarks", [])
        if "items_per_second" in b and b.get("run_type") != "aggregate"
    }
    context = data.get("context", {})
    # context.self_profile (run_bench.sh's phase wall times) is
    # informational: printed when present in both snapshots, never
    # gated — wall times on shared CI machines are too noisy.
    return (context.get("build_type", "unknown"), benches,
            context.get("self_profile", {}))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: script's parent dir)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    snapshots = sorted(glob.glob(os.path.join(root, "BENCH_*.json")),
                       key=os.path.getmtime)
    if len(snapshots) < 2:
        print(f"check_bench_regression: {len(snapshots)} snapshot(s) "
              "in repo root; need two to compare — nothing to gate")
        return 0

    new_path, old_path = snapshots[-1], snapshots[-2]
    old_type, old, old_profile = load(old_path)
    new_type, new, new_profile = load(new_path)
    if old_type != new_type:
        print(f"check_bench_regression: build types differ "
              f"({os.path.basename(old_path)}={old_type}, "
              f"{os.path.basename(new_path)}={new_type}) — skipping")
        return 0

    shared = sorted(set(old) & set(new))
    if not shared:
        print("check_bench_regression: no shared benchmarks — skipping")
        return 0

    print(f"comparing {os.path.basename(new_path)} against "
          f"{os.path.basename(old_path)} "
          f"(tolerance -{args.tolerance:.0%})")
    failures = 0
    for name in shared:
        ratio = new[name] / old[name]
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  <-- REGRESSION"
            failures += 1
        print(f"  {name:45s} {old[name] / 1e6:9.2f} -> "
              f"{new[name] / 1e6:9.2f} M items/s  ({ratio:6.2f}x){flag}")

    for phase in sorted(set(old_profile) & set(new_profile)):
        print(f"  self-profile {phase:32s} "
              f"{old_profile[phase] * 1e3:9.2f} -> "
              f"{new_profile[phase] * 1e3:9.2f} ms  (informational)")

    if failures:
        print(f"{failures} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
