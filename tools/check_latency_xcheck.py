#!/usr/bin/env python3
"""Cross-check client- and server-side latency views of one load run.

Usage: check_latency_xcheck.py REPORT.json METRICS.prom [--slack F]

REPORT.json is a saturation report from tools/loadgen.py
(mfusim-loadgen-sat-v1); METRICS.prom is the Prometheus exposition
scraped from the same daemon's /metrics right after the run.  The two
measure the same traffic from opposite ends of the socket, so they
must agree up to pipelining and histogram coarseness:

  1. the server must have counted at least as many /v1/simulate
     requests as the client completed (warmup requests make it
     strictly more);
  2. the server-side p99 (upper bucket edge of
     mfusim_http_request_seconds{endpoint="simulate"}) must not
     exceed the client-observed p99 by more than --slack: the client
     number includes the whole pipelined batch round trip plus
     Python overhead, so server time above it means the histograms
     are lying;
  3. every mfusim_http_phase_seconds phase histogram must carry the
     same count as phase="total" — each published span records all
     phases or none — and that count must equal the
     mfusim_http_trace_spans_published_total counter.

Exit code 0 when every check holds, 1 otherwise.  Standard library
only; used by the serve-throughput CI job.
"""

import argparse
import json
import re
import sys

PHASES = ("parse", "dispatch", "queue", "compute", "serialize",
          "write_first", "write_drain")

LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")


def parse_prom(path):
    """{(name, frozenset(label pairs)): float value}"""
    samples = {}
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = LINE.match(line)
            if not match:
                continue
            labels = frozenset(
                pair.split("=", 1)[0] + "=" +
                pair.split("=", 1)[1].strip('"')
                for pair in (match.group("labels") or "").split(",")
                if "=" in pair)
            samples[(match.group("name"), labels)] = \
                float(match.group("value"))
    return samples


def sample(samples, name, **labels):
    want = frozenset(f"{k}={v}" for k, v in labels.items())
    for (sample_name, sample_labels), value in samples.items():
        if sample_name == name and want <= sample_labels:
            yield sample_labels, value


def one(samples, name, **labels):
    found = list(sample(samples, name, **labels))
    if len(found) != 1:
        return None
    return found[0][1]


def histogram_quantile(samples, name, fraction, **labels):
    """Upper bucket edge covering the given quantile (seconds)."""
    buckets = []
    count = None
    for labelset, value in sample(samples, name + "_bucket",
                                  **labels):
        le = next((label[3:] for label in labelset
                   if label.startswith("le=")), None)
        if le is None:
            continue
        if le == "+Inf":
            count = value
        else:
            buckets.append((float(le), value))
    if count is None or count == 0:
        return None
    buckets.sort()
    need = fraction * count
    for le, cumulative in buckets:
        if cumulative >= need:
            return le
    return buckets[-1][0] if buckets else None


def main():
    parser = argparse.ArgumentParser(
        description="loadgen vs /metrics latency cross-check")
    parser.add_argument("report")
    parser.add_argument("metrics")
    parser.add_argument("--slack", type=float, default=4.0,
                        help="server p99 may not exceed client p99 "
                             "by more than this factor (absorbs the "
                             "2x log2 upper-edge coarseness)")
    args = parser.parse_args()

    with open(args.report) as f:
        report = json.load(f)
    if report.get("schema") != "mfusim-loadgen-sat-v1":
        print(f"xcheck: {args.report} is not a saturation report "
              f"(schema {report.get('schema')!r})", file=sys.stderr)
        return 1
    samples = parse_prom(args.metrics)

    failures = []
    completed = report.get("requests_completed", 0)
    client_p99_ms = report.get("latency_ms", {}).get("p99", 0.0)
    histogram = report.get("latency_histogram", {})
    if histogram.get("count") != completed:
        failures.append(
            f"report histogram count {histogram.get('count')} != "
            f"requests_completed {completed}")

    server_count = one(samples, "mfusim_http_request_seconds_count",
                       endpoint="simulate")
    if server_count is None:
        failures.append("no mfusim_http_request_seconds_count"
                        '{endpoint="simulate"} in metrics')
    elif server_count < completed:
        failures.append(
            f"server counted {server_count:.0f} simulate requests "
            f"but client completed {completed}")

    server_p99_s = histogram_quantile(
        samples, "mfusim_http_request_seconds", 0.99,
        endpoint="simulate")
    if server_p99_s is None:
        failures.append("simulate latency histogram empty or absent")
    elif client_p99_ms > 0 and \
            server_p99_s * 1000.0 > client_p99_ms * args.slack:
        failures.append(
            f"server p99 <= {server_p99_s * 1000.0:.3f}ms exceeds "
            f"client p99 {client_p99_ms}ms x slack {args.slack}")

    total_count = one(samples, "mfusim_http_phase_seconds_count",
                      phase="total")
    if total_count is None:
        failures.append('no mfusim_http_phase_seconds_count'
                        '{phase="total"} in metrics')
    else:
        for phase in PHASES:
            phase_count = one(samples,
                              "mfusim_http_phase_seconds_count",
                              phase=phase)
            if phase_count != total_count:
                failures.append(
                    f"phase {phase} count {phase_count} != total "
                    f"count {total_count:.0f}")
        published = one(samples,
                        "mfusim_http_trace_spans_published_total")
        if published != total_count:
            failures.append(
                f"spans_published {published} != phase=total count "
                f"{total_count:.0f}")

    for failure in failures:
        print(f"xcheck: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"xcheck: OK: server p99 <= "
              f"{server_p99_s * 1000.0:.3f}ms vs client p99 "
              f"{client_p99_ms}ms over {completed} requests "
              f"({total_count:.0f} spans published)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
