#!/bin/sh
# Run the simulator-throughput microbenchmarks and record a JSON
# snapshot (BENCH_<date>.json in the repo root) for before/after
# comparisons of simulator-performance work.
#
# Usage: tools/run_bench.sh [build-dir] [extra benchmark args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/perf_sim_throughput"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake -B build -S . && cmake --build build)" >&2
    exit 1
fi

out="$repo_root/BENCH_$(date +%Y%m%d).json"
"$bench" --benchmark_min_time=0.2 --benchmark_format=json "$@" > "$out"
echo "wrote $out"

# Quick human-readable summary of items/s per benchmark.
python3 - "$out" <<'EOF'
import json, sys
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    ips = b.get("items_per_second")
    if ips is not None:
        print(f"  {b['name']:35s} {ips / 1e6:10.2f} M items/s")
EOF
