#!/bin/sh
# Run the simulator-throughput microbenchmarks and record a JSON
# snapshot (BENCH_<date>.json in the repo root) for before/after
# comparisons of simulator-performance work.
#
# Refuses to record from a non-Release build: debug-build numbers
# are not comparable and have polluted snapshots before.  Set
# MFUSIM_BENCH_ALLOW_DEBUG=1 to record one anyway (it is still
# labeled with its build type).
#
# Usage: tools/run_bench.sh [build-dir] [extra benchmark args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/perf_sim_throughput"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake -B build -S . && cmake --build build)" >&2
    exit 1
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "$build_dir/CMakeCache.txt" 2>/dev/null || true)
[ -n "$build_type" ] || build_type=unset
case "$build_type" in
Release | RelWithDebInfo) ;;
*)
    if [ "${MFUSIM_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
        echo "error: $build_dir has CMAKE_BUILD_TYPE='$build_type';" \
            "benchmark snapshots must come from a Release build" >&2
        echo "  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release" >&2
        echo "  cmake --build build-release --target perf_sim_throughput" >&2
        echo "  tools/run_bench.sh build-release" >&2
        echo "(or set MFUSIM_BENCH_ALLOW_DEBUG=1 to record anyway)" >&2
        exit 1
    fi
    echo "warning: recording from a '$build_type' build;" \
        "numbers are not comparable to Release snapshots" >&2
    ;;
esac

git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null ||
    echo unknown)

out="$repo_root/BENCH_$(date +%Y%m%d_%H%M%S).json"
"$bench" --benchmark_min_time=0.2 --benchmark_format=json "$@" > "$out"

# Self-profile the CLI's pipeline phases (decode / period-detect /
# simulate wall time on a representative instrumented run) so the
# snapshot records where a run's time goes, not just end-to-end
# throughput.  Best effort: skipped when the CLI is not built.
profile_json=""
cli="$build_dir/tools/mfusim"
if [ -x "$cli" ]; then
    profile_json=$(mktemp)
    if ! "$cli" --metrics-out "$profile_json" rate 7 ruu:4:50 \
        > /dev/null 2>&1; then
        rm -f "$profile_json"
        profile_json=""
    fi
fi

# Stamp provenance (and the self-profile phases, when available) into
# the snapshot's context block, then print a quick human-readable
# items/s summary.
python3 - "$out" "$build_type" "$git_sha" "$profile_json" <<'EOF'
import json, sys
path, build_type, git_sha, profile_path = sys.argv[1:5]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = build_type
data["context"]["git_sha"] = git_sha
# google-benchmark stamps context.library_build_type with how the
# *library* was compiled; distro packages say "debug" even when the
# app is -O2, which poisons snapshot comparisons.  Re-stamp it from
# the app's build type (the one the numbers actually depend on) and
# keep the library's own claim under another key.
data["context"]["benchmark_library_build_type"] = \
    data["context"].get("library_build_type", "unknown")
data["context"]["library_build_type"] = (
    "release" if build_type in ("Release", "RelWithDebInfo")
    else "debug")
if profile_path:
    with open(profile_path) as f:
        gauges = json.load(f).get("gauges", {})
    profile = {k.split(".", 1)[1]: v for k, v in gauges.items()
               if k.startswith("profile.")}
    if profile:
        data["context"]["self_profile"] = profile
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
for b in data["benchmarks"]:
    ips = b.get("items_per_second")
    if ips is not None:
        print(f"  {b['name']:45s} {ips / 1e6:10.2f} M items/s")
profile = data["context"].get("self_profile")
if profile:
    phases = ", ".join(f"{k} {v * 1e3:.2f} ms"
                       for k, v in sorted(profile.items()))
    print(f"  self-profile: {phases}")
EOF
[ -n "$profile_json" ] && rm -f "$profile_json"
echo "wrote $out ($build_type, $git_sha)"
