#!/bin/sh
# Maximum-scrutiny build: compile the tree under AddressSanitizer +
# UBSan, run the full test suite, then regenerate the paper's core
# tables with the SimAudit legality checker enabled (MFUSIM_AUDIT=1),
# so every table cell's schedule is re-verified against its
# organization's issue rules.
#
# Usage: tools/run_checked.sh [build-dir]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-checked"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root" \
    -DMFUSIM_SANITIZE=address,undefined
cmake --build "$build_dir" -j "$jobs"

(cd "$build_dir" && ctest --output-on-failure -j "$jobs")

# Audited table regeneration: a legality violation in any cell makes
# the driver exit nonzero with an "audit: <check> violated ..." dump.
for table in table1_single_issue table3_seq_issue_scalar \
             table5_ooo_issue_scalar table7_ruu_scalar; do
    echo "== $table (MFUSIM_AUDIT=1) =="
    MFUSIM_AUDIT=1 "$build_dir/bench/$table"
done

echo "run_checked: all green"
