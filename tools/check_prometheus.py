#!/usr/bin/env python3
"""Validate a Prometheus text-exposition snapshot from `mfusim serve`.

Standard library only.  Reads the exposition either from a file or by
fetching GET /metrics from a --base-url, then checks:

  * every non-comment line is `name{labels} value` with a legal metric
    name and a parseable float value,
  * every sample is preceded by a `# TYPE` declaration for its family,
  * histogram families have monotonically non-decreasing cumulative
    `_bucket` counts ending in `+Inf`, plus `_sum` and `_count`,
  * the required mfusim_ families for the serve daemon are present.

Exit status: 0 on a clean snapshot, 1 with one line per problem on
stderr otherwise.

Example:

    python3 tools/check_prometheus.py --base-url http://127.0.0.1:8100
    python3 tools/check_prometheus.py metrics.prom
"""

import argparse
import re
import sys
import urllib.request

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")

REQUIRED_FAMILIES = [
    "mfusim_http_requests_total",
    "mfusim_http_connections_accepted_total",
    "mfusim_http_queue_depth",
    "mfusim_http_in_flight",
    "mfusim_result_cache_hits_total",
    "mfusim_result_cache_misses_total",
    "mfusim_sim_squashes_total",
    "mfusim_sim_wrong_path_ops_total",
    "mfusim_sim_stall_mispredict_cycles_total",
]


def family_of(sample_name):
    """Strip histogram sample suffixes to recover the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[:-len(suffix)]
    return sample_name


def le_of(labels):
    """Extract the le="..." bound from a label string, or None."""
    match = re.search(r'le="([^"]*)"', labels or "")
    return match.group(1) if match else None


def validate(text):
    problems = []
    types = {}            # family -> declared TYPE
    samples = []          # (line_no, name, labels, value)
    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                problems.append(f"line {line_no}: malformed TYPE: {line}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue        # HELP or other comment
        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample: {line}")
            continue
        name = match.group("name")
        if not METRIC_NAME_RE.match(name):
            problems.append(f"line {line_no}: bad metric name: {name}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {line_no}: non-numeric value: {line}")
            continue
        samples.append((line_no, name, match.group("labels"), value))

    for line_no, name, _, _ in samples:
        if family_of(name) not in types:
            problems.append(
                f"line {line_no}: sample {name} has no # TYPE "
                "declaration")

    # Histogram invariants, grouped per family + non-le label set.
    hist_series = {}
    for line_no, name, labels, value in samples:
        family = family_of(name)
        if types.get(family) != "histogram":
            continue
        other_labels = re.sub(r'le="[^"]*"', "", labels or "")
        other_labels = re.sub(r",+", ",", other_labels).strip(",")
        key = (family, other_labels)
        entry = hist_series.setdefault(
            key, {"buckets": [], "sum": None, "count": None})
        if name.endswith("_bucket"):
            entry["buckets"].append((line_no, le_of(labels), value))
        elif name.endswith("_sum"):
            entry["sum"] = value
        elif name.endswith("_count"):
            entry["count"] = value

    for (family, _), entry in hist_series.items():
        buckets = entry["buckets"]
        if not buckets:
            problems.append(f"histogram {family}: no _bucket samples")
            continue
        if buckets[-1][1] != "+Inf":
            problems.append(
                f"histogram {family}: last bucket le="
                f"{buckets[-1][1]!r}, expected +Inf")
        previous = -1.0
        for line_no, bound, value in buckets:
            if value < previous:
                problems.append(
                    f"line {line_no}: histogram {family} bucket "
                    f"le={bound} count {value} < previous {previous}")
            previous = value
        if entry["sum"] is None:
            problems.append(f"histogram {family}: missing _sum")
        if entry["count"] is None:
            problems.append(f"histogram {family}: missing _count")
        elif entry["count"] != buckets[-1][2]:
            problems.append(
                f"histogram {family}: _count {entry['count']} != +Inf "
                f"bucket {buckets[-1][2]}")

    present = {family_of(name) for _, name, _, _ in samples}
    for family in REQUIRED_FAMILIES:
        if family not in present:
            problems.append(f"required family missing: {family}")
    return problems, len(samples)


def main():
    parser = argparse.ArgumentParser(
        description="mfusim /metrics exposition validator")
    parser.add_argument("file", nargs="?",
                        help="exposition file (omit with --base-url)")
    parser.add_argument("--base-url", default=None,
                        help="fetch <base-url>/metrics instead")
    parser.add_argument("--timeout", type=float, default=10.0)
    args = parser.parse_args()

    if args.base_url:
        with urllib.request.urlopen(args.base_url + "/metrics",
                                    timeout=args.timeout) as response:
            text = response.read().decode()
    elif args.file:
        with open(args.file) as handle:
            text = handle.read()
    else:
        parser.error("pass a file or --base-url")

    problems, sample_count = validate(text)
    for problem in problems:
        print(f"check_prometheus: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"check_prometheus: OK ({sample_count} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
