/**
 * @file
 * PredictorSpec parsing / keys and the shared prediction replay.
 */

#include "mfusim/spec/predictor.hh"

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"

#include <atomic>

namespace mfusim
{

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** splitmix64: the usual seeded hash for the kFixed outcome stream. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

unsigned
parseNumber(const std::string &text, const std::string &field)
{
    if (text.empty())
        throw ConfigError("predictor: empty " + field);
    unsigned long v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            throw ConfigError("predictor: bad " + field + " '" +
                              text + "'");
        v = v * 10 + unsigned(c - '0');
        if (v > 100000000ul)
            throw ConfigError("predictor: " + field +
                              " out of range '" + text + "'");
    }
    return unsigned(v);
}

} // namespace

std::string
PredictorSpec::key() const
{
    std::string base;
    switch (kind) {
      case Kind::kNone:    return "";
      case Kind::kPerfect: base = "perfect"; break;
      case Kind::kTaken:   base = "taken"; break;
      case Kind::kBtfn:    base = "btfn"; break;
      case Kind::kTwoBit:
        base = "2bit:" + std::to_string(tableSize);
        break;
      case Kind::kFixed:
        base = "fixed:" + std::to_string(accuracyPct) + ":s" +
            std::to_string(seed);
        break;
    }
    return base + ":w" + std::to_string(wrongPathWindow);
}

PredictorSpec
PredictorSpec::parse(const std::string &text)
{
    if (text.empty())
        throw ConfigError("predictor: empty spec");

    // Split on ':'.
    std::vector<std::string> parts;
    std::size_t from = 0;
    while (true) {
        const std::size_t colon = text.find(':', from);
        if (colon == std::string::npos) {
            parts.push_back(text.substr(from));
            break;
        }
        parts.push_back(text.substr(from, colon - from));
        from = colon + 1;
    }

    PredictorSpec spec;
    const std::string &head = parts[0];
    std::size_t next = 1;
    if (head == "perfect") {
        spec.kind = Kind::kPerfect;
    } else if (head == "taken") {
        spec.kind = Kind::kTaken;
    } else if (head == "btfn") {
        spec.kind = Kind::kBtfn;
    } else if (head == "2bit") {
        spec.kind = Kind::kTwoBit;
        if (next < parts.size() && !parts[next].empty() &&
            parts[next][0] != 'w' && parts[next][0] != 's')
            spec.tableSize = parseNumber(parts[next++], "table size");
    } else if (head == "fixed") {
        spec.kind = Kind::kFixed;
        if (next >= parts.size() || parts[next].empty() ||
            parts[next][0] == 'w' || parts[next][0] == 's')
            throw ConfigError(
                "predictor: fixed needs an accuracy, e.g. fixed:90");
        spec.accuracyPct = parseNumber(parts[next++], "accuracy");
    } else {
        throw ConfigError(
            "predictor: unknown kind '" + head +
            "' (want perfect|taken|btfn|2bit[:N]|fixed:PCT)");
    }

    for (; next < parts.size(); ++next) {
        const std::string &part = parts[next];
        if (part.size() > 1 && part[0] == 'w')
            spec.wrongPathWindow =
                parseNumber(part.substr(1), "wrong-path window");
        else if (part.size() > 1 && part[0] == 's' &&
                 spec.kind == Kind::kFixed)
            spec.seed = parseNumber(part.substr(1), "seed");
        else
            throw ConfigError("predictor: bad option '" + part +
                              "' in '" + text + "'");
    }

    spec.validate();
    return spec;
}

void
PredictorSpec::validate() const
{
    if (kind == Kind::kNone)
        return;
    if (kind == Kind::kTwoBit &&
        (!isPow2(tableSize) || tableSize > 1u << 20))
        throw ConfigError(
            "predictor: table size must be a power of two <= 2^20, "
            "got " + std::to_string(tableSize));
    if (kind == Kind::kFixed && accuracyPct > 100)
        throw ConfigError("predictor: accuracy must be in [0,100], "
                          "got " + std::to_string(accuracyPct));
    if (wrongPathWindow == 0 || wrongPathWindow > 4096)
        throw ConfigError(
            "predictor: wrong-path window must be in [1,4096], got " +
            std::to_string(wrongPathWindow));
}

std::vector<std::uint8_t>
precomputePredictions(const DecodedTrace &trace,
                      const PredictorSpec &spec)
{
    const std::size_t n = trace.size();
    std::vector<std::uint8_t> ok(n, 1);
    if (!spec.armed())
        return ok;

    // 2-bit saturating counters, direct-mapped on the static
    // instruction index, initialized weakly-taken (2).  State
    // advances on every retired branch in trace order.
    std::vector<std::uint8_t> table;
    if (spec.kind == PredictorSpec::Kind::kTwoBit)
        table.assign(spec.tableSize, 2);

    std::uint64_t ordinal = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!trace.isBranch(i))
            continue;
        const bool taken = trace.taken(i);
        bool correct = true;
        switch (spec.kind) {
          case PredictorSpec::Kind::kNone:
          case PredictorSpec::Kind::kPerfect:
            break;
          case PredictorSpec::Kind::kTaken:
            correct = taken;
            break;
          case PredictorSpec::Kind::kBtfn:
            correct = trace.btfnCorrect(i);
            break;
          case PredictorSpec::Kind::kTwoBit: {
            std::uint8_t &ctr =
                table[trace.staticIdx(i) & (spec.tableSize - 1)];
            correct = (ctr >= 2) == taken;
            if (taken) {
                if (ctr < 3)
                    ++ctr;
            } else if (ctr > 0) {
                --ctr;
            }
            break;
          }
          case PredictorSpec::Kind::kFixed:
            correct = splitmix64(spec.seed ^ ordinal) % 100 <
                spec.accuracyPct;
            break;
        }
        ok[i] = correct ? 1 : 0;
        ++ordinal;
    }
    return ok;
}

// ------------------------------------------------------ telemetry

namespace
{

std::atomic<std::uint64_t> g_squashes{ 0 };
std::atomic<std::uint64_t> g_wrong_path_ops{ 0 };
std::atomic<std::uint64_t> g_mispredict_cycles{ 0 };

} // namespace

void
recordSpecRun(std::uint64_t squashes, std::uint64_t wrongPathOps,
              std::uint64_t mispredictCycles)
{
    g_squashes.fetch_add(squashes, std::memory_order_relaxed);
    g_wrong_path_ops.fetch_add(wrongPathOps,
                               std::memory_order_relaxed);
    g_mispredict_cycles.fetch_add(mispredictCycles,
                                  std::memory_order_relaxed);
}

SpecTelemetry
specTelemetry()
{
    return { g_squashes.load(std::memory_order_relaxed),
             g_wrong_path_ops.load(std::memory_order_relaxed),
             g_mispredict_cycles.load(std::memory_order_relaxed) };
}

} // namespace mfusim
