/**
 * @file
 * Branch-predictor specifications for the speculative simulators.
 *
 * The paper's machines never speculate: every simulator either blocks
 * the front end on an unresolved branch (BranchPolicy::kBlocking),
 * assumes a static backward-taken/forward-not-taken predictor that is
 * only credited when it happens to be right (kBtfn), or assumes
 * perfect knowledge (kOracle).  A PredictorSpec arms a *dynamic*
 * front end instead: the fetch stream follows the predicted path,
 * wrong-path instructions occupy real issue/FU/bus resources until
 * the branch resolves, and a mispredict squashes the younger ops
 * precisely (see docs/MODEL.md, "Speculation").
 *
 * The spec is a value type carried inside MachineConfig; this header
 * is therefore deliberately self-contained (no simulator includes).
 * Prediction outcomes are a pure function of the *architectural*
 * branch stream — wrong-path ops never update predictor state — so
 * they can be precomputed once per (trace, spec) pair in trace order
 * and replayed identically by the simulators and the auditor.
 */

#ifndef MFUSIM_SPEC_PREDICTOR_HH
#define MFUSIM_SPEC_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mfusim
{

class DecodedTrace;

/**
 * One branch-predictor configuration.  `kind == kNone` (the default)
 * means speculation is disarmed and the simulators keep their
 * paper-mode BranchPolicy semantics bit-identically.
 */
struct PredictorSpec
{
    enum class Kind : std::uint8_t
    {
        kNone,     //!< speculation disarmed (paper mode)
        kPerfect,  //!< every branch predicted correctly
        kTaken,    //!< static always-taken
        kBtfn,     //!< static backward-taken / forward-not-taken
        kTwoBit,   //!< 2-bit saturating counters, direct-mapped table
        kFixed,    //!< synthetic fixed accuracy (seeded, deterministic)
    };

    Kind kind = Kind::kNone;

    /** 2-bit counter table entries (power of two; kTwoBit only). */
    unsigned tableSize = 512;

    /** Percent of branches predicted correctly (kFixed only). */
    unsigned accuracyPct = 90;

    /** Seed for the kFixed outcome stream. */
    std::uint64_t seed = 1;

    /**
     * Wrong-path fetch window: how many wrong-path instructions the
     * front end can push past a mispredicted branch before it runs
     * out of fetched-ahead instructions.  Bounds the resource
     * pollution a single mispredict can cause.
     */
    unsigned wrongPathWindow = 8;

    /** True when a predictor is configured (kind != kNone). */
    bool armed() const { return kind != Kind::kNone; }

    /**
     * Canonical short form, e.g. "2bit:512:w8" or "fixed:90:s1:w8";
     * parse(key()) round-trips.  Empty when disarmed.
     */
    std::string key() const;

    /**
     * Parse a spec string:
     *
     *   perfect | taken | btfn
     *   2bit[:TABLE]            (TABLE a power of two, default 512)
     *   fixed:PCT[:sSEED]       (PCT in [0,100], default seed 1)
     *
     * any form may append ":wN" to set the wrong-path window.
     *
     * @throws ConfigError on malformed input.
     */
    static PredictorSpec parse(const std::string &text);

    /** @throws ConfigError on out-of-range fields. */
    void validate() const;

    bool
    operator==(const PredictorSpec &other) const
    {
        return kind == other.kind && tableSize == other.tableSize &&
            accuracyPct == other.accuracyPct && seed == other.seed &&
            wrongPathWindow == other.wrongPathWindow;
    }
};

/**
 * Replay @p spec over the architectural branch stream of @p trace:
 * element i is 1 when op i is a branch the predictor gets right, 0
 * when it is a mispredicted branch, and 1 for non-branches (they are
 * never squash points).  Deterministic and timing-independent — the
 * predictor state advances only on retired branches, in trace order,
 * so the simulators and the auditor share one ground truth.
 */
std::vector<std::uint8_t>
precomputePredictions(const DecodedTrace &trace,
                      const PredictorSpec &spec);

/**
 * Process-wide speculative-run telemetry, mirrored into the serve
 * tier's /metrics exposition (mfusim_sim_squashes_total etc.).
 */
struct SpecTelemetry
{
    std::uint64_t squashes = 0;
    std::uint64_t wrongPathOps = 0;
    /** Cycles lost to mispredicts (wrong-path + squash drain). */
    std::uint64_t mispredictCycles = 0;
};

/** Fold one finished speculative run into the process counters. */
void recordSpecRun(std::uint64_t squashes, std::uint64_t wrongPathOps,
                   std::uint64_t mispredictCycles);

/** Snapshot the process-wide speculative telemetry. */
SpecTelemetry specTelemetry();

} // namespace mfusim

#endif // MFUSIM_SPEC_PREDICTOR_HH
