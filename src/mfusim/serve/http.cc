/**
 * @file
 * HTTP request reading / parsing / response serialization.
 */

#include "mfusim/serve/http.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mfusim/core/faultpoint.hh"

namespace mfusim
{

namespace
{

constexpr std::size_t kMaxHeadBytes = 16 * 1024;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r'))
        --e;
    return s.substr(b, e - b);
}

std::uint64_t
nowMs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::string
HttpRequest::header(const std::string &name,
                    const std::string &fallback) const
{
    const auto it = headers.find(toLower(name));
    return it == headers.end() ? fallback : it->second;
}

bool
HttpRequest::keepAlive() const
{
    // HTTP/1.1 defaults to persistent connections.
    return toLower(header("connection", "keep-alive")) != "close";
}

HttpResponse::HttpResponse(int status, std::string contentType,
                           std::string responseBody)
    : status(status), body(std::move(responseBody))
{
    headers["Content-Type"] = std::move(contentType);
}

const char *
HttpResponse::reason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

void
HttpResponse::serializeHead(bool keepAlive, std::string *out) const
{
    char line[64];
    std::snprintf(line, sizeof(line), "HTTP/1.1 %d ", status);
    out->append(line);
    out->append(reason(status));
    out->append("\r\n");
    for (const auto &[name, value] : headers) {
        out->append(name);
        out->append(": ");
        out->append(value);
        out->append("\r\n");
    }
    std::snprintf(line, sizeof(line), "Content-Length: %zu\r\n",
                  body.size());
    out->append(line);
    out->append(keepAlive ? "Connection: keep-alive\r\n\r\n"
                          : "Connection: close\r\n\r\n");
}

std::string
HttpResponse::serialize(bool keepAlive) const
{
    std::string out;
    serializeHead(keepAlive, &out);
    out += body;
    return out;
}

bool
parseRequestHead(const std::string &head, HttpRequest *out,
                 std::string *error)
{
    *out = HttpRequest{};
    std::size_t pos = 0;
    const auto nextLine = [&](std::string *line) -> bool {
        if (pos >= head.size())
            return false;
        const std::size_t eol = head.find('\n', pos);
        if (eol == std::string::npos) {
            *line = head.substr(pos);
            pos = head.size();
        } else {
            *line = head.substr(pos, eol - pos);
            pos = eol + 1;
        }
        if (!line->empty() && line->back() == '\r')
            line->pop_back();
        return true;
    };

    std::string line;
    if (!nextLine(&line) || line.empty()) {
        *error = "empty request line";
        return false;
    }
    // METHOD SP TARGET SP VERSION
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        *error = "malformed request line '" + line + "'";
        return false;
    }
    out->method = line.substr(0, sp1);
    out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0) {
        *error = "unsupported protocol '" + version + "'";
        return false;
    }
    if (out->method.empty() || out->target.empty() ||
        out->target[0] != '/') {
        *error = "malformed request line '" + line + "'";
        return false;
    }
    out->path = out->target.substr(0, out->target.find('?'));

    while (nextLine(&line)) {
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
            *error = "malformed header line '" + line + "'";
            return false;
        }
        const std::string name = toLower(trim(line.substr(0, colon)));
        if (name.find(' ') != std::string::npos ||
            name.find('\t') != std::string::npos) {
            *error = "whitespace in header name '" + name + "'";
            return false;
        }
        out->headers[name] = trim(line.substr(colon + 1));
    }
    return true;
}

ExtractStatus
extractRequest(const std::string &buffer, std::size_t offset,
               std::size_t maxBody, HttpRequest *out,
               std::size_t *consumed, std::string *error,
               bool *headComplete)
{
    if (headComplete != nullptr)
        *headComplete = false;

    // Locate the end of the head (CRLFCRLF, or bare LFLF for
    // hand-typed clients) within the unparsed suffix.
    const std::size_t crlf = buffer.find("\r\n\r\n", offset);
    const std::size_t lf = buffer.find("\n\n", offset);
    std::size_t headEnd = std::string::npos;
    std::size_t headSkip = 0;
    if (crlf != std::string::npos &&
        (lf == std::string::npos || crlf < lf)) {
        headEnd = crlf;
        headSkip = 4;
    } else if (lf != std::string::npos) {
        headEnd = lf;
        headSkip = 2;
    }
    if (headEnd == std::string::npos) {
        if (buffer.size() - offset > kMaxHeadBytes)
            return ExtractStatus::kTooLarge;
        return ExtractStatus::kNeedMore;
    }
    if (headEnd - offset > kMaxHeadBytes)
        return ExtractStatus::kTooLarge;

    if (!parseRequestHead(
            buffer.substr(offset, headEnd - offset), out, error))
        return ExtractStatus::kMalformed;

    std::size_t contentLength = 0;
    const std::string lengthHeader = out->header("content-length");
    if (!lengthHeader.empty()) {
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(lengthHeader.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            *error = "bad Content-Length '" + lengthHeader + "'";
            return ExtractStatus::kMalformed;
        }
        contentLength = std::size_t(parsed);
    }
    if (!out->header("transfer-encoding").empty()) {
        *error = "Transfer-Encoding is not supported";
        return ExtractStatus::kMalformed;
    }
    if (contentLength > maxBody)
        return ExtractStatus::kTooLarge;

    const std::size_t bodyStart = headEnd + headSkip;
    if (buffer.size() - bodyStart < contentLength) {
        if (headComplete != nullptr)
            *headComplete = true;
        return ExtractStatus::kNeedMore;
    }
    out->body = buffer.substr(bodyStart, contentLength);
    *consumed = bodyStart - offset + contentLength;
    return ExtractStatus::kOk;
}

bool
writeAll(int fd, const std::string &data, unsigned timeoutMs)
{
    const std::uint64_t start = nowMs();
    const auto remaining = [&]() -> int {
        if (timeoutMs == 0)
            return -1;      // poll() "wait forever"
        const std::uint64_t elapsed = nowMs() - start;
        if (elapsed >= timeoutMs)
            return 0;
        return int(timeoutMs - elapsed);
    };

    std::size_t sent = 0;
    while (sent < data.size()) {
        std::size_t cap = data.size() - sent;
        if (faultAt("http.write")) {
            const std::string mode = faultMode("http.write");
            if (mode == "fail")
                return false;
            cap = 1;    // "short" (and the default mode)
        }
        const ssize_t n = send(fd, data.data() + sent, cap,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
        );
        if (n >= 0) {
            sent += std::size_t(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Kernel buffer full: the peer is not draining.  Wait
            // for writability within the remaining budget instead of
            // spinning.
            const int wait = remaining();
            if (wait == 0)
                return false;
            struct pollfd pfd = { fd, POLLOUT, 0 };
            const int ready = poll(&pfd, 1, wait);
            if (ready < 0 && errno != EINTR)
                return false;
            if (ready == 0 && remaining() == 0)
                return false;   // budget exhausted
            continue;
        }
        return false;
    }
    return true;
}

} // namespace mfusim
