/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * The serve daemon is zero-external-dependency, so it carries its own
 * JSON: a small immutable-ish value tree (null / bool / number /
 * string / array / object) with an insertion-ordered object
 * representation, a strict parser producing ServeError(400) with a
 * line/column diagnostic on malformed input, and a writer matching
 * the escaping conventions of the metrics exporter.
 *
 * Deliberately NOT a general-purpose library: no comments, no NaN /
 * Infinity literals, 64-bit doubles only, and a fixed recursion
 * depth cap (the request schema is three levels deep; the cap stops
 * a hostile body like "[[[[..." from exhausting the stack).
 */

#ifndef MFUSIM_SERVE_JSON_HH
#define MFUSIM_SERVE_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mfusim
{

/** One JSON value. */
class Json
{
  public:
    enum class Kind : std::uint8_t
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Json() : kind_(Kind::kNull) {}
    explicit Json(bool b) : kind_(Kind::kBool), bool_(b) {}
    explicit Json(double n) : kind_(Kind::kNumber), number_(n) {}
    explicit Json(std::int64_t n)
        : kind_(Kind::kNumber), number_(double(n))
    {}
    explicit Json(std::uint64_t n)
        : kind_(Kind::kNumber), number_(double(n))
    {}
    explicit Json(std::string s)
        : kind_(Kind::kString), string_(std::move(s))
    {}
    explicit Json(const char *s)
        : kind_(Kind::kString), string_(s)
    {}

    static Json array() { Json v; v.kind_ = Kind::kArray; return v; }
    static Json object() { Json v; v.kind_ = Kind::kObject; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isBool() const { return kind_ == Kind::kBool; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isObject() const { return kind_ == Kind::kObject; }

    /** Typed accessors; throw ServeError(400) on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Object member by key, or nullptr when absent / not object. */
    const Json *find(const std::string &key) const;

    /** Array / object builders. */
    Json &push(Json value);
    Json &set(const std::string &key, Json value);

    /** Compact single-line serialization. */
    std::string dump() const;

  private:
    void dumpTo(std::string &out) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/**
 * Parse @p text as one JSON document (leading/trailing whitespace
 * allowed, nothing else after the value).
 *
 * @throws ServeError with HTTP status 400 and a "line L column C"
 *         diagnostic on malformed input.
 */
Json parseJson(const std::string &text);

/** JSON string escaping shared with the writer. */
std::string jsonEscapeString(const std::string &s);

/** Shortest round-trip decimal for a double ("%.17g", finite only). */
std::string jsonFormatNumber(double v);

} // namespace mfusim

#endif // MFUSIM_SERVE_JSON_HH
