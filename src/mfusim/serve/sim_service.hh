/**
 * @file
 * The mfusim request handler behind `mfusim serve`.
 *
 * SimService owns the HTTP surface of the daemon:
 *
 *   POST /v1/simulate   time one (loop, machine, config) cell
 *   POST /v1/sweep      fan a loop list over the sweep worker pool
 *   GET  /healthz       liveness + build version
 *   GET  /metrics       Prometheus text exposition
 *
 * Both POST endpoints take and return JSON (response schema
 * "mfusim-serve-v1"); responses are bit-identical to the equivalent
 * CLI invocation because both sit on the same spec parsers, trace
 * library, simulators and ResultCache.  All input errors surface as
 * ServeError(400) and render as {"error": ..., "status": 400}.
 *
 * The service is handler-only — it plugs into the transport-level
 * HttpServer (server.hh) and can read its admission-control stats
 * for the /metrics scrape via setServer().
 */

#ifndef MFUSIM_SERVE_SIM_SERVICE_HH
#define MFUSIM_SERVE_SIM_SERVICE_HH

#include <cstddef>
#include <mutex>
#include <string>

#include "mfusim/obs/metrics.hh"
#include "mfusim/serve/server.hh"

namespace mfusim
{

/** Service-level (not transport-level) knobs. */
struct SimServiceOptions
{
    /** Build identity reported by /healthz and /metrics. */
    std::string version = "unknown";
    /** Upper bound on loops per /v1/sweep request (400 beyond it). */
    std::size_t maxSweepLoops = 256;
    /** Upper bound on machine variants per /v1/sweep request. */
    std::size_t maxSweepMachines = 64;
};

class SimService
{
  public:
    explicit SimService(SimServiceOptions options = {});

    /**
     * The HttpHandler entry point: route, execute, count.  Thread
     * safe; runs on HttpServer worker threads.
     */
    HttpResponse handle(const HttpRequest &request, unsigned budgetMs);

    /**
     * Attach the transport so /metrics can export its accepted /
     * rejected / queue-depth stats.  Call before start(); may be
     * null (stats are simply absent).
     */
    void setServer(const HttpServer *server) { server_ = server; }

  private:
    HttpResponse dispatch(const HttpRequest &request,
                          unsigned budgetMs);
    HttpResponse handleSimulate(const std::string &body);
    HttpResponse handleSweep(const std::string &body);
    HttpResponse handleHealthz() const;
    HttpResponse handleMetrics();

    /** Count one finished request into the service registry. */
    void record(const std::string &endpoint, int status,
                double elapsedMs);

    SimServiceOptions options_;
    const HttpServer *server_ = nullptr;

    mutable std::mutex metricsMutex_;
    MetricsRegistry http_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_SIM_SERVICE_HH
