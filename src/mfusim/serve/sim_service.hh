/**
 * @file
 * The mfusim request handler behind `mfusim serve`.
 *
 * SimService owns the HTTP surface of the daemon:
 *
 *   POST /v1/simulate   time one (loop, machine, config) cell
 *   POST /v1/sweep      fan a loop list over the sweep worker pool
 *   GET  /healthz       liveness + build version + uptime
 *   GET  /metrics       Prometheus text exposition
 *   GET  /v1/trace      flight recorder as Perfetto trace JSON
 *
 * Both POST endpoints take and return JSON (response schema
 * "mfusim-serve-v1"); responses are bit-identical to the equivalent
 * CLI invocation because both sit on the same spec parsers, trace
 * library, simulators and ResultCache.  All input errors surface as
 * ServeError(400) and render as {"error": ..., "status": 400}.
 *
 * The service is handler-only — it plugs into the transport-level
 * HttpServer (server.hh) and can read its admission-control stats
 * for the /metrics scrape via setServer().
 */

#ifndef MFUSIM_SERVE_SIM_SERVICE_HH
#define MFUSIM_SERVE_SIM_SERVICE_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mfusim/core/machine_config.hh"
#include "mfusim/obs/metrics.hh"
#include "mfusim/serve/server.hh"

namespace mfusim
{

class RequestTracer;

/** Service-level (not transport-level) knobs. */
struct SimServiceOptions
{
    /** Build identity reported by /healthz and /metrics. */
    std::string version = "unknown";
    /** Upper bound on loops per /v1/sweep request (400 beyond it). */
    std::size_t maxSweepLoops = 256;
    /** Upper bound on machine variants per /v1/sweep request. */
    std::size_t maxSweepMachines = 64;
    /** Git revision baked into the binary (build_info, /healthz). */
    std::string gitSha = "unknown";
    /** CMake build type baked into the binary (build_info). */
    std::string buildType = "unknown";
    /**
     * Request tracer shared with the HttpServer (may be null).  The
     * service only reads from it: /v1/trace exports the flight
     * recorder, /metrics merges the phase histograms.
     */
    RequestTracer *tracer = nullptr;
};

class SimService
{
  public:
    explicit SimService(SimServiceOptions options = {});

    /**
     * The HttpHandler entry point: route, execute, count.  Thread
     * safe; runs on HttpServer worker threads.
     */
    HttpResponse handle(const HttpRequest &request, unsigned budgetMs);

    /**
     * The HttpFastHandler entry point: answer @p request inline when
     * it needs no compute — GET/HEAD /healthz, and POST /v1/simulate
     * requests whose cell is already in the ResultCache.  Returns
     * false (leaving @p response untouched) for everything else; the
     * worker-pool handle() path then produces the canonical answer,
     * including all error responses.
     *
     * Answers are bit-identical to the handle() path: the rendered
     * response of a cache hit is a pure function of the request body
     * and the (deterministic) cached SimResult, so it is memoized
     * per distinct body alongside the parsed request fields.
     *
     * Runs ONLY on the reactor thread (the memo is unsynchronized by
     * design); disabled while fault injection is armed so fault plans
     * keep their worker-path semantics.
     */
    bool tryFastAnswer(const HttpRequest &request,
                       HttpResponse *response);

    /**
     * Attach the transport so /metrics can export its accepted /
     * rejected / queue-depth stats.  Call before start(); may be
     * null (stats are simply absent).
     */
    void setServer(const HttpServer *server) { server_ = server; }

  private:
    HttpResponse dispatch(const HttpRequest &request,
                          unsigned budgetMs);
    HttpResponse handleSimulate(const std::string &body);
    HttpResponse handleSweep(const std::string &body);
    HttpResponse handleHealthz() const;
    HttpResponse handleMetrics();
    HttpResponse handleTrace(const std::string &target) const;

    /** Count one finished request into the service registry. */
    void record(const std::string &endpoint, int status,
                double elapsedMs);

    /**
     * Parsed-request memo for the reactor fast path, keyed by the
     * raw /v1/simulate body.  Saturation traffic repeats a handful
     * of distinct bodies, so the JSON + spec parsing (and, once the
     * first hit renders it, the full response body) is paid once per
     * distinct request instead of once per request.  `usable` is
     * false for bodies the fast path must always decline (parse
     * errors, uncacheable machines) — a negative entry stops the
     * reactor from re-parsing a hopeless body every time.
     */
    struct FastCell
    {
        bool usable = false;
        std::string loopSpec;
        std::string traceKey;   //!< "LL" + loopSpec, composed once
        std::string machineSpec;
        std::string machineKey;
        std::string simName;
        MachineConfig cfg;
        bool audited = false;
        std::string rendered;   //!< full response body, once a hit rendered it
    };

    /** Memo lookup/fill; nullptr means "decline the fast path". */
    FastCell *findFastCell(const std::string &body);

    SimServiceOptions options_;
    const HttpServer *server_ = nullptr;

    /** Reactor-thread-only (see tryFastAnswer); no lock. */
    std::unordered_map<std::string, FastCell> fastCells_;

    mutable std::mutex metricsMutex_;
    MetricsRegistry http_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_SIM_SERVICE_HH
