/**
 * @file
 * HTTP/1.1 protocol layer of the serve daemon.
 *
 * POSIX sockets only, no external dependencies.  The layer splits
 * cleanly in two:
 *
 *  - pure parsing/serialization (parseRequestHead(),
 *    extractRequest(), HttpResponse::serialize()/serializeHead())
 *    — unit-testable on strings, no sockets involved.  The epoll
 *    reactor (server.hh) accumulates bytes into a per-connection
 *    buffer and calls extractRequest() repeatedly, which is what
 *    makes HTTP/1.1 pipelining natural: every complete request
 *    already buffered parses without another read.
 *  - socket plumbing (writeAll()) — a poll()-based blocking write
 *    used by test clients and one-shot replies; the server's own
 *    I/O is non-blocking inside the reactor.
 *
 * Supported surface (deliberately narrow — this is a JSON RPC
 * daemon, not a general web server): GET/POST, Content-Length
 * bodies (no chunked transfer), keep-alive with Connection: close
 * opt-out, HTTP/1.1 pipelining, header section capped at 16 KiB.
 */

#ifndef MFUSIM_SERVE_HTTP_HH
#define MFUSIM_SERVE_HTTP_HH

#include <cstdint>
#include <map>
#include <string>

namespace mfusim
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;     //!< "GET", "POST", ...
    std::string target;     //!< path incl. query, e.g. "/v1/simulate"
    std::string path;       //!< target up to '?'
    /** Header fields, names lowercased; later duplicates win. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Header value by lowercase name, or @p fallback. */
    std::string header(const std::string &name,
                       const std::string &fallback = "") const;

    /** True when the client asked for (or defaulted to) keep-alive. */
    bool keepAlive() const;
};

/** One response under construction. */
struct HttpResponse
{
    int status = 200;
    std::map<std::string, std::string> headers;
    std::string body;

    HttpResponse() = default;
    HttpResponse(int status, std::string contentType,
                 std::string body);

    /** Canonical reason phrase for the statuses the daemon emits. */
    static const char *reason(int status);

    /**
     * Full wire form: status line, headers (Content-Length and
     * Connection added/overridden here), blank line, body.
     */
    std::string serialize(bool keepAlive) const;

    /**
     * Append the head only (status line, headers, Content-Length,
     * Connection, blank line — no body) to @p out.  The reactor
     * reuses one head buffer per connection and sends head + body
     * with one gathered writev, so the hit path never concatenates
     * head and body into a fresh string.
     */
    void serializeHead(bool keepAlive, std::string *out) const;
};

/**
 * Parse the request head (request line + header fields, everything
 * before the blank line, CRLF or bare-LF separated).
 *
 * @returns true on success; false with @p error set on malformed
 *          input (the caller answers 400).
 */
bool parseRequestHead(const std::string &head, HttpRequest *out,
                      std::string *error);

/** What extractRequest() observed about the buffer. */
enum class ExtractStatus
{
    kOk,            //!< one full request parsed into *out
    kNeedMore,      //!< buffer holds a prefix; read more bytes
    kMalformed,     //!< unparseable head; answer 400 and close
    kTooLarge,      //!< head over cap or body over maxBody; answer 413
    kHeadComplete,  //!< internal: head parsed, body incomplete
};

/**
 * Try to parse one complete request from @p buffer starting at
 * @p offset (pure function of the bytes — no sockets, no clocks).
 *
 * On kOk, *out holds the request and *consumed the total byte count
 * (head + separator + body) so the caller can advance its offset and
 * immediately try again — that loop IS pipelining.  kNeedMore means
 * the suffix is a valid prefix of a request; the caller should keep
 * accumulating (and apply its header/body clocks).  kTooLarge fires
 * both for a head growing past the 16 KiB cap without terminating
 * and for a Content-Length above @p maxBody — in either case the
 * request is never partially adopted.  @p headComplete (optional)
 * reports whether the head was already terminated on kNeedMore, so
 * the caller can pick the body clock over the header clock.
 */
ExtractStatus extractRequest(const std::string &buffer,
                             std::size_t offset, std::size_t maxBody,
                             HttpRequest *out, std::size_t *consumed,
                             std::string *error,
                             bool *headComplete = nullptr);

/**
 * write()/send() until every byte of @p data is out; false on
 * error/EPIPE.  @p timeoutMs bounds the total wall-clock time spent
 * waiting for a slow-reading peer (0 = wait forever): a client that
 * stops draining its receive window cannot pin a worker past the
 * bound.  Partial writes are completed in a loop; EINTR and EAGAIN
 * are retried (EAGAIN via poll(POLLOUT), so O_NONBLOCK fds do not
 * spin).
 */
bool writeAll(int fd, const std::string &data,
              unsigned timeoutMs = 0);

} // namespace mfusim

#endif // MFUSIM_SERVE_HTTP_HH
