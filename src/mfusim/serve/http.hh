/**
 * @file
 * HTTP/1.1 protocol layer of the serve daemon.
 *
 * POSIX sockets only, no external dependencies.  The layer splits
 * cleanly in two:
 *
 *  - pure parsing/serialization (parseRequestHead(),
 *    HttpResponse::serialize()) — unit-testable on strings, no
 *    sockets involved;
 *  - socket plumbing (readHttpRequest(), writeAll()) — a poll()-based
 *    blocking read loop with a wall-clock budget, so a stalled or
 *    malicious client cannot pin a worker past its deadline.
 *
 * Supported surface (deliberately narrow — this is a JSON RPC
 * daemon, not a general web server): GET/POST, Content-Length
 * bodies (no chunked transfer), keep-alive with Connection: close
 * opt-out, header section capped at 16 KiB.
 */

#ifndef MFUSIM_SERVE_HTTP_HH
#define MFUSIM_SERVE_HTTP_HH

#include <cstdint>
#include <map>
#include <string>

namespace mfusim
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;     //!< "GET", "POST", ...
    std::string target;     //!< path incl. query, e.g. "/v1/simulate"
    std::string path;       //!< target up to '?'
    /** Header fields, names lowercased; later duplicates win. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Header value by lowercase name, or @p fallback. */
    std::string header(const std::string &name,
                       const std::string &fallback = "") const;

    /** True when the client asked for (or defaulted to) keep-alive. */
    bool keepAlive() const;
};

/** One response under construction. */
struct HttpResponse
{
    int status = 200;
    std::map<std::string, std::string> headers;
    std::string body;

    HttpResponse() = default;
    HttpResponse(int status, std::string contentType,
                 std::string body);

    /** Canonical reason phrase for the statuses the daemon emits. */
    static const char *reason(int status);

    /**
     * Full wire form: status line, headers (Content-Length and
     * Connection added/overridden here), blank line, body.
     */
    std::string serialize(bool keepAlive) const;
};

/**
 * Parse the request head (request line + header fields, everything
 * before the blank line, CRLF or bare-LF separated).
 *
 * @returns true on success; false with @p error set on malformed
 *          input (the caller answers 400).
 */
bool parseRequestHead(const std::string &head, HttpRequest *out,
                      std::string *error);

/** What readHttpRequest() observed. */
enum class ReadOutcome
{
    kOk,            //!< full request parsed into *out
    kClosed,        //!< peer closed before sending anything (benign)
    kMalformed,     //!< unparseable head; answer 400
    kTooLarge,      //!< head over cap or body over maxBody; answer 431/413
    kTimeout,       //!< budget exhausted mid-request; answer 408
    kError,         //!< socket error; drop the connection
};

/**
 * Read one HTTP request from @p fd.
 *
 * Blocks up to @p budgetMs wall milliseconds in total (poll() +
 * recv() loop).  @p idleMs bounds the initial wait for the first
 * byte separately — a keep-alive connection parked between requests
 * times out as kClosed rather than kTimeout, so idle churn is not an
 * error.  @p headerMs additionally bounds the header phase once the
 * first byte has arrived (0 = no separate bound): a slowloris client
 * dribbling one header byte per second is cut off with kTimeout
 * after headerMs instead of pinning the worker for the whole request
 * budget.  Body reading stops early with kTooLarge as soon as
 * Content-Length exceeds @p maxBody (the body is not drained; the
 * caller answers 413 and closes).  @p error receives a diagnostic
 * for kMalformed.
 *
 * EINTR/EAGAIN-safe throughout; works with blocking and
 * O_NONBLOCK fds alike (all waiting happens in poll()).
 */
ReadOutcome readHttpRequest(int fd, HttpRequest *out,
                            unsigned budgetMs, unsigned idleMs,
                            unsigned headerMs, std::size_t maxBody,
                            std::string *error);

/**
 * write()/send() until every byte of @p data is out; false on
 * error/EPIPE.  @p timeoutMs bounds the total wall-clock time spent
 * waiting for a slow-reading peer (0 = wait forever): a client that
 * stops draining its receive window cannot pin a worker past the
 * bound.  Partial writes are completed in a loop; EINTR and EAGAIN
 * are retried (EAGAIN via poll(POLLOUT), so O_NONBLOCK fds do not
 * spin).
 */
bool writeAll(int fd, const std::string &data,
              unsigned timeoutMs = 0);

} // namespace mfusim

#endif // MFUSIM_SERVE_HTTP_HH
