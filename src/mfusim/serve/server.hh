/**
 * @file
 * Event-driven HTTP server: epoll reactor + bounded compute pool.
 *
 * Topology: ONE reactor thread owns every socket — the listener, all
 * connection reads (header and body accumulation, HTTP/1.1
 * pipelining), all response writes (gathered writev with
 * per-connection buffer reuse), and every protocol clock (idle park,
 * header/slowloris deadline, write budget).  A fixed pool of worker
 * threads runs ONLY handler compute: the reactor dispatches one
 * parsed request at a time per connection into a bounded task queue
 * and workers hand the finished response back through a completion
 * queue + eventfd wakeup.
 *
 * The shape matters for capacity: a parked keep-alive connection
 * costs a few hundred bytes of reactor state instead of a blocked
 * worker thread, so thousands of idle clients cannot deny service at
 * `--workers 4`, and a slow reader or slowloris writer is bounded by
 * reactor clocks without ever occupying a worker.
 *
 * Admission control moved from the accept edge to the dispatch edge:
 * every connection is accepted (an idle connection is nearly free
 * now), and a parsed request that finds the compute queue full is
 * answered 429 + load-aware Retry-After immediately by the reactor —
 * overload is still visible to clients within one round trip, and
 * the connection survives to retry.
 *
 * Pipelining: every complete request already buffered is parsed (up
 * to ServeOptions::maxPipeline per connection); compute is
 * dispatched strictly serially per connection, so responses come
 * back in request order by construction.
 *
 * Fast path: an optional HttpFastHandler lets the service answer
 * no-compute requests (result-cache hits, liveness probes) inline on
 * the reactor thread — a pipelined batch of cache hits then costs one
 * read syscall, N probes and N writes, with zero worker round trips.
 *
 * The server knows nothing about simulation; it routes every parsed
 * request through a single Handler callback.  SimService
 * (sim_service.hh) provides the mfusim-specific handler.
 *
 * Lifecycle: start() binds and spawns threads (port 0 picks an
 * ephemeral port, readable via port() — this is how tests avoid
 * collisions); stop() performs a graceful drain — stop accepting,
 * close idle connections, finish dispatched requests and flush their
 * responses, join all threads.  stop() is idempotent and also runs
 * from the destructor.
 */

#ifndef MFUSIM_SERVE_SERVER_HH
#define MFUSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mfusim/serve/http.hh"

namespace mfusim
{

class RequestTracer;
struct RequestSpan;

/** Server capacity and protocol knobs. */
struct ServeOptions
{
    /** TCP port; 0 binds an ephemeral port (see HttpServer::port()). */
    std::uint16_t port = 8100;
    /** Worker threads running handler compute. */
    unsigned workers = 4;
    /** Bounded compute-queue depth; beyond it requests get 429. */
    unsigned queueDepth = 64;
    /**
     * Default per-request wall-clock deadline in ms.  A request may
     * lower (never raise) it with an X-Deadline-Ms header.  Expired
     * requests answer 503 without running the simulation.  Also
     * bounds the body-read phase of a request (408 beyond it).
     */
    unsigned deadlineMs = 30000;
    /** Largest accepted request body; beyond it 413. */
    std::size_t maxBodyBytes = 1 << 20;
    /** Keep-alive idle timeout before a parked connection is closed. */
    unsigned idleTimeoutMs = 5000;
    /**
     * Header-phase deadline in ms once the first request byte has
     * arrived (anti-slowloris; 0 disables the separate bound and
     * falls back to deadlineMs alone).
     */
    unsigned headerTimeoutMs = 5000;
    /**
     * Response-write deadline in ms: a peer that stops draining its
     * receive window is disconnected after this long rather than
     * holding buffered response bytes forever (0 = wait forever).
     */
    unsigned writeTimeoutMs = 10000;
    /**
     * Pipelining bound: parsed-but-unanswered requests held per
     * connection.  Beyond it the reactor simply stops parsing that
     * connection's buffer — backpressure, not an error.
     */
    unsigned maxPipeline = 16;
};

/** Observable server state, exported to /metrics by SimService. */
struct ServerStats
{
    std::uint64_t accepted = 0;     //!< connections accepted
    std::uint64_t rejected = 0;     //!< requests answered 429
    std::uint64_t requests = 0;     //!< requests fully parsed
    std::uint64_t pipelined = 0;    //!< requests parsed behind another
                                    //!< unanswered one (pipelining hits)
    std::uint64_t fastpath = 0;     //!< requests answered inline by the
                                    //!< reactor (no worker dispatch)
    std::uint64_t queueDepth = 0;   //!< compute tasks waiting right now
    std::uint64_t inFlight = 0;     //!< requests being handled right now
    std::uint64_t connections = 0;  //!< connections open right now
    std::uint64_t workerDeaths = 0; //!< workers that died and were respawned
};

/**
 * The request handler.  Receives the parsed request plus the
 * remaining per-request deadline budget in ms; returns the response.
 * Runs on a worker thread; must be thread-safe.  Exceptions escaping
 * the handler become a 500 (ServeError keeps its own httpStatus()).
 */
using HttpHandler =
    std::function<HttpResponse(const HttpRequest &, unsigned budgetMs)>;

/**
 * Optional reactor fast path.  Tried on the REACTOR thread before a
 * request is queued for a worker; returning true with @p *out filled
 * answers the request inline — no task, no context switch, no queue
 * slot.  Return false to fall through to the worker pool.
 *
 * Contract: must never block or compute — a cache probe is the upper
 * bound of acceptable work, because every connection waits behind it.
 * Called only from the reactor thread, so implementations may keep
 * unsynchronized state.  Never consulted for requests whose deadline
 * already expired (the worker path owns the 503).
 */
using HttpFastHandler =
    std::function<bool(const HttpRequest &, HttpResponse *out)>;

/** Uniform JSON error body: {"error": <message>, "status": <status>}. */
HttpResponse jsonErrorResponse(int status, const std::string &message);

class HttpServer
{
  public:
    HttpServer(ServeOptions options, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind, listen and spawn the reactor + worker threads.
     * @throws ServeError (httpStatus 0 — not request-scoped) on
     *         socket/bind failure, e.g. the port is taken.
     */
    void start();

    /** Graceful drain: stop accepting, finish in-flight, join. */
    void stop();

    /**
     * Install the reactor fast path (see HttpFastHandler).  Call
     * before start(); not synchronized against a running server.
     */
    void setFastHandler(HttpFastHandler handler)
    {
        fastHandler_ = std::move(handler);
    }

    /**
     * Arm request-lifecycle tracing (obs/req_trace.hh).  Call before
     * start(); the tracer must outlive the server.  Null (the
     * default) disarms tracing — the request path then takes no
     * clock reads and touches no ring.  When armed, every request
     * gets a RequestSpan stamped at each phase boundary; the span is
     * finalized and published by the reactor when the response's
     * last byte is written (or at teardown, flagged aborted), and
     * spans that cross the tracer's slow threshold are logged to
     * stderr (rate-capped).
     */
    void setTracer(RequestTracer *tracer) { tracer_ = tracer; }

    /** The bound port (resolves ephemeral port 0 after start()). */
    std::uint16_t port() const { return boundPort_; }

    bool running() const { return running_.load(); }

    /** Point-in-time snapshot of the admission-control counters. */
    ServerStats stats() const;

  private:
    struct Conn;        //!< per-connection reactor state (server.cc)
    struct PendingReq;  //!< one parsed request + its trace span
    struct Task;        //!< one dispatched request
    struct Completion;  //!< one finished response

    void reactorLoop();
    void workerLoop(unsigned workerId);

    // --- reactor-side helpers (called only from reactorLoop) ---
    void acceptReady();
    void connReadable(Conn &conn);
    void connWritable(Conn &conn);
    void parseAndDispatch(Conn &conn);
    void dispatch(Conn &conn, PendingReq pending);
    void beginResponse(Conn &conn, const HttpResponse &response,
                       bool keepAlive, RequestSpan *span = nullptr);
    void flushWrites(Conn &conn);
    void noteWriteProgress(Conn &conn);
    void publishSpan(RequestSpan &span);
    void applyCompletions();
    void scanClocks();
    void beginDrain();
    void closeConn(Conn &conn);
    void wantWrite(Conn &conn, bool enable);

    /**
     * Re-look-up a connection after a call that may have closed (and
     * freed) it — parseAndDispatch / flushWrites both can.  Returns
     * the Conn only if the slot still holds the same generation;
     * nullptr means the connection died and must not be touched.
     */
    Conn *liveConn(int fd, std::uint64_t gen);

    /**
     * Seconds a 429'd client should back off, scaled with the
     * current backlog: 1 + (queued + in-flight) / workers, clamped
     * to [1, 60].  An idle server sheds a burst with "retry in 1s";
     * a deeply backlogged one spreads the retry storm out.
     */
    unsigned retryAfterSeconds() const;

    ServeOptions options_;
    HttpHandler handler_;
    HttpFastHandler fastHandler_;   //!< optional; reactor-inline answers
    RequestTracer *tracer_ = nullptr;   //!< optional; see setTracer()

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;               //!< eventfd: workers -> reactor
    bool listenArmed_ = false;      //!< listener registered in epoll
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    /** Connection table indexed by fd (dense, reactor-only). */
    std::vector<std::unique_ptr<Conn>> conns_;
    std::uint64_t nextGen_ = 1;     //!< guards completions vs fd reuse
    std::uint64_t lastClockScanMs_ = 0;

    // Compute queue: reactor pushes, workers pop.
    mutable std::mutex taskMutex_;
    std::condition_variable taskCv_;
    std::deque<Task> tasks_;

    // Completion queue: workers push + eventfd wakeup, reactor drains.
    std::mutex completionMutex_;
    std::vector<Completion> completions_;

    std::thread reactorThread_;
    /**
     * Guards workers_: a dying worker (worker.die fault, or any
     * escaped exception) respawns its replacement from its own
     * thread, racing stop()'s join loop.
     */
    mutable std::mutex workersMutex_;
    std::vector<std::thread> workers_;

    // Relaxed atomics: the request path and /metrics never contend
    // on a stats lock.
    struct AtomicStats
    {
        std::atomic<std::uint64_t> accepted{ 0 };
        std::atomic<std::uint64_t> rejected{ 0 };
        std::atomic<std::uint64_t> requests{ 0 };
        std::atomic<std::uint64_t> pipelined{ 0 };
        std::atomic<std::uint64_t> fastpath{ 0 };
        std::atomic<std::uint64_t> queued{ 0 };
        std::atomic<std::uint64_t> inFlight{ 0 };
        std::atomic<std::uint64_t> connections{ 0 };
        std::atomic<std::uint64_t> workerDeaths{ 0 };
    };
    AtomicStats stats_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_SERVER_HH
