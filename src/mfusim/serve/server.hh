/**
 * @file
 * Generic HTTP server with admission control.
 *
 * Topology: one accept thread feeding a bounded connection queue, a
 * fixed pool of worker threads draining it.  Admission control is in
 * the accept thread — when the queue is full the server answers 429
 * with Retry-After *immediately* instead of letting the kernel
 * backlog grow unboundedly, so overload is visible to clients within
 * one round trip.
 *
 * The server knows nothing about simulation; it routes every parsed
 * request through a single Handler callback.  SimService
 * (sim_service.hh) provides the mfusim-specific handler.  Keeping the
 * two apart lets tests exercise queue overflow and deadlines with a
 * deliberately slow handler instead of timing-sensitive real
 * simulations.
 *
 * Lifecycle: start() binds and spawns threads (port 0 picks an
 * ephemeral port, readable via port() — this is how tests avoid
 * collisions); stop() performs a graceful drain — stop accepting,
 * finish queued and in-flight requests, join all threads.  stop() is
 * idempotent and also runs from the destructor.
 */

#ifndef MFUSIM_SERVE_SERVER_HH
#define MFUSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mfusim/serve/http.hh"

namespace mfusim
{

/** Server capacity and protocol knobs. */
struct ServeOptions
{
    /** TCP port; 0 binds an ephemeral port (see HttpServer::port()). */
    std::uint16_t port = 8100;
    /** Worker threads draining the connection queue. */
    unsigned workers = 4;
    /** Bounded queue depth; beyond it new connections get 429. */
    unsigned queueDepth = 64;
    /**
     * Default per-request wall-clock deadline in ms.  A request may
     * lower (never raise) it with an X-Deadline-Ms header.  Expired
     * requests answer 503 without running the simulation.
     */
    unsigned deadlineMs = 30000;
    /** Largest accepted request body; beyond it 413. */
    std::size_t maxBodyBytes = 1 << 20;
    /** Keep-alive idle timeout before a parked connection is closed. */
    unsigned idleTimeoutMs = 5000;
    /**
     * Header-phase deadline in ms once the first request byte has
     * arrived (anti-slowloris; 0 disables the separate bound and
     * falls back to deadlineMs alone).
     */
    unsigned headerTimeoutMs = 5000;
    /**
     * Response-write deadline in ms: a peer that stops draining its
     * receive window is disconnected after this long rather than
     * pinning a worker (0 = wait forever).
     */
    unsigned writeTimeoutMs = 10000;
};

/** Observable server state, exported to /metrics by SimService. */
struct ServerStats
{
    std::uint64_t accepted = 0;     //!< connections accepted
    std::uint64_t rejected = 0;     //!< connections answered 429
    std::uint64_t requests = 0;     //!< requests fully read
    std::uint64_t queueDepth = 0;   //!< connections waiting right now
    std::uint64_t inFlight = 0;     //!< requests being handled right now
    std::uint64_t workerDeaths = 0; //!< workers that died and were respawned
};

/**
 * The request handler.  Receives the parsed request plus the
 * remaining per-request deadline budget in ms; returns the response.
 * Runs on a worker thread; must be thread-safe.  Exceptions escaping
 * the handler become a 500 (ServeError keeps its own httpStatus()).
 */
using HttpHandler =
    std::function<HttpResponse(const HttpRequest &, unsigned budgetMs)>;

/** Uniform JSON error body: {"error": <message>, "status": <status>}. */
HttpResponse jsonErrorResponse(int status, const std::string &message);

class HttpServer
{
  public:
    HttpServer(ServeOptions options, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind, listen and spawn the accept + worker threads.
     * @throws ServeError (httpStatus 0 — not request-scoped) on
     *         socket/bind failure, e.g. the port is taken.
     */
    void start();

    /** Graceful drain: stop accepting, finish in-flight, join. */
    void stop();

    /** The bound port (resolves ephemeral port 0 after start()). */
    std::uint16_t port() const { return boundPort_; }

    bool running() const { return running_.load(); }

    /** Point-in-time snapshot of the admission-control counters. */
    ServerStats stats() const;

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd);

    /**
     * Seconds a 429'd client should back off, scaled with the
     * current backlog: 1 + (queued + in-flight) / workers, clamped
     * to [1, 60].  An idle server sheds a burst with "retry in 1s";
     * a deeply backlogged one spreads the retry storm out.
     */
    unsigned retryAfterSeconds() const;

    ServeOptions options_;
    HttpHandler handler_;

    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<int> pending_;       //!< accepted fds awaiting a worker

    std::thread acceptThread_;
    /**
     * Guards workers_: a dying worker (worker.die fault, or any
     * escaped exception) respawns its replacement from its own
     * thread, racing stop()'s join loop.
     */
    mutable std::mutex workersMutex_;
    std::vector<std::thread> workers_;

    mutable std::mutex statsMutex_;
    ServerStats stats_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_SERVER_HH
