/**
 * @file
 * Crash-safe on-disk journal behind the in-memory ResultCache.
 *
 * The serve daemon's value compounds as its cache warms: after a few
 * thousand requests most of the paper's design space is answered
 * without simulating.  A restart — deploy, crash, OOM-kill — used to
 * throw all of that away.  The PersistentCache keeps the memo on
 * disk so a restarted daemon answers warm, and *bit-identically*:
 * a recovered record is the exact SimResult the simulator produced,
 * or it is discarded.
 *
 * Format (`<dir>/results.mfuj`, little-endian):
 *
 *   header:  u32 magic "MFUJ" | u32 schema version | u32 versionLen
 *            | u32 crc32(version bytes) | version bytes
 *   record:  u32 magic "MFUR" | u32 payloadLen | u32 crc32(payload)
 *            | payload
 *   payload: u32 keyLen | key | u64 instructions | u64 cycles
 *            | u64 raw | u64 waw | u64 structural | u64 resultBus
 *            | u64 branch | u8 hasStalls | u64 steadyOpsSkipped
 *
 * The key is the ResultCache's fully composed key, which already
 * embeds the code version (git SHA), trace identity, config, audit
 * and steady-state modes — so a record can never be served against
 * work it does not exactly describe.  The header additionally pins
 * the schema version and the producing build: a mismatch invalidates
 * the whole file at open (a cache is a pure performance artifact;
 * wholesale recomputation is always safe, serving a stale bit never
 * is).
 *
 * Crash safety is by construction, not by locking:
 *
 *  - appends are framed, checksummed, and issued as one write(), so
 *    a SIGKILL mid-append leaves at most one torn record at the tail;
 *  - the recovery scan at open() adopts records until the first
 *    framing/CRC failure, then truncates the file back to the last
 *    good byte — corrupt or torn data is *counted and removed*,
 *    never parsed around;
 *  - compaction rewrites into a temp file and renames over the
 *    journal, so a crash mid-compaction leaves either the old or the
 *    new file, both valid.
 *
 * I/O failures are absorbed, not thrown: a cache that cannot persist
 * degrades to the in-memory behavior with counters raised — the
 * daemon must keep serving on a full disk.  Fault points
 * (core/faultpoint.hh: persist.write / persist.fsync / persist.load
 * / persist.compact) make every failure path provokable in tests.
 */

#ifndef MFUSIM_SERVE_PERSIST_CACHE_HH
#define MFUSIM_SERVE_PERSIST_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** What the recovery scan found at open(). */
struct PersistLoadStats
{
    std::uint64_t recovered = 0;        //!< records adopted
    std::uint64_t discardedCorrupt = 0; //!< framing/CRC-rejected records
    std::uint64_t discardedVersion = 0; //!< whole-file version wipes
    std::uint64_t truncatedBytes = 0;   //!< bytes cut off the file
    bool loadFailed = false;            //!< warm-load aborted; cold start
};

/** Cumulative journal telemetry since open(). */
struct PersistStats
{
    std::uint64_t appends = 0;      //!< records durably framed
    std::uint64_t appendErrors = 0; //!< failed/injected write errors
    std::uint64_t fsyncs = 0;
    std::uint64_t fsyncErrors = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compactErrors = 0;
    std::uint64_t deadBytes = 0;    //!< torn/duplicate bytes on disk
    std::uint64_t fileBytes = 0;    //!< current journal size
};

class PersistentCache
{
  public:
    struct Options
    {
        /** Appends between fsyncs (1 = every append). */
        unsigned fsyncEvery = 8;
        /** Journals smaller than this are never compacted. */
        std::uint64_t compactMinBytes = 64 * 1024;
        /** Appends between compaction-trigger checks. */
        unsigned compactCheckEvery = 256;
    };

    /** @p dir is created if missing; the journal is `dir/results.mfuj`. */
    explicit PersistentCache(std::string dir);
    PersistentCache(std::string dir, Options options);
    ~PersistentCache();

    PersistentCache(const PersistentCache &) = delete;
    PersistentCache &operator=(const PersistentCache &) = delete;

    /**
     * Open (or create) the journal, validate its header against
     * @p version, scan and hand every valid record to @p sink, and
     * truncate any torn/corrupt tail.  A header mismatch (schema or
     * version) wipes the file and starts fresh.  @throws
     * std::bad_alloc only when the persist.load fault point fires
     * (callers must survive it by starting cold).
     */
    PersistLoadStats
    open(const std::string &version,
         const std::function<void(std::string, const SimResult &)>
             &sink);

    /**
     * Append one record; thread-safe.  Returns false (and counts)
     * when the record could not be durably framed — the in-memory
     * cache is unaffected either way.
     */
    bool append(const std::string &key, const SimResult &result);

    /** fsync any buffered appends (drain path). */
    void flush();

    /**
     * Compact when the journal has accumulated enough dead bytes
     * (torn writes, duplicates): rewrite exactly @p liveSnapshot()'s
     * entries into a temp file and atomically rename it over the
     * journal.  The snapshot is taken under the journal lock so no
     * concurrent append can be lost.  Returns true if a compaction
     * ran.
     */
    bool maybeCompact(
        const std::function<
            std::vector<std::pair<std::string, SimResult>>()>
            &liveSnapshot);

    /** maybeCompact() without the size heuristics (tests, drain). */
    bool compactNow(
        const std::function<
            std::vector<std::pair<std::string, SimResult>>()>
            &liveSnapshot);

    PersistStats stats() const;
    const std::string &path() const { return path_; }

    /** CRC-32 (IEEE 802.3) of @p size bytes at @p data. */
    static std::uint32_t crc32(const void *data, std::size_t size);

  private:
    bool writeRaw(const char *data, std::size_t size);
    void fsyncLocked();
    bool compactLocked(
        const std::vector<std::pair<std::string, SimResult>> &live);
    bool writeHeader(int fd, const std::string &version) const;

    Options options_;
    std::string dir_;
    std::string path_;
    std::string version_;

    mutable std::mutex mutex_;
    int fd_ = -1;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t deadBytes_ = 0;
    unsigned sinceFsync_ = 0;
    unsigned sinceCompactCheck_ = 0;
    PersistStats stats_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_PERSIST_CACHE_HH
