/**
 * @file
 * PersistentCache: journal framing, recovery scan, compaction.
 */

#include "mfusim/serve/persist_cache.hh"

#include <cerrno>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "mfusim/core/faultpoint.hh"

namespace mfusim
{

namespace
{

constexpr std::uint32_t kFileMagic = 0x4A55464DU;   // "MFUJ" LE
constexpr std::uint32_t kRecordMagic = 0x5255464DU; // "MFUR" LE
// v2: payload grew the speculation counters (squashes, wrongPathOps).
// A version bump discards v1 journals wholesale — recomputing is
// always safe; decoding a v1 record into a v2 SimResult never is.
constexpr std::uint32_t kSchemaVersion = 2;
/** Framing sanity bound: no composed key approaches this. */
constexpr std::uint32_t kMaxPayloadBytes = 1 << 20;
constexpr std::size_t kRecordHeaderBytes = 12;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | std::uint8_t(p[i]);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | std::uint8_t(p[i]);
    return v;
}

/** payload := keyLen key instructions cycles stalls[5] hasStalls
 *  skipped squashes wrongPathOps */
std::string
encodePayload(const std::string &key, const SimResult &r)
{
    std::string payload;
    payload.reserve(4 + key.size() + 7 * 8 + 1 + 3 * 8);
    putU32(payload, std::uint32_t(key.size()));
    payload.append(key);
    putU64(payload, r.instructions);
    putU64(payload, r.cycles);
    putU64(payload, r.stalls.raw);
    putU64(payload, r.stalls.waw);
    putU64(payload, r.stalls.structural);
    putU64(payload, r.stalls.resultBus);
    putU64(payload, r.stalls.branch);
    payload.push_back(r.hasStalls ? '\1' : '\0');
    putU64(payload, r.steadyOpsSkipped);
    putU64(payload, r.squashes);
    putU64(payload, r.wrongPathOps);
    return payload;
}

bool
decodePayload(const char *p, std::size_t size, std::string *key,
              SimResult *r)
{
    if (size < 4)
        return false;
    const std::uint32_t keyLen = getU32(p);
    if (size != 4 + std::size_t(keyLen) + 7 * 8 + 1 + 3 * 8)
        return false;
    key->assign(p + 4, keyLen);
    const char *q = p + 4 + keyLen;
    r->instructions = getU64(q);
    r->cycles = getU64(q + 8);
    r->stalls.raw = getU64(q + 16);
    r->stalls.waw = getU64(q + 24);
    r->stalls.structural = getU64(q + 32);
    r->stalls.resultBus = getU64(q + 40);
    r->stalls.branch = getU64(q + 48);
    r->hasStalls = q[56] != '\0';
    r->steadyOpsSkipped = getU64(q + 57);
    r->squashes = getU64(q + 65);
    r->wrongPathOps = getU64(q + 73);
    return true;
}

std::string
encodeRecord(const std::string &key, const SimResult &r)
{
    const std::string payload = encodePayload(key, r);
    std::string record;
    record.reserve(kRecordHeaderBytes + payload.size());
    putU32(record, kRecordMagic);
    putU32(record, std::uint32_t(payload.size()));
    putU32(record,
           PersistentCache::crc32(payload.data(), payload.size()));
    record.append(payload);
    return record;
}

std::string
encodeHeader(const std::string &version)
{
    std::string header;
    putU32(header, kFileMagic);
    putU32(header, kSchemaVersion);
    putU32(header, std::uint32_t(version.size()));
    putU32(header,
           PersistentCache::crc32(version.data(), version.size()));
    header.append(version);
    return header;
}

} // namespace

std::uint32_t
PersistentCache::crc32(const void *data, std::size_t size)
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1) ? 0xEDB88320U : 0);
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFU;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xff];
    return crc ^ 0xFFFFFFFFU;
}

PersistentCache::PersistentCache(std::string dir)
    : PersistentCache(std::move(dir), Options())
{
}

PersistentCache::PersistentCache(std::string dir, Options options)
    : options_(options), dir_(std::move(dir)),
      path_(dir_ + "/results.mfuj")
{
    if (options_.fsyncEvery == 0)
        options_.fsyncEvery = 1;
    if (options_.compactCheckEvery == 0)
        options_.compactCheckEvery = 1;
}

PersistentCache::~PersistentCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
PersistentCache::writeHeader(int fd, const std::string &version) const
{
    const std::string header = encodeHeader(version);
    std::size_t done = 0;
    while (done < header.size()) {
        const ssize_t n = ::write(fd, header.data() + done,
                                  header.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += std::size_t(n);
    }
    return true;
}

PersistLoadStats
PersistentCache::open(
    const std::string &version,
    const std::function<void(std::string, const SimResult &)> &sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PersistLoadStats load;
    version_ = version;

    ::mkdir(dir_.c_str(), 0755);    // EEXIST is the common case
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        load.loadFailed = true;
        return load;
    }

    // Read the whole journal for the recovery scan.
    std::string file;
    {
        char chunk[1 << 16];
        for (;;) {
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                load.loadFailed = true;
                return load;
            }
            if (n == 0)
                break;
            file.append(chunk, std::size_t(n));
        }
    }

    const std::string expectedHeader = encodeHeader(version);
    bool freshFile = file.empty();
    if (!freshFile && (file.size() < expectedHeader.size() ||
                       std::memcmp(file.data(), expectedHeader.data(),
                                   expectedHeader.size()) != 0)) {
        // Unrecognized or differently-versioned journal: the whole
        // file is invalid for this build.  Recomputing is always
        // safe; serving a stale bit never is.
        ++load.discardedVersion;
        load.truncatedBytes += file.size();
        freshFile = true;
    }

    if (freshFile) {
        if (::ftruncate(fd_, 0) != 0 ||
            ::lseek(fd_, 0, SEEK_SET) < 0 ||
            !writeHeader(fd_, version)) {
            load.loadFailed = true;
            return load;
        }
        fileBytes_ = expectedHeader.size();
        deadBytes_ = 0;
        stats_.fileBytes = fileBytes_;
        return load;
    }

    // Scan records; stop (and truncate) at the first framing or
    // checksum failure — everything after a bad record is suspect.
    std::size_t offset = expectedHeader.size();
    std::size_t lastGood = offset;
    while (offset < file.size()) {
        if (faultAt("persist.load"))
            throw std::bad_alloc();
        if (file.size() - offset < kRecordHeaderBytes)
            break;      // torn record header
        const char *head = file.data() + offset;
        const std::uint32_t magic = getU32(head);
        const std::uint32_t payloadLen = getU32(head + 4);
        const std::uint32_t crc = getU32(head + 8);
        if (magic != kRecordMagic || payloadLen > kMaxPayloadBytes) {
            ++load.discardedCorrupt;
            break;
        }
        if (file.size() - offset - kRecordHeaderBytes < payloadLen)
            break;      // torn payload
        const char *payload = head + kRecordHeaderBytes;
        std::string key;
        SimResult result;
        if (crc32(payload, payloadLen) != crc ||
            !decodePayload(payload, payloadLen, &key, &result)) {
            ++load.discardedCorrupt;
            break;
        }
        sink(std::move(key), result);
        ++load.recovered;
        offset += kRecordHeaderBytes + payloadLen;
        lastGood = offset;
    }

    if (lastGood < file.size()) {
        load.truncatedBytes += file.size() - lastGood;
        if (::ftruncate(fd_, off_t(lastGood)) != 0) {
            // Could not remove the bad tail: treat its bytes as dead
            // and let compaction rewrite a clean file later.
            deadBytes_ += file.size() - lastGood;
            lastGood = file.size();
        }
    }
    ::lseek(fd_, off_t(lastGood), SEEK_SET);
    fileBytes_ = lastGood;
    stats_.fileBytes = fileBytes_;
    return load;
}

bool
PersistentCache::writeRaw(const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n =
            ::write(fd_, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // Partial record on disk: cut it back off so the journal
            // stays clean even without a recovery scan.
            if (done > 0 &&
                ::ftruncate(fd_, off_t(fileBytes_)) == 0)
                ::lseek(fd_, off_t(fileBytes_), SEEK_SET);
            else
                deadBytes_ += done;
            return false;
        }
        done += std::size_t(n);
    }
    return true;
}

bool
PersistentCache::append(const std::string &key,
                        const SimResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    const std::string record = encodeRecord(key, result);

    if (faultAt("persist.write")) {
        ++stats_.appendErrors;
        if (faultMode("persist.write") == "torn") {
            // Crash-mid-write simulation: half the record reaches
            // disk.  The recovery scan must truncate it.
            const std::size_t half = record.size() / 2;
            if (writeRaw(record.data(), half)) {
                fileBytes_ += half;
                deadBytes_ += half;
                stats_.fileBytes = fileBytes_;
                stats_.deadBytes = deadBytes_;
            }
        }
        return false;
    }

    if (!writeRaw(record.data(), record.size())) {
        ++stats_.appendErrors;
        stats_.deadBytes = deadBytes_;
        return false;
    }
    fileBytes_ += record.size();
    ++stats_.appends;
    stats_.fileBytes = fileBytes_;
    if (++sinceFsync_ >= options_.fsyncEvery)
        fsyncLocked();
    return true;
}

void
PersistentCache::fsyncLocked()
{
    sinceFsync_ = 0;
    if (faultAt("persist.fsync")) {
        ++stats_.fsyncErrors;
        return;
    }
    if (::fsync(fd_) == 0)
        ++stats_.fsyncs;
    else
        ++stats_.fsyncErrors;
}

void
PersistentCache::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0 && sinceFsync_ > 0)
        fsyncLocked();
}

bool
PersistentCache::maybeCompact(
    const std::function<
        std::vector<std::pair<std::string, SimResult>>()>
        &liveSnapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    if (++sinceCompactCheck_ < options_.compactCheckEvery)
        return false;
    sinceCompactCheck_ = 0;
    // Compact once dead bytes dominate a journal worth rewriting.
    if (fileBytes_ < options_.compactMinBytes || deadBytes_ == 0 ||
        deadBytes_ * 2 < fileBytes_)
        return false;
    return compactLocked(liveSnapshot());
}

bool
PersistentCache::compactNow(
    const std::function<
        std::vector<std::pair<std::string, SimResult>>()>
        &liveSnapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    return compactLocked(liveSnapshot());
}

bool
PersistentCache::compactLocked(
    const std::vector<std::pair<std::string, SimResult>> &live)
{
    if (faultAt("persist.compact")) {
        ++stats_.compactErrors;
        return false;
    }
    const std::string tmpPath = path_ + ".tmp";
    const int tmp = ::open(tmpPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                           0644);
    if (tmp < 0) {
        ++stats_.compactErrors;
        return false;
    }
    std::string out = encodeHeader(version_);
    for (const auto &[key, result] : live)
        out.append(encodeRecord(key, result));
    std::size_t done = 0;
    bool ok = true;
    while (done < out.size()) {
        const ssize_t n =
            ::write(tmp, out.data() + done, out.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        done += std::size_t(n);
    }
    if (ok)
        ok = ::fsync(tmp) == 0;
    ::close(tmp);
    if (ok)
        ok = ::rename(tmpPath.c_str(), path_.c_str()) == 0;
    if (!ok) {
        ::unlink(tmpPath.c_str());
        ++stats_.compactErrors;
        return false;
    }

    // Swap the append fd over to the new file.
    const int fresh =
        ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fresh >= 0) {
        ::lseek(fresh, 0, SEEK_END);
        ::close(fd_);
        fd_ = fresh;
    }
    fileBytes_ = out.size();
    deadBytes_ = 0;
    sinceFsync_ = 0;
    ++stats_.compactions;
    stats_.fileBytes = fileBytes_;
    stats_.deadBytes = 0;
    return true;
}

PersistStats
PersistentCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PersistStats out = stats_;
    out.fileBytes = fileBytes_;
    out.deadBytes = deadBytes_;
    return out;
}

} // namespace mfusim
