/**
 * @file
 * HttpServer implementation: accept thread, bounded queue, workers.
 */

#include "mfusim/serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"
#include "mfusim/serve/json.hh"

namespace mfusim
{

namespace
{

/**
 * Thrown by the worker.die fault point to simulate a worker thread
 * dying mid-service (the closest portable stand-in for a crashed
 * thread that the process itself survives).  Caught only in
 * workerLoop(), which respawns a replacement.
 */
struct WorkerDeathFault
{
};

/** Budget the accept thread spends writing a 429 — it must never
 *  stall behind a slow rejected client. */
constexpr unsigned kRejectWriteBudgetMs = 250;

} // namespace

HttpResponse
jsonErrorResponse(int status, const std::string &message)
{
    Json body = Json::object();
    body.set("error", Json(message));
    body.set("status", Json(std::int64_t(status)));
    return HttpResponse(status, "application/json", body.dump() + "\n");
}

HttpServer::HttpServer(ServeOptions options, HttpHandler handler)
    : options_(options), handler_(std::move(handler))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queueDepth == 0)
        options_.queueDepth = 1;
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    if (running_.load())
        return;

    listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        throw ServeError(0, std::string("socket: ") +
                                std::strerror(errno));
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(options_.port);
    if (bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
             sizeof(addr)) < 0) {
        const std::string what = std::string("bind port ") +
            std::to_string(options_.port) + ": " +
            std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw ServeError(0, what);
    }
    if (listen(listenFd_, int(options_.queueDepth) + 16) < 0) {
        const std::string what =
            std::string("listen: ") + std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw ServeError(0, what);
    }

    // Resolve the actual port (meaningful when options_.port == 0).
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd_,
                    reinterpret_cast<struct sockaddr *>(&addr),
                    &len) == 0)
        boundPort_ = ntohs(addr.sin_port);

    stopping_.store(false);
    running_.store(true);
    acceptThread_ = std::thread(&HttpServer::acceptLoop, this);
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers_.reserve(options_.workers);
        for (unsigned i = 0; i < options_.workers; ++i)
            workers_.emplace_back(&HttpServer::workerLoop, this);
    }
}

void
HttpServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    queueCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Workers drain the queue, then observe stopping_ and exit.
    // Join in swap-batches: a dying worker may still be appending
    // its replacement to workers_, so keep draining until the vector
    // stays empty (respawns stop once stopping_ is observed).
    queueCv_.notify_all();
    for (;;) {
        std::vector<std::thread> batch;
        {
            std::lock_guard<std::mutex> lock(workersMutex_);
            batch.swap(workers_);
        }
        if (batch.empty())
            break;
        queueCv_.notify_all();
        for (std::thread &w : batch)
            if (w.joinable())
                w.join();
    }
    if (listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
}

ServerStats
HttpServer::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = stats_;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        out.queueDepth = pending_.size();
    }
    return out;
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        struct pollfd pfd = { listenFd_, POLLIN, 0 };
        const int ready = poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;

        const int fd = accept4(listenFd_, nullptr, nullptr,
                               SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == ECONNABORTED)
                continue;
            break;
        }
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            if (pending_.size() < options_.queueDepth) {
                pending_.push_back(fd);
                admitted = true;
            }
        }
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            if (admitted) {
                ++stats_.accepted;
            } else {
                ++stats_.rejected;
            }
        }
        if (admitted) {
            queueCv_.notify_one();
        } else {
            // Overload path runs on the accept thread so the client
            // learns about it within one round trip.  The write gets
            // a short budget of its own: a rejected client that does
            // not read must not stall admission for everyone else.
            HttpResponse busy =
                jsonErrorResponse(429, "server overloaded, retry");
            busy.headers["Retry-After"] =
                std::to_string(retryAfterSeconds());
            writeAll(fd, busy.serialize(false), kRejectWriteBudgetMs);
            close(fd);
        }
    }
}

unsigned
HttpServer::retryAfterSeconds() const
{
    std::uint64_t backlog = 0;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        backlog += pending_.size();
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        backlog += stats_.inFlight;
    }
    const std::uint64_t seconds =
        1 + backlog / std::max(1u, options_.workers);
    return unsigned(std::min<std::uint64_t>(seconds, 60));
}

void
HttpServer::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [&] {
                return stopping_.load() || !pending_.empty();
            });
            if (pending_.empty()) {
                if (stopping_.load())
                    return;
                continue;
            }
            fd = pending_.front();
            pending_.pop_front();
        }
        try {
            serveConnection(fd);
        } catch (const WorkerDeathFault &) {
            // Injected worker death: drop the connection, count it,
            // and spawn a replacement so the pool self-heals at its
            // configured size.  This thread then exits; stop() joins
            // its (finished) handle from the workers_ vector.
            close(fd);
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++stats_.workerDeaths;
            }
            {
                std::lock_guard<std::mutex> lock(workersMutex_);
                if (!stopping_.load())
                    workers_.emplace_back(&HttpServer::workerLoop,
                                          this);
            }
            return;
        }
        close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    if (faultAt("worker.die"))
        throw WorkerDeathFault{};

    // Keep-alive loop: one iteration per request on this connection.
    for (;;) {
        HttpRequest request;
        std::string parseError;
        const ReadOutcome outcome = readHttpRequest(
            fd, &request, options_.deadlineMs, options_.idleTimeoutMs,
            options_.headerTimeoutMs, options_.maxBodyBytes,
            &parseError);

        switch (outcome) {
          case ReadOutcome::kOk:
            break;
          case ReadOutcome::kClosed:
            return;
          case ReadOutcome::kMalformed:
            writeAll(fd, jsonErrorResponse(400, parseError.empty()
                                                    ? "malformed request"
                                                    : parseError)
                             .serialize(false),
                     options_.writeTimeoutMs);
            return;
          case ReadOutcome::kTooLarge:
            writeAll(fd, jsonErrorResponse(
                             413, "request body exceeds " +
                                      std::to_string(
                                          options_.maxBodyBytes) +
                                      " bytes")
                             .serialize(false),
                     options_.writeTimeoutMs);
            return;
          case ReadOutcome::kTimeout:
            writeAll(fd,
                     jsonErrorResponse(408, "request read timed out")
                         .serialize(false),
                     options_.writeTimeoutMs);
            return;
          case ReadOutcome::kError:
            return;
        }

        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.requests;
            ++stats_.inFlight;
        }

        // Per-request deadline: the default, lowered (never raised)
        // by an X-Deadline-Ms header.
        unsigned budgetMs = options_.deadlineMs;
        const std::string deadlineHeader =
            request.header("x-deadline-ms");
        if (!deadlineHeader.empty()) {
            char *end = nullptr;
            const unsigned long parsed =
                std::strtoul(deadlineHeader.c_str(), &end, 10);
            if (end != nullptr && *end == '\0' && parsed < budgetMs)
                budgetMs = unsigned(parsed);
        }

        HttpResponse response;
        if (faultAt("worker.overrun")) {
            // Injected deadline overrun: burn (a capped slice of) the
            // budget, then answer as an expired request would.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(budgetMs, 200u)));
            response = jsonErrorResponse(
                503, "deadline exceeded (injected overrun)");
        } else if (budgetMs == 0) {
            response = jsonErrorResponse(
                503, "deadline expired before processing");
        } else {
            try {
                response = handler_(request, budgetMs);
            } catch (const ServeError &e) {
                response = jsonErrorResponse(
                    e.httpStatus() > 0 ? e.httpStatus() : 500,
                    e.what());
            } catch (const std::exception &e) {
                response = jsonErrorResponse(500, e.what());
            }
        }

        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            --stats_.inFlight;
        }

        // During a drain, finish this request but no more.
        const bool keep = request.keepAlive() && !stopping_.load();
        if (!writeAll(fd, response.serialize(keep),
                      options_.writeTimeoutMs))
            return;
        if (!keep)
            return;
    }
}

} // namespace mfusim
