/**
 * @file
 * HttpServer implementation: epoll reactor + bounded worker pool.
 *
 * Single-writer discipline: every Conn is owned by the reactor
 * thread.  Workers never touch sockets — they receive a parsed
 * HttpRequest by value and post an HttpResponse back through the
 * completion queue, keyed by (fd, generation) so a completion for a
 * connection that died in the meantime is dropped instead of being
 * written to a recycled fd.
 */

#include "mfusim/serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "mfusim/core/clock.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"
#include "mfusim/obs/req_trace.hh"
#include "mfusim/serve/json.hh"

namespace mfusim
{

namespace
{

/**
 * Thrown by the worker.die fault point to simulate a worker thread
 * dying mid-request (the closest portable stand-in for a crashed
 * thread that the process itself survives).  Caught only in
 * workerLoop(), which respawns a replacement.
 */
struct WorkerDeathFault
{
};

/** Clock-scan cadence: protocol deadlines are enforced within this. */
constexpr std::uint64_t kClockScanMs = 50;

/** Listener re-arm delay after fd exhaustion (EMFILE/ENFILE). */
constexpr std::uint64_t kAcceptBackoffMs = 100;

/**
 * Responses up to this size are corked into the connection's head
 * buffer so a pipelined burst of small answers (cache hits, errors)
 * drains in ONE writev.  Larger bodies are moved, not copied, and
 * must be the last response of their burst (see beginResponse).
 */
constexpr std::size_t kInlineBodyBytes = 16u << 10;

std::uint64_t
nowMs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

HttpResponse
jsonErrorResponse(int status, const std::string &message)
{
    Json body = Json::object();
    body.set("error", Json(message));
    body.set("status", Json(std::int64_t(status)));
    return HttpResponse(status, "application/json", body.dump() + "\n");
}

/**
 * One parsed request and its trace span, awaiting dispatch.  The
 * span rides every hop of the request (parsed deque, task queue,
 * completion queue, write queue) so each thread stamps its own phase
 * boundaries into private state — no shared span storage, no locks.
 * Disarmed, the span is dead weight of ~100 zeroed bytes per move.
 */
struct HttpServer::PendingReq
{
    HttpRequest request;
    RequestSpan span;
};

/** One dispatched request, in flight toward a worker. */
struct HttpServer::Task
{
    int fd = -1;
    std::uint64_t gen = 0;
    HttpRequest request;
    RequestSpan span;
    unsigned budgetMs = 0;
};

/** One finished response, in flight back toward the reactor. */
struct HttpServer::Completion
{
    int fd = -1;
    std::uint64_t gen = 0;
    HttpResponse response;
    RequestSpan span;
    bool killConn = false;  //!< worker died: drop the connection
};

/**
 * Per-connection reactor state — the entire cost of a parked
 * keep-alive client.  Buffers keep their capacity across requests on
 * the same connection (that is the "no allocation on the hit path"
 * half of the pipelining story; the gathered writev is the other).
 */
struct HttpServer::Conn
{
    int fd = -1;
    std::uint64_t gen = 0;
    std::uint32_t events = 0;       //!< epoll interest currently armed

    // ---- read side ----
    std::string in;                 //!< unparsed request bytes
    std::size_t inOff = 0;          //!< parse cursor into `in`
    std::deque<PendingReq> parsed;  //!< pipelined, awaiting dispatch
    bool peerEof = false;
    std::uint64_t recvNs = 0;       //!< first-byte stamp (traced only)

    // ---- compute side ----
    bool computing = false;         //!< one request at a worker
    bool curKeepAlive = true;       //!< keep-alive of the request in flight

    // ---- write side (corked burst + optional large body) ----
    std::string head;               //!< reused burst buffer: heads and
                                    //!< small bodies, write order
    std::string body;               //!< one large body, always last
    std::size_t headSent = 0;
    std::size_t bodySent = 0;
    bool writing = false;
    bool closeAfterWrite = false;

    /**
     * Spans of corked responses awaiting their bytes on the wire
     * (traced only).  Offsets index the burst stream (head bytes
     * then the large body); responses cork in answer order, so the
     * deque pops strictly from the front as headSent + bodySent
     * advances.
     */
    struct PendingWrite
    {
        RequestSpan span;
        std::size_t startOffset = 0;
        std::size_t endOffset = 0;
    };
    std::deque<PendingWrite> writeQueue;

    // ---- deferred protocol error (pipelining keeps order) ----
    int pendingErrorStatus = 0;
    std::string pendingErrorMessage;

    // ---- clocks (ms, steady) ----
    std::uint64_t idleSinceMs = 0;
    std::uint64_t firstByteMs = 0;  //!< first byte of an incomplete request
    bool headDone = false;          //!< that request's head is complete
    std::uint64_t writeStartMs = 0;

    bool busy() const { return computing || writing; }
};

HttpServer::HttpServer(ServeOptions options, HttpHandler handler)
    : options_(options), handler_(std::move(handler))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queueDepth == 0)
        options_.queueDepth = 1;
    if (options_.maxPipeline == 0)
        options_.maxPipeline = 1;
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    if (running_.load())
        return;

    listenFd_ = socket(AF_INET,
                       SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (listenFd_ < 0)
        throw ServeError(0, std::string("socket: ") +
                                std::strerror(errno));
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(options_.port);
    if (bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
             sizeof(addr)) < 0) {
        const std::string what = std::string("bind port ") +
            std::to_string(options_.port) + ": " +
            std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw ServeError(0, what);
    }
    if (listen(listenFd_, 256) < 0) {
        const std::string what =
            std::string("listen: ") + std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw ServeError(0, what);
    }

    // Resolve the actual port (meaningful when options_.port == 0).
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd_,
                    reinterpret_cast<struct sockaddr *>(&addr),
                    &len) == 0)
        boundPort_ = ntohs(addr.sin_port);

    epollFd_ = epoll_create1(EPOLL_CLOEXEC);
    wakeFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epollFd_ < 0 || wakeFd_ < 0) {
        const std::string what = std::string("epoll/eventfd: ") +
            std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        if (epollFd_ >= 0)
            close(epollFd_);
        epollFd_ = -1;
        if (wakeFd_ >= 0)
            close(wakeFd_);
        wakeFd_ = -1;
        throw ServeError(0, what);
    }
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    listenArmed_ = true;
    ev.data.fd = wakeFd_;
    epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    stopping_.store(false);
    running_.store(true);
    reactorThread_ = std::thread(&HttpServer::reactorLoop, this);
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers_.reserve(options_.workers);
        // Worker ids are 1-based: trace track 0 is the reactor.
        for (unsigned i = 0; i < options_.workers; ++i)
            workers_.emplace_back(
                [this, id = i + 1] { workerLoop(id); });
    }
}

void
HttpServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    // Wake the reactor so it begins the drain immediately.
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wakeFd_, &one, sizeof(one));
    if (reactorThread_.joinable())
        reactorThread_.join();
    // Workers drain the task queue, then observe stopping_ and exit.
    // Join in swap-batches: a dying worker may still be appending
    // its replacement to workers_, so keep draining until the vector
    // stays empty (respawns stop once stopping_ is observed).
    taskCv_.notify_all();
    for (;;) {
        std::vector<std::thread> batch;
        {
            std::lock_guard<std::mutex> lock(workersMutex_);
            batch.swap(workers_);
        }
        if (batch.empty())
            break;
        taskCv_.notify_all();
        for (std::thread &w : batch)
            if (w.joinable())
                w.join();
    }
    // The reactor closed every connection (and usually the listener)
    // during the drain; release whatever remains.
    for (std::unique_ptr<Conn> &conn : conns_)
        if (conn != nullptr)
            close(conn->fd);
    conns_.clear();
    if (listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
    if (epollFd_ >= 0) {
        close(epollFd_);
        epollFd_ = -1;
    }
    if (wakeFd_ >= 0) {
        close(wakeFd_);
        wakeFd_ = -1;
    }
    {
        std::lock_guard<std::mutex> lock(taskMutex_);
        tasks_.clear();
    }
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.clear();
    }
    running_.store(false);
}

ServerStats
HttpServer::stats() const
{
    ServerStats out;
    out.accepted = stats_.accepted.load(std::memory_order_relaxed);
    out.rejected = stats_.rejected.load(std::memory_order_relaxed);
    out.requests = stats_.requests.load(std::memory_order_relaxed);
    out.pipelined = stats_.pipelined.load(std::memory_order_relaxed);
    out.fastpath = stats_.fastpath.load(std::memory_order_relaxed);
    out.queueDepth = stats_.queued.load(std::memory_order_relaxed);
    out.inFlight = stats_.inFlight.load(std::memory_order_relaxed);
    out.connections =
        stats_.connections.load(std::memory_order_relaxed);
    out.workerDeaths =
        stats_.workerDeaths.load(std::memory_order_relaxed);
    return out;
}

unsigned
HttpServer::retryAfterSeconds() const
{
    const std::uint64_t backlog =
        stats_.queued.load(std::memory_order_relaxed) +
        stats_.inFlight.load(std::memory_order_relaxed);
    const std::uint64_t seconds =
        1 + backlog / std::max(1u, options_.workers);
    return unsigned(std::min<std::uint64_t>(seconds, 60));
}

// --------------------------------------------------------- reactor

void
HttpServer::reactorLoop()
{
    bool draining = false;
    lastClockScanMs_ = nowMs();
    struct epoll_event events[64];

    for (;;) {
        if (stopping_.load() && !draining) {
            beginDrain();
            draining = true;
        }
        if (draining) {
            // Exit once every connection has flushed and closed.
            bool anyConn = false;
            for (const std::unique_ptr<Conn> &conn : conns_)
                if (conn != nullptr) {
                    anyConn = true;
                    break;
                }
            if (!anyConn)
                return;
        }

        const int ready =
            epoll_wait(epollFd_, events, 64, int(kClockScanMs));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;     // epoll fd gone: shutting down
        }
        for (int i = 0; i < ready; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd_) {
                std::uint64_t drainCount = 0;
                while (read(wakeFd_, &drainCount,
                            sizeof(drainCount)) > 0) {
                }
                continue;   // completions applied below
            }
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            Conn *conn = std::size_t(fd) < conns_.size()
                             ? conns_[std::size_t(fd)].get()
                             : nullptr;
            if (conn == nullptr)
                continue;   // closed earlier this same batch
            if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                // Peer reset.  A half-closed peer that still reads
                // is EPOLLIN/recv==0, not HUP, so closing here is
                // safe.
                closeConn(*conn);
                continue;
            }
            if (events[i].events & EPOLLIN)
                connReadable(*conn);
            conn = std::size_t(fd) < conns_.size()
                       ? conns_[std::size_t(fd)].get()
                       : nullptr;
            if (conn != nullptr && (events[i].events & EPOLLOUT))
                connWritable(*conn);
        }

        applyCompletions();

        const std::uint64_t now = nowMs();
        if (now - lastClockScanMs_ >= kClockScanMs) {
            lastClockScanMs_ = now;
            scanClocks();
        }
    }
}

void
HttpServer::acceptReady()
{
    for (;;) {
        const int fd = accept4(listenFd_, nullptr, nullptr,
                               SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE) {
                // Out of fds: mute the listener briefly instead of
                // spinning on a level-triggered event we cannot
                // satisfy.  scanClocks() re-arms it.
                epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_,
                          nullptr);
                listenArmed_ = false;
            }
            return;     // EAGAIN and friends: drained the backlog
        }
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        if (std::size_t(fd) >= conns_.size())
            conns_.resize(std::size_t(fd) + 1);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->gen = nextGen_++;
        conn->events = EPOLLIN;
        conn->idleSinceMs = nowMs();
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
        conns_[std::size_t(fd)] = std::move(conn);
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        stats_.connections.fetch_add(1, std::memory_order_relaxed);
    }
}

void
HttpServer::wantWrite(Conn &conn, bool enable)
{
    const std::uint32_t events =
        (conn.events & ~std::uint32_t(EPOLLOUT)) |
        (enable ? std::uint32_t(EPOLLOUT) : 0u);
    if (events == conn.events)
        return;
    conn.events = events;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = conn.fd;
    epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
HttpServer::connReadable(Conn &conn)
{
    // Backpressure: a client that pipelines past maxPipeline is not
    // read further until the backlog drains — its bytes stay in the
    // kernel buffer and TCP flow control pushes back.
    if (conn.parsed.size() >= options_.maxPipeline)
        return;

    char chunk[16384];
    for (;;) {
        std::size_t cap = sizeof(chunk);
        if (faultAt("http.read")) {
            if (faultMode("http.read") == "fail") {
                closeConn(conn);
                return;
            }
            cap = 1;    // "short" (and the default mode)
        }
        const ssize_t got = recv(conn.fd, chunk, cap, 0);
        if (got > 0) {
            if (conn.in.empty() && conn.inOff == 0 &&
                conn.firstByteMs == 0)
                conn.firstByteMs = nowMs();
            // One receive stamp per buffered stretch: every request
            // parsed out of these bytes anchors its span here.
            if (tracer_ != nullptr && conn.recvNs == 0)
                conn.recvNs = monoNanos();
            conn.in.append(chunk, std::size_t(got));
            if (conn.in.size() - conn.inOff >
                options_.maxBodyBytes + (32u << 10))
                break;  // one request can never need more; parse now
            continue;
        }
        if (got == 0) {
            conn.peerEof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(conn);
        return;
    }

    const int fd = conn.fd;
    const std::uint64_t gen = conn.gen;
    parseAndDispatch(conn);     // may close (and free) the connection

    // EOF: whatever could be answered is in flight; anything less
    // than a full request can never complete now.
    Conn *live = liveConn(fd, gen);
    if (live != nullptr && live->peerEof && !live->busy() &&
        live->parsed.empty() && live->pendingErrorStatus == 0)
        closeConn(*live);
}

void
HttpServer::parseAndDispatch(Conn &conn)
{
    // Parse EVERY complete request already buffered (bounded by
    // maxPipeline) — this loop is the pipelining fast path: a batch
    // of N requests arriving in one TCP segment costs one read
    // syscall and N handler dispatches.
    std::uint64_t parseNs = 0;  //!< shared parse stamp (traced only)
    while (conn.parsed.size() < options_.maxPipeline &&
           conn.pendingErrorStatus == 0) {
        if (conn.inOff >= conn.in.size())
            break;
        HttpRequest request;
        std::size_t consumed = 0;
        std::string error;
        bool headDone = false;
        const ExtractStatus st = extractRequest(
            conn.in, conn.inOff, options_.maxBodyBytes, &request,
            &consumed, &error, &headDone);
        if (st == ExtractStatus::kOk) {
            conn.inOff += consumed;
            conn.firstByteMs = 0;
            conn.headDone = false;
            stats_.requests.fetch_add(1, std::memory_order_relaxed);
            const bool pipelined =
                conn.busy() || !conn.parsed.empty();
            if (pipelined)
                stats_.pipelined.fetch_add(
                    1, std::memory_order_relaxed);
            PendingReq pending;
            if (tracer_ != nullptr) {
                if (parseNs == 0)
                    parseNs = monoNanos();
                pending.span.ts[kStampRecv] =
                    conn.recvNs != 0 ? conn.recvNs : parseNs;
                pending.span.ts[kStampParsed] = parseNs;
                pending.span.fd = conn.fd;
                pending.span.gen = std::uint32_t(conn.gen);
                pending.span.setEndpoint(
                    endpointForPath(request.path));
                if (pipelined)
                    pending.span.flags |=
                        RequestSpan::kFlagPipelined;
            }
            pending.request = std::move(request);
            conn.parsed.push_back(std::move(pending));
            continue;
        }
        if (st == ExtractStatus::kNeedMore) {
            if (conn.firstByteMs == 0)
                conn.firstByteMs = nowMs();
            conn.headDone = headDone;
            break;
        }
        // Protocol failure: the stream is desynchronized beyond this
        // point.  Answer in order — queue the error response behind
        // any already-parsed requests — then close.
        if (st == ExtractStatus::kMalformed) {
            conn.pendingErrorStatus = 400;
            conn.pendingErrorMessage =
                error.empty() ? "malformed request" : error;
        } else {    // kTooLarge
            conn.pendingErrorStatus = 413;
            conn.pendingErrorMessage = "request body exceeds " +
                std::to_string(options_.maxBodyBytes) + " bytes";
        }
        conn.inOff = conn.in.size();    // stop reading this stream
        break;
    }

    // Compact: drop the consumed prefix without shifting bytes on
    // every request (amortized, keeps capacity for reuse).
    if (conn.inOff >= conn.in.size()) {
        conn.in.clear();
        conn.inOff = 0;
        conn.recvNs = 0;    // next byte starts a fresh receive stamp
    } else if (conn.inOff > (64u << 10)) {
        conn.in.erase(0, conn.inOff);
        conn.inOff = 0;
    }

    // Dispatch strictly serially per connection: responses come back
    // in request order by construction.  Fast-path and admission
    // answers cork into the write buffer and keep the loop going, so
    // a burst of ready answers costs ONE flush below; the loop stops
    // at the first request that needs a worker (compute serializes),
    // at a pending large body (write order: a big body is always the
    // last segment of a burst), or at a response that closes.
    while (!conn.computing && conn.body.empty() &&
           !conn.closeAfterWrite && !conn.parsed.empty()) {
        PendingReq pending = std::move(conn.parsed.front());
        conn.parsed.pop_front();
        dispatch(conn, std::move(pending));
    }
    if (!conn.computing && conn.body.empty() &&
        !conn.closeAfterWrite && conn.parsed.empty() &&
        conn.pendingErrorStatus != 0) {
        const int status = conn.pendingErrorStatus;
        conn.pendingErrorStatus = 0;
        conn.closeAfterWrite = true;
        beginResponse(
            conn, jsonErrorResponse(status, conn.pendingErrorMessage),
            false);
    }
    if (conn.writing) {
        // One gathered writev for the whole corked burst.  May close
        // the connection (write error, closeAfterWrite) — `conn` must
        // not be touched afterwards.
        flushWrites(conn);
        return;
    }
    if (!conn.busy() && conn.parsed.empty() &&
        conn.pendingErrorStatus == 0 && conn.in.empty())
        conn.idleSinceMs = nowMs();
}

void
HttpServer::dispatch(Conn &conn, PendingReq pending)
{
    HttpRequest &request = pending.request;
    conn.curKeepAlive = request.keepAlive();
    if (tracer_ != nullptr)
        pending.span.ts[kStampDispatch] = monoNanos();

    // Per-request deadline: the default, lowered (never raised) by
    // an X-Deadline-Ms header.
    unsigned budgetMs = options_.deadlineMs;
    const std::string deadlineHeader =
        request.header("x-deadline-ms");
    if (!deadlineHeader.empty()) {
        char *end = nullptr;
        const unsigned long parsed =
            std::strtoul(deadlineHeader.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && parsed < budgetMs)
            budgetMs = unsigned(parsed);
    }

    // Reactor fast path: no-compute answers (cache hits, liveness)
    // skip the worker pool entirely.  Tried before admission — a
    // compute backlog is no reason to turn away a request that never
    // needed a worker.  An expired deadline (budget 0) still goes to
    // a worker so the 503 has one owner.
    if (fastHandler_ && budgetMs > 0) {
        HttpResponse fast;
        if (tracer_ != nullptr) {
            spanAnnotations() = SpanAnnotations{};
            pending.span.ts[kStampStart] =
                pending.span.ts[kStampDispatch];
        }
        if (fastHandler_(request, &fast)) {
            stats_.fastpath.fetch_add(1, std::memory_order_relaxed);
            if (tracer_ != nullptr) {
                pending.span.ts[kStampDone] = monoNanos();
                pending.span.flags |= RequestSpan::kFlagFastpath;
                const SpanAnnotations &notes = spanAnnotations();
                if (notes.cacheHit)
                    pending.span.flags |= RequestSpan::kFlagCacheHit;
                if (notes.audited)
                    pending.span.flags |= RequestSpan::kFlagAudited;
                pending.span.cacheNs = notes.cacheNs;
                pending.span.worker = 0;
            }
            beginResponse(conn, fast, conn.curKeepAlive,
                          tracer_ != nullptr ? &pending.span
                                             : nullptr);
            return;
        }
    }

    // Admission control at the dispatch edge: a full compute queue
    // answers 429 from the reactor within one round trip, and the
    // connection survives to honor Retry-After.
    std::size_t backlog;
    {
        std::lock_guard<std::mutex> lock(taskMutex_);
        backlog = tasks_.size();
    }
    if (backlog >= options_.queueDepth) {
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
        HttpResponse busy =
            jsonErrorResponse(429, "server overloaded, retry");
        busy.headers["Retry-After"] =
            std::to_string(retryAfterSeconds());
        beginResponse(conn, std::move(busy), conn.curKeepAlive,
                      tracer_ != nullptr ? &pending.span : nullptr);
        return;
    }

    conn.computing = true;
    Task task;
    task.fd = conn.fd;
    task.gen = conn.gen;
    task.request = std::move(pending.request);
    task.span = pending.span;
    task.budgetMs = budgetMs;
    {
        std::lock_guard<std::mutex> lock(taskMutex_);
        tasks_.push_back(std::move(task));
    }
    stats_.queued.fetch_add(1, std::memory_order_relaxed);
    taskCv_.notify_one();
}

void
HttpServer::beginResponse(Conn &conn, const HttpResponse &response,
                          bool keepAlive, RequestSpan *span)
{
    // Cork, don't send: the response is serialized BEHIND any not-yet
    // flushed responses of the same pipelined burst, and the caller
    // flushes the whole burst in one gathered writev when no more
    // answers are ready.  Precondition: conn.body is empty — every
    // dispatch gate stops once a large body is pending, so a burst is
    // [small]*[large?] and write order always equals request order.
    const bool keep =
        keepAlive && !conn.closeAfterWrite && !stopping_.load();
    if (!keep)
        conn.closeAfterWrite = true;
    if (!conn.writing) {
        conn.head.clear();
        conn.headSent = 0;
        conn.writing = true;
        conn.writeStartMs = nowMs();
    }
    // Burst offsets for write attribution: a span's response spans
    // [startOffset, endOffset) of the burst's byte stream (head +
    // corked inline bodies; a large body is always last in a burst).
    const std::size_t startOffset = conn.head.size() + conn.body.size();
    response.serializeHead(keep, &conn.head);
    // The body is moved, not copied: beginResponse's const ref binds
    // to a response the reactor owns, so stealing is safe.
    std::string &body = const_cast<HttpResponse &>(response).body;
    if (body.size() <= kInlineBodyBytes) {
        conn.head += body;
    } else {
        conn.body = std::move(body);
        conn.bodySent = 0;
    }
    if (span != nullptr) {
        span->status = std::uint16_t(response.status);
        span->ts[kStampSerialized] = monoNanos();
        conn.writeQueue.push_back(Conn::PendingWrite{
            *span, startOffset,
            conn.head.size() + conn.body.size() });
    }
}

void
HttpServer::flushWrites(Conn &conn)
{
    while (conn.writing) {
        struct iovec iov[2];
        int iovCount = 0;
        std::size_t headLeft = conn.head.size() - conn.headSent;
        std::size_t bodyLeft = conn.body.size() - conn.bodySent;
        if (headLeft > 0) {
            iov[iovCount].iov_base = &conn.head[conn.headSent];
            iov[iovCount].iov_len = headLeft;
            ++iovCount;
        }
        if (bodyLeft > 0) {
            iov[iovCount].iov_base = &conn.body[conn.bodySent];
            iov[iovCount].iov_len = bodyLeft;
            ++iovCount;
        }
        if (iovCount == 0) {
            // Burst fully written: the connection goes back to
            // reading (or closes).  clear() keeps the buffers'
            // capacity for the next burst.
            conn.writing = false;
            conn.head.clear();
            conn.headSent = 0;
            conn.body.clear();
            conn.bodySent = 0;
            wantWrite(conn, false);
            if (conn.closeAfterWrite) {
                closeConn(conn);
                return;
            }
            // Pipelined successor requests may already be parsed —
            // keep the connection moving without another epoll trip.
            const int fd = conn.fd;
            const std::uint64_t gen = conn.gen;
            parseAndDispatch(conn);     // may close (and free) `conn`
            Conn *live = liveConn(fd, gen);
            if (live != nullptr && live->peerEof && !live->busy() &&
                live->parsed.empty() &&
                live->pendingErrorStatus == 0)
                closeConn(*live);
            return;
        }

        if (faultAt("http.write")) {
            if (faultMode("http.write") == "fail") {
                closeConn(conn);
                return;
            }
            // "short": deliver one byte per writev, exercising every
            // partial-write resumption path.
            iov[0].iov_len = 1;
            iovCount = 1;
        }
        const ssize_t n = writev(conn.fd, iov, iovCount);
        if (n >= 0) {
            std::size_t advanced = std::size_t(n);
            const std::size_t headTake =
                std::min(advanced, headLeft);
            conn.headSent += headTake;
            advanced -= headTake;
            conn.bodySent += advanced;
            if (tracer_ != nullptr && !conn.writeQueue.empty())
                noteWriteProgress(conn);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Peer not draining: park the write on EPOLLOUT under
            // the write-budget clock instead of blocking anything.
            wantWrite(conn, true);
            return;
        }
        closeConn(conn);    // EPIPE/ECONNRESET and friends
        return;
    }
}

void
HttpServer::noteWriteProgress(Conn &conn)
{
    // Attribute the bytes just written to the burst's pending spans:
    // `sent` is the cumulative burst position, each span owns
    // [startOffset, endOffset) of it.  One clock read covers every
    // span this writev touched.
    const std::uint64_t now = monoNanos();
    const std::size_t sent = conn.headSent + conn.bodySent;
    while (!conn.writeQueue.empty()) {
        Conn::PendingWrite &front = conn.writeQueue.front();
        if (front.span.ts[kStampFirstWrite] == 0 &&
            front.startOffset < sent)
            front.span.ts[kStampFirstWrite] = now;
        if (front.endOffset > sent)
            break;
        front.span.ts[kStampLastWrite] = now;
        publishSpan(front.span);
        conn.writeQueue.pop_front();
    }
}

void
HttpServer::publishSpan(RequestSpan &span)
{
    if (tracer_->publish(span))
        std::fprintf(stderr, "%s\n", formatSlowLine(span).c_str());
}

void
HttpServer::connWritable(Conn &conn)
{
    if (conn.writing)
        flushWrites(conn);
    else
        wantWrite(conn, false);
}

void
HttpServer::applyCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        batch.swap(completions_);
    }
    for (Completion &done : batch) {
        Conn *conn = std::size_t(done.fd) < conns_.size()
                         ? conns_[std::size_t(done.fd)].get()
                         : nullptr;
        if (conn == nullptr || conn->gen != done.gen)
            continue;   // connection died while computing
        conn->computing = false;
        if (done.killConn) {
            closeConn(*conn);
            continue;
        }
        beginResponse(*conn, done.response, conn->curKeepAlive,
                      tracer_ != nullptr ? &done.span : nullptr);
        // Pipelined successors may be ready (and may answer inline);
        // parseAndDispatch corks them behind this response and
        // flushes the burst.  May close the connection.
        parseAndDispatch(*conn);
    }
}

void
HttpServer::scanClocks()
{
    const std::uint64_t now = nowMs();

    if (!listenArmed_ && listenFd_ >= 0 && !stopping_.load()) {
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.fd = listenFd_;
        if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) == 0)
            listenArmed_ = true;
    }

    for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn *conn = conns_[i].get();
        if (conn == nullptr)
            continue;
        if (conn->writing) {
            if (options_.writeTimeoutMs != 0 &&
                now - conn->writeStartMs >= options_.writeTimeoutMs)
                closeConn(*conn);   // slow reader: budget exhausted
            continue;
        }
        if (conn->computing)
            continue;   // the worker owns this request's clock
        if (conn->firstByteMs != 0) {
            // Mid-request: the header clock (anti-slowloris) binds
            // until the head terminates, then the request budget
            // bounds the body read.
            std::uint64_t budget = options_.deadlineMs;
            if (!conn->headDone && options_.headerTimeoutMs != 0)
                budget = std::min<std::uint64_t>(
                    budget, options_.headerTimeoutMs);
            if (now - conn->firstByteMs >= budget) {
                conn->closeAfterWrite = true;
                beginResponse(
                    *conn,
                    jsonErrorResponse(408, "request read timed out"),
                    false);
                flushWrites(*conn);     // may close the connection
            }
            continue;
        }
        if (!conn->parsed.empty() || conn->pendingErrorStatus != 0)
            continue;   // waiting on its turn, not idle
        if (now - conn->idleSinceMs >= options_.idleTimeoutMs)
            closeConn(*conn);   // parked keep-alive: quiet goodbye
    }
}

void
HttpServer::beginDrain()
{
    // Stop accepting.
    if (listenFd_ >= 0) {
        if (listenArmed_)
            epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
        listenArmed_ = false;
        close(listenFd_);
        listenFd_ = -1;
    }
    // Finish what is in flight, drop what is merely parked: an idle
    // keep-alive connection or an undispatched pipelined request was
    // never acknowledged, so closing is honest.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn *conn = conns_[i].get();
        if (conn == nullptr)
            continue;
        conn->parsed.clear();
        conn->pendingErrorStatus = 0;
        if (conn->busy())
            conn->closeAfterWrite = true;
        else
            closeConn(*conn);
    }
}

void
HttpServer::closeConn(Conn &conn)
{
    const int fd = conn.fd;
    epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    stats_.connections.fetch_sub(1, std::memory_order_relaxed);
    if (tracer_ != nullptr && !conn.writeQueue.empty()) {
        // Responses that never fully reached the socket still get a
        // span — flagged aborted so the flight recorder shows where
        // the connection died.
        for (Conn::PendingWrite &pending : conn.writeQueue) {
            pending.span.flags |= RequestSpan::kFlagAborted;
            publishSpan(pending.span);
        }
        conn.writeQueue.clear();
    }
    conns_[std::size_t(fd)].reset();    // `conn` is dead past here
}

HttpServer::Conn *
HttpServer::liveConn(int fd, std::uint64_t gen)
{
    if (fd < 0 || std::size_t(fd) >= conns_.size())
        return nullptr;
    Conn *conn = conns_[std::size_t(fd)].get();
    if (conn == nullptr || conn->gen != gen)
        return nullptr;
    return conn;
}

// --------------------------------------------------------- workers

void
HttpServer::workerLoop(unsigned workerId)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(taskMutex_);
            taskCv_.wait(lock, [&] {
                return stopping_.load() || !tasks_.empty();
            });
            if (tasks_.empty()) {
                if (stopping_.load())
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        stats_.queued.fetch_sub(1, std::memory_order_relaxed);
        stats_.inFlight.fetch_add(1, std::memory_order_relaxed);

        if (tracer_ != nullptr) {
            task.span.worker = std::uint8_t(workerId);
            task.span.ts[kStampStart] = monoNanos();
            spanAnnotations() = SpanAnnotations{};
        }

        Completion done;
        done.fd = task.fd;
        done.gen = task.gen;
        try {
            if (faultAt("worker.die"))
                throw WorkerDeathFault{};
            if (faultAt("worker.overrun")) {
                // Injected deadline overrun: burn (a capped slice
                // of) the budget, then answer as an expired request
                // would.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        std::min(task.budgetMs, 200u)));
                done.response = jsonErrorResponse(
                    503, "deadline exceeded (injected overrun)");
            } else if (task.budgetMs == 0) {
                done.response = jsonErrorResponse(
                    503, "deadline expired before processing");
            } else {
                try {
                    done.response =
                        handler_(task.request, task.budgetMs);
                } catch (const ServeError &e) {
                    done.response = jsonErrorResponse(
                        e.httpStatus() > 0 ? e.httpStatus() : 500,
                        e.what());
                } catch (const std::exception &e) {
                    done.response = jsonErrorResponse(500, e.what());
                }
            }
        } catch (const WorkerDeathFault &) {
            // Injected worker death: drop the connection, count it,
            // and spawn a replacement so the pool self-heals at its
            // configured size.  This thread then exits; stop() joins
            // its (finished) handle from the workers_ vector.
            stats_.inFlight.fetch_sub(1, std::memory_order_relaxed);
            stats_.workerDeaths.fetch_add(1,
                                          std::memory_order_relaxed);
            done.killConn = true;
            {
                std::lock_guard<std::mutex> lock(completionMutex_);
                completions_.push_back(std::move(done));
            }
            const std::uint64_t one = 1;
            [[maybe_unused]] ssize_t n =
                write(wakeFd_, &one, sizeof(one));
            {
                std::lock_guard<std::mutex> lock(workersMutex_);
                if (!stopping_.load())
                    workers_.emplace_back([this, workerId] {
                        workerLoop(workerId);
                    });
            }
            return;
        }
        if (tracer_ != nullptr) {
            task.span.ts[kStampDone] = monoNanos();
            const SpanAnnotations &notes = spanAnnotations();
            if (notes.cacheHit)
                task.span.flags |= RequestSpan::kFlagCacheHit;
            if (notes.audited)
                task.span.flags |= RequestSpan::kFlagAudited;
            task.span.cacheNs = notes.cacheNs;
            done.span = task.span;
        }
        stats_.inFlight.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(completionMutex_);
            completions_.push_back(std::move(done));
        }
        const std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            write(wakeFd_, &one, sizeof(one));
    }
}

} // namespace mfusim
