/**
 * @file
 * Deterministic simulation result cache.
 *
 * Every mfusim timing run is a pure function of (machine
 * organization, machine configuration, trace, audit/steady-state
 * mode) — the simulators share no hidden state and use no
 * randomness.  That makes results perfectly memoizable: the serve
 * daemon's common case is a user iterating on one parameter of a
 * grid whose other cells are unchanged, and a batch `rate all` or
 * table bench re-times the same (machine, loop, config) cell under
 * several reporting views.  The ResultCache turns every repeat into
 * a hash lookup.
 *
 * Keys compose the simulator's cacheKey() — a canonical serialization
 * of every organization knob (see Simulator::cacheKey()) — with the
 * trace identity, the MachineConfig name, the audit and steady-state
 * modes, and a code-version string (the git SHA for daemon builds),
 * so a key can never alias two runs that could differ in any output
 * bit.  Values are complete SimResults, so hits reproduce
 * instructions, cycles, stall breakdowns and steady-state telemetry
 * bit-identically.
 *
 * Thread safety: the map is sharded 16 ways by key hash — each shard
 * has its own mutex and hit/miss counters (cache-line separated), so
 * concurrent cache-hit requests on different keys never contend on a
 * single lock even at full worker-pool parallelism.  getOrCompute()
 * drops the shard lock around the compute so concurrent misses
 * simulate in parallel.  Two racing misses on the same key both
 * simulate — results are identical by construction, the second
 * store is a no-op.
 *
 * Persistence: attachPersist() puts a crash-safe on-disk journal
 * (persist_cache.hh) behind the map.  Every newly inserted entry is
 * appended to the journal *after* the shard mutex is released (disk
 * latency never blocks lookups), and a restarted daemon warm-loads
 * the journal so it answers warm and bit-identical from its first
 * request.  Journal I/O failures degrade to in-memory behavior with
 * counters raised — persistence is an accelerator, never a
 * correctness dependency.
 */

#ifndef MFUSIM_SERVE_RESULT_CACHE_HH
#define MFUSIM_SERVE_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mfusim/core/machine_config.hh"
#include "mfusim/obs/metrics.hh"
#include "mfusim/serve/persist_cache.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Point-in-time cache statistics (aggregated across shards). */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
};

/** The process-wide memo of completed simulation cells. */
class ResultCache
{
  public:
    /** The instance shared by serve workers and sweep cells. */
    static ResultCache &instance();

    ResultCache() = default;
    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Return the cached result for the composed key, or run
     * @p compute, store its result, and return it.  @p machineKey
     * must be a Simulator::cacheKey() (callers skip the cache when
     * that is empty); @p traceKey identifies the trace (canonical
     * loops use "LL<spec>", replayed files their trace name).
     * Counts one hit or one miss.  If @p compute throws, nothing is
     * stored and the exception propagates (a failed cell is
     * recomputed — and re-diagnosed — on every request).
     *
     * @param wasHit optional out-param: true iff served from cache.
     */
    SimResult getOrCompute(const std::string &machineKey,
                           const std::string &traceKey,
                           const MachineConfig &cfg, bool audited,
                           const std::function<SimResult()> &compute,
                           bool *wasHit = nullptr);

    /** Peek without computing; does not count a hit or miss. */
    bool lookup(const std::string &machineKey,
                const std::string &traceKey,
                const MachineConfig &cfg, bool audited,
                SimResult *out) const;

    /**
     * lookup() that counts one hit or one miss.  The batched sweep
     * kernel decouples the lookup from the store — one lockstep pass
     * computes many cells at once — so it cannot use getOrCompute()'s
     * single-cell compute callback.
     */
    bool probe(const std::string &machineKey,
               const std::string &traceKey, const MachineConfig &cfg,
               bool audited, SimResult *out);

    /**
     * lookup() that counts a hit when the cell is present and counts
     * NOTHING when it is not.  The serve reactor's fast path probes
     * with it: a hit is served (and counted) inline, while a miss
     * falls through to a worker whose getOrCompute() records the one
     * authoritative miss — probe() here would double-count it.
     */
    bool probeHit(const std::string &machineKey,
                  const std::string &traceKey,
                  const MachineConfig &cfg, bool audited,
                  SimResult *out);

    /**
     * Insert one completed cell (one batched simulate, many fills).
     * Counts neither a hit nor a miss; racing stores of the same key
     * keep the first value (identical by construction).
     */
    void store(const std::string &machineKey,
               const std::string &traceKey, const MachineConfig &cfg,
               bool audited, const SimResult &result);

    ResultCacheStats stats() const;

    /**
     * Export stats into @p metrics as the counters
     * "result_cache.hits" / "result_cache.misses" and the gauge
     * "result_cache.entries" (cumulative process-lifetime values, so
     * a Prometheus scrape sees proper monotone counters).
     */
    void appendMetrics(MetricsRegistry &metrics) const;

    /**
     * The code-version component of every key.  Defaults to
     * "in-process" (an in-memory cache cannot span two code
     * versions); the CLI stamps the build's git SHA so exported
     * diagnostics name the producing build.
     */
    void setVersion(const std::string &version);

    /**
     * Attach @p persist, open its journal under the current version
     * string, and warm-load every recovered entry.  Call before
     * serving starts (attachment itself is not synchronized against
     * concurrent stores).  If the warm-load aborts (allocation
     * failure — see the persist.load fault point), the cache starts
     * cold with loadFailed set; the journal stays attached and
     * usable for appends either way.
     */
    PersistLoadStats
    attachPersist(std::unique_ptr<PersistentCache> persist);

    /** Detach (and close) the journal, if any (tests, shutdown). */
    void detachPersist();

    /** fsync pending journal appends (drain path); no-op unattached. */
    void flushPersist();

    /** The attached journal, or nullptr. */
    const PersistentCache *persist() const { return persist_.get(); }

    /** Stats of the last attachPersist() warm-load. */
    PersistLoadStats persistLoadStats() const;

    /** Drop all entries and zero the stats (tests). */
    void clear();

    /** Number of lock shards (power of two; indexed by key hash). */
    static constexpr std::size_t kShardCount = 16;

  private:
    /**
     * One lock shard.  Cache-line aligned so two shards' mutexes and
     * counters never false-share; the hit path of a request touches
     * exactly one shard.
     */
    struct alignas(64) Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, SimResult> entries;
        // Atomics, not mutex-guarded fields: getOrCompute() counts a
        // miss after dropping the shard lock.
        mutable std::atomic<std::uint64_t> hits{ 0 };
        mutable std::atomic<std::uint64_t> misses{ 0 };
    };

    std::string composeKey(const std::string &machineKey,
                           const std::string &traceKey,
                           const MachineConfig &cfg,
                           bool audited) const;

    Shard &shardFor(const std::string &key) const;

    /** Insert under the shard mutex; journal the entry if new. */
    void insertAndPersist(const std::string &key,
                          const SimResult &result);

    mutable Shard shards_[kShardCount];
    /** Guards version_ and persistLoad_ (never on the hit path). */
    mutable std::mutex metaMutex_;
    std::string version_ = "in-process";
    std::unique_ptr<PersistentCache> persist_;
    PersistLoadStats persistLoad_;
};

} // namespace mfusim

#endif // MFUSIM_SERVE_RESULT_CACHE_HH
