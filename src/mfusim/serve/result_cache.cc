/**
 * @file
 * ResultCache implementation (16-way lock-sharded).
 */

#include "mfusim/serve/result_cache.hh"

#include <functional>

#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key) const
{
    // kShardCount is a power of two; std::hash of the composed key
    // (which embeds the machine key, trace and config name) spreads
    // a sweep's key population evenly across shards.
    return shards_[std::hash<std::string>{}(key) &
                   (kShardCount - 1)];
}

std::string
ResultCache::composeKey(const std::string &machineKey,
                        const std::string &traceKey,
                        const MachineConfig &cfg, bool audited) const
{
    // '\n' never occurs in any component, so the composition is
    // injective.  The steady-state mode cannot change cycles or
    // stalls (bit-identity is tested), but it does change the
    // steadyOpsSkipped diagnostic, so it is part of the key to keep
    // cached diagnostics honest.
    //
    // version_ is read unlocked: setVersion() happens once, before
    // serving starts (same contract as attachPersist()).
    return machineKey + "\n" + traceKey + "\n" + cfg.name() + "\n" +
        (audited ? "audited" : "plain") + "\n" +
        (steadyStateEnabled() ? "steady" : "exact") + "\n" + version_;
}

SimResult
ResultCache::getOrCompute(const std::string &machineKey,
                          const std::string &traceKey,
                          const MachineConfig &cfg, bool audited,
                          const std::function<SimResult()> &compute,
                          bool *wasHit)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            shard.hits.fetch_add(1, std::memory_order_relaxed);
            if (wasHit)
                *wasHit = true;
            return it->second;
        }
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (wasHit)
        *wasHit = false;
    const SimResult result = compute();
    insertAndPersist(key, result);
    return result;
}

bool
ResultCache::lookup(const std::string &machineKey,
                    const std::string &traceKey,
                    const MachineConfig &cfg, bool audited,
                    SimResult *out) const
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return false;
    if (out)
        *out = it->second;
    return true;
}

bool
ResultCache::probe(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   SimResult *out)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            shard.hits.fetch_add(1, std::memory_order_relaxed);
            if (out)
                *out = it->second;
            return true;
        }
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
ResultCache::probeHit(const std::string &machineKey,
                      const std::string &traceKey,
                      const MachineConfig &cfg, bool audited,
                      SimResult *out)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return false;
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    if (out)
        *out = it->second;
    return true;
}

void
ResultCache::store(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   const SimResult &result)
{
    insertAndPersist(composeKey(machineKey, traceKey, cfg, audited),
                     result);
}

void
ResultCache::insertAndPersist(const std::string &key,
                              const SimResult &result)
{
    bool inserted = false;
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        inserted = shard.entries.emplace(key, result).second;
    }
    // Journal outside the shard mutex: disk latency (and the
    // periodic fsync) must never block concurrent lookups.  Lock
    // order is journal -> shard (the compaction snapshot takes shard
    // mutexes inside the journal mutex), so no shard mutex is ever
    // held across a journal call.  The journal keeps insertion order
    // because this append happens post-insert on the inserting
    // thread, exactly as in the unsharded cache.
    if (inserted && persist_ != nullptr) {
        persist_->append(key, result);
        persist_->maybeCompact([this] {
            std::vector<std::pair<std::string, SimResult>> live;
            for (Shard &shard : shards_) {
                std::lock_guard<std::mutex> lock(shard.mutex);
                for (const auto &entry : shard.entries)
                    live.push_back(entry);
            }
            return live;
        });
    }
}

PersistLoadStats
ResultCache::attachPersist(std::unique_ptr<PersistentCache> persist)
{
    std::string version;
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        version = version_;
    }
    PersistLoadStats load;
    std::unordered_map<std::string, SimResult> warm;
    try {
        load = persist->open(
            version, [&warm](std::string key, const SimResult &r) {
                warm.emplace(std::move(key), r);
            });
    } catch (const std::bad_alloc &) {
        // Warm-load starved: start cold, keep the journal attached.
        // Recovered-so-far entries are dropped wholesale — a partial
        // warm set is fine, but the simple invariant ("warm iff the
        // load succeeded") is easier to reason about in a crash
        // report.
        warm.clear();
        load = PersistLoadStats{};
        load.loadFailed = true;
    }
    for (auto &entry : warm) {
        Shard &shard = shardFor(entry.first);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.emplace(entry.first, entry.second);
    }
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        persistLoad_ = load;
    }
    persist_ = std::move(persist);
    return load;
}

void
ResultCache::detachPersist()
{
    persist_.reset();
    std::lock_guard<std::mutex> lock(metaMutex_);
    persistLoad_ = PersistLoadStats{};
}

void
ResultCache::flushPersist()
{
    if (persist_ != nullptr)
        persist_->flush();
}

PersistLoadStats
ResultCache::persistLoadStats() const
{
    std::lock_guard<std::mutex> lock(metaMutex_);
    return persistLoad_;
}

ResultCacheStats
ResultCache::stats() const
{
    // Per-shard counters aggregate here, so the exported Prometheus
    // names (and their meaning) are unchanged from the unsharded
    // cache.
    ResultCacheStats stats;
    for (const Shard &shard : shards_) {
        stats.hits += shard.hits.load(std::memory_order_relaxed);
        stats.misses += shard.misses.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(shard.mutex);
        stats.entries += shard.entries.size();
    }
    return stats;
}

void
ResultCache::appendMetrics(MetricsRegistry &metrics) const
{
    const ResultCacheStats s = stats();
    metrics.counter("result_cache.hits").add(s.hits);
    metrics.counter("result_cache.misses").add(s.misses);
    metrics.gauge("result_cache.entries").set(double(s.entries));
    if (persist_ == nullptr)
        return;
    const PersistLoadStats load = persistLoadStats();
    const PersistStats p = persist_->stats();
    metrics.counter("result_cache.persist.recovered")
        .add(load.recovered);
    metrics.counter("result_cache.persist.discarded")
        .add(load.discardedCorrupt + load.discardedVersion);
    metrics.counter("result_cache.persist.truncated_bytes")
        .add(load.truncatedBytes);
    metrics.counter("result_cache.persist.load_failures")
        .add(load.loadFailed ? 1 : 0);
    metrics.counter("result_cache.persist.appends").add(p.appends);
    metrics.counter("result_cache.persist.append_errors")
        .add(p.appendErrors);
    metrics.counter("result_cache.persist.compactions")
        .add(p.compactions);
    metrics.gauge("result_cache.persist.file_bytes")
        .set(double(p.fileBytes));
}

void
ResultCache::setVersion(const std::string &version)
{
    std::lock_guard<std::mutex> lock(metaMutex_);
    version_ = version;
}

void
ResultCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.clear();
        shard.hits.store(0, std::memory_order_relaxed);
        shard.misses.store(0, std::memory_order_relaxed);
    }
}

} // namespace mfusim
