/**
 * @file
 * ResultCache implementation.
 */

#include "mfusim/serve/result_cache.hh"

#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

std::string
ResultCache::composeKey(const std::string &machineKey,
                        const std::string &traceKey,
                        const MachineConfig &cfg, bool audited) const
{
    // '\n' never occurs in any component, so the composition is
    // injective.  The steady-state mode cannot change cycles or
    // stalls (bit-identity is tested), but it does change the
    // steadyOpsSkipped diagnostic, so it is part of the key to keep
    // cached diagnostics honest.
    return machineKey + "\n" + traceKey + "\n" + cfg.name() + "\n" +
        (audited ? "audited" : "plain") + "\n" +
        (steadyStateEnabled() ? "steady" : "exact") + "\n" + version_;
}

SimResult
ResultCache::getOrCompute(const std::string &machineKey,
                          const std::string &traceKey,
                          const MachineConfig &cfg, bool audited,
                          const std::function<SimResult()> &compute,
                          bool *wasHit)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (wasHit)
                *wasHit = true;
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (wasHit)
        *wasHit = false;
    const SimResult result = compute();
    insertAndPersist(key, result);
    return result;
}

bool
ResultCache::lookup(const std::string &machineKey,
                    const std::string &traceKey,
                    const MachineConfig &cfg, bool audited,
                    SimResult *out) const
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    if (out)
        *out = it->second;
    return true;
}

bool
ResultCache::probe(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   SimResult *out)
{
    if (lookup(machineKey, traceKey, cfg, audited, out)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ResultCache::store(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   const SimResult &result)
{
    insertAndPersist(composeKey(machineKey, traceKey, cfg, audited),
                     result);
}

void
ResultCache::insertAndPersist(const std::string &key,
                              const SimResult &result)
{
    bool inserted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inserted = entries_.emplace(key, result).second;
    }
    // Journal outside the cache mutex: disk latency (and the
    // periodic fsync) must never block concurrent lookups.  Lock
    // order is journal -> cache (the compaction snapshot takes the
    // cache mutex inside the journal mutex), so the cache mutex is
    // never held across a journal call.
    if (inserted && persist_ != nullptr) {
        persist_->append(key, result);
        persist_->maybeCompact([this] {
            std::vector<std::pair<std::string, SimResult>> live;
            std::lock_guard<std::mutex> lock(mutex_);
            live.reserve(entries_.size());
            for (const auto &entry : entries_)
                live.push_back(entry);
            return live;
        });
    }
}

PersistLoadStats
ResultCache::attachPersist(std::unique_ptr<PersistentCache> persist)
{
    std::string version;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        version = version_;
    }
    PersistLoadStats load;
    std::unordered_map<std::string, SimResult> warm;
    try {
        load = persist->open(
            version, [&warm](std::string key, const SimResult &r) {
                warm.emplace(std::move(key), r);
            });
    } catch (const std::bad_alloc &) {
        // Warm-load starved: start cold, keep the journal attached.
        // Recovered-so-far entries are dropped wholesale — a partial
        // warm set is fine, but the simple invariant ("warm iff the
        // load succeeded") is easier to reason about in a crash
        // report.
        warm.clear();
        load = PersistLoadStats{};
        load.loadFailed = true;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : warm)
            entries_.emplace(entry.first, entry.second);
        persistLoad_ = load;
    }
    persist_ = std::move(persist);
    return load;
}

void
ResultCache::detachPersist()
{
    persist_.reset();
    std::lock_guard<std::mutex> lock(mutex_);
    persistLoad_ = PersistLoadStats{};
}

void
ResultCache::flushPersist()
{
    if (persist_ != nullptr)
        persist_->flush();
}

PersistLoadStats
ResultCache::persistLoadStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return persistLoad_;
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entries_.size();
    return stats;
}

void
ResultCache::appendMetrics(MetricsRegistry &metrics) const
{
    const ResultCacheStats s = stats();
    metrics.counter("result_cache.hits").add(s.hits);
    metrics.counter("result_cache.misses").add(s.misses);
    metrics.gauge("result_cache.entries").set(double(s.entries));
    if (persist_ == nullptr)
        return;
    const PersistLoadStats load = persistLoadStats();
    const PersistStats p = persist_->stats();
    metrics.counter("result_cache.persist.recovered")
        .add(load.recovered);
    metrics.counter("result_cache.persist.discarded")
        .add(load.discardedCorrupt + load.discardedVersion);
    metrics.counter("result_cache.persist.truncated_bytes")
        .add(load.truncatedBytes);
    metrics.counter("result_cache.persist.load_failures")
        .add(load.loadFailed ? 1 : 0);
    metrics.counter("result_cache.persist.appends").add(p.appends);
    metrics.counter("result_cache.persist.append_errors")
        .add(p.appendErrors);
    metrics.counter("result_cache.persist.compactions")
        .add(p.compactions);
    metrics.gauge("result_cache.persist.file_bytes")
        .set(double(p.fileBytes));
}

void
ResultCache::setVersion(const std::string &version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    version_ = version;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace mfusim
