/**
 * @file
 * ResultCache implementation.
 */

#include "mfusim/serve/result_cache.hh"

#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

std::string
ResultCache::composeKey(const std::string &machineKey,
                        const std::string &traceKey,
                        const MachineConfig &cfg, bool audited) const
{
    // '\n' never occurs in any component, so the composition is
    // injective.  The steady-state mode cannot change cycles or
    // stalls (bit-identity is tested), but it does change the
    // steadyOpsSkipped diagnostic, so it is part of the key to keep
    // cached diagnostics honest.
    return machineKey + "\n" + traceKey + "\n" + cfg.name() + "\n" +
        (audited ? "audited" : "plain") + "\n" +
        (steadyStateEnabled() ? "steady" : "exact") + "\n" + version_;
}

SimResult
ResultCache::getOrCompute(const std::string &machineKey,
                          const std::string &traceKey,
                          const MachineConfig &cfg, bool audited,
                          const std::function<SimResult()> &compute,
                          bool *wasHit)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (wasHit)
                *wasHit = true;
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (wasHit)
        *wasHit = false;
    const SimResult result = compute();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.emplace(key, result);
    }
    return result;
}

bool
ResultCache::lookup(const std::string &machineKey,
                    const std::string &traceKey,
                    const MachineConfig &cfg, bool audited,
                    SimResult *out) const
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    if (out)
        *out = it->second;
    return true;
}

bool
ResultCache::probe(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   SimResult *out)
{
    if (lookup(machineKey, traceKey, cfg, audited, out)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ResultCache::store(const std::string &machineKey,
                   const std::string &traceKey,
                   const MachineConfig &cfg, bool audited,
                   const SimResult &result)
{
    const std::string key =
        composeKey(machineKey, traceKey, cfg, audited);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, result);
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entries_.size();
    return stats;
}

void
ResultCache::appendMetrics(MetricsRegistry &metrics) const
{
    const ResultCacheStats s = stats();
    metrics.counter("result_cache.hits").add(s.hits);
    metrics.counter("result_cache.misses").add(s.misses);
    metrics.gauge("result_cache.entries").set(double(s.entries));
}

void
ResultCache::setVersion(const std::string &version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    version_ = version;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace mfusim
