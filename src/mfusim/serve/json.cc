/**
 * @file
 * JSON parser / writer implementation.
 */

#include "mfusim/serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "mfusim/core/error.hh"

namespace mfusim
{

namespace
{

[[noreturn]] void
badKind(const char *wanted)
{
    throw ServeError(400, std::string("expected JSON ") + wanted);
}

} // namespace

bool
Json::asBool() const
{
    if (kind_ != Kind::kBool)
        badKind("boolean");
    return bool_;
}

double
Json::asNumber() const
{
    if (kind_ != Kind::kNumber)
        badKind("number");
    return number_;
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::kString)
        badKind("string");
    return string_;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::kArray)
        badKind("array");
    return array_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (kind_ != Kind::kObject)
        badKind("object");
    return object_;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto &[name, value] : object_)
        if (name == key)
            return &value;
    return nullptr;
}

Json &
Json::push(Json value)
{
    if (kind_ != Kind::kArray)
        badKind("array");
    array_.push_back(std::move(value));
    return *this;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (kind_ != Kind::kObject)
        badKind("object");
    for (auto &[name, existing] : object_) {
        if (name == key) {
            existing = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

std::string
jsonEscapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonFormatNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integral values print without an exponent or trailing ".0" so
    // counters look like counters.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Json::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        out += jsonFormatNumber(number_);
        break;
      case Kind::kString:
        out += '"';
        out += jsonEscapeString(string_);
        out += '"';
        break;
      case Kind::kArray: {
        out += '[';
        bool first = true;
        for (const Json &item : array_) {
            if (!first)
                out += ',';
            item.dumpTo(out);
            first = false;
        }
        out += ']';
        break;
      }
      case Kind::kObject: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : object_) {
            if (!first)
                out += ',';
            out += '"';
            out += jsonEscapeString(key);
            out += "\":";
            value.dumpTo(out);
            first = false;
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// ------------------------------------------------------------------ parser

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        skipSpace();
        Json value = parseValue(0);
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 32;

    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ServeError(400, "malformed JSON at line " +
                                  std::to_string(line) + " column " +
                                  std::to_string(col) + ": " +
                                  message);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char
    next()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void
    skipSpace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expect(const char *literal)
    {
        for (const char *p = literal; *p; ++p)
            if (atEnd() || next() != *p)
                fail(std::string("expected '") + literal + "'");
    }

    Json
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        if (atEnd())
            fail("unexpected end of input");
        switch (peek()) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return Json(parseString());
          case 't':
            expect("true");
            return Json(true);
          case 'f':
            expect("false");
            return Json(false);
          case 'n':
            expect("null");
            return Json();
          default:
            return parseNumber();
        }
    }

    Json
    parseObject(int depth)
    {
        ++pos_;     // '{'
        Json object = Json::object();
        skipSpace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return object;
        }
        for (;;) {
            skipSpace();
            if (atEnd() || peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipSpace();
            if (next() != ':')
                fail("expected ':' after object key");
            skipSpace();
            object.set(key, parseValue(depth + 1));
            skipSpace();
            const char c = next();
            if (c == '}')
                return object;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray(int depth)
    {
        ++pos_;     // '['
        Json array = Json::array();
        skipSpace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return array;
        }
        for (;;) {
            skipSpace();
            array.push(parseValue(depth + 1));
            skipSpace();
            const char c = next();
            if (c == ']')
                return array;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        ++pos_;     // opening quote
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are not combined; the request schema is ASCII).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xC0 | (code >> 6));
                    out += char(0x80 | (code & 0x3F));
                } else {
                    out += char(0xE0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3F));
                    out += char(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        bool digits = false;
        while (!atEnd() && peek() >= '0' && peek() <= '9') {
            ++pos_;
            digits = true;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!digits)
            fail("invalid value");
        const std::string token =
            text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("invalid number '" + token + "'");
        return Json(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace mfusim
