/**
 * @file
 * SimService: the mfusim JSON API on top of HttpServer.
 */

#include "mfusim/serve/sim_service.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/clock.hh"
#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/obs/req_trace.hh"
#include "mfusim/harness/spec_parse.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/serve/json.hh"
#include "mfusim/serve/result_cache.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/spec/predictor.hh"

namespace mfusim
{

namespace
{

/** "%.4f" — the CLI's table precision, replicated for diffability. */
std::string
rateString(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", rate);
    return buf;
}

double
nowMsF()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The "loop" request field: a JSON number or spec string. */
std::string
loopSpecOf(const Json &value)
{
    if (value.isString())
        return value.asString();
    if (value.isNumber()) {
        const double n = value.asNumber();
        if (n != std::floor(n) || n < 1 || n > 1e6)
            throw ServeError(400, "'loop' must be an integer or a "
                                  "spec string like \"1x4\"");
        return std::to_string(std::int64_t(n));
    }
    throw ServeError(400, "'loop' must be a number or string");
}

/** True when @p spec is a canonical library loop id ("1".."14"). */
bool
isLibraryLoop(const std::string &spec, int *id)
{
    if (spec.empty() || spec.size() > 2)
        return false;
    for (const char c : spec)
        if (c < '0' || c > '9')
            return false;
    const int n = std::stoi(spec);
    for (const KernelSpec &k : kernelSpecs()) {
        if (k.id == n) {
            *id = n;
            return true;
        }
    }
    return false;
}

const Json &
requireMember(const Json &body, const std::string &key)
{
    const Json *value = body.find(key);
    if (value == nullptr || value->isNull())
        throw ServeError(400, "missing required field '" + key + "'");
    return *value;
}

/**
 * Optional "predictor" request field: a spec string (see
 * PredictorSpec::parse) that arms speculative execution on the
 * machine config.  Parse errors surface as ConfigError -> 400.
 */
void
applyPredictorField(const Json &body, MachineConfig *cfg)
{
    const Json *field = body.find("predictor");
    if (field == nullptr || field->isNull())
        return;
    if (!field->isString())
        throw ServeError(400, "'predictor' must be a spec string "
                              "like \"2bit\" or \"fixed:90\"");
    cfg->predictor = PredictorSpec::parse(field->asString());
    cfg->predictor.validate();
}

/** One timed cell, shared by /v1/simulate and /v1/sweep rows. */
struct CellOutcome
{
    SimResult result;
    std::string simName;
    bool cached = false;
    bool audited = false;
};

CellOutcome
runCell(const std::string &loopSpec, const std::string &machineSpec,
        const MachineConfig &cfg, bool auditFlag)
{
    auto sim = parseMachineSpec(machineSpec, cfg);
    CellOutcome out;
    out.simName = sim->name();
    out.audited = auditFlag || auditRequested();

    const auto simulate = [&]() -> SimResult {
        int id = 0;
        if (isLibraryLoop(loopSpec, &id)) {
            const DecodedTrace &decoded =
                TraceLibrary::instance().decoded(id, cfg);
            return out.audited ? runAudited(*sim, decoded)
                               : sim->run(decoded);
        }
        const DynTrace dyn = traceForLoopSpec(loopSpec);
        const DecodedTrace decoded(dyn, cfg);
        return out.audited ? runAudited(*sim, decoded)
                           : sim->run(decoded);
    };

    const std::string machineKey = sim->cacheKey();
    if (machineKey.empty()) {
        out.result = simulate();
    } else if (reqTraceArmed()) {
        const std::uint64_t before = monoNanos();
        out.result = ResultCache::instance().getOrCompute(
            machineKey, "LL" + loopSpec, cfg, out.audited, simulate,
            &out.cached);
        // A hit's getOrCompute IS the probe; a miss's is dominated
        // by the simulation, so only the hit time is attributable to
        // the cache.
        if (out.cached)
            spanAnnotations().cacheNs = monoNanos() - before;
    } else {
        out.result = ResultCache::instance().getOrCompute(
            machineKey, "LL" + loopSpec, cfg, out.audited, simulate,
            &out.cached);
    }
    if (reqTraceArmed()) {
        SpanAnnotations &notes = spanAnnotations();
        notes.cacheHit = notes.cacheHit || out.cached;
        notes.audited = notes.audited || out.audited;
    }
    return out;
}

Json
cellJson(const std::string &loopSpec, const std::string &machineSpec,
         const MachineConfig &cfg, const CellOutcome &cell)
{
    Json out = Json::object();
    out.set("schema", Json("mfusim-serve-v1"));
    out.set("loop", Json("LL" + loopSpec));
    out.set("machine", Json(cell.simName));
    out.set("machine_spec", Json(machineSpec));
    out.set("config", Json(cfg.name()));
    out.set("instructions",
            Json(std::uint64_t(cell.result.instructions)));
    out.set("cycles", Json(std::uint64_t(cell.result.cycles)));
    out.set("rate", Json(cell.result.issueRate()));
    out.set("rate_str", Json(rateString(cell.result.issueRate())));
    out.set("cached", Json(cell.cached));
    out.set("audited", Json(cell.audited));
    out.set("steady_ops_skipped",
            Json(std::uint64_t(cell.result.steadyOpsSkipped)));
    if (cfg.predictor.armed()) {
        out.set("predictor", Json(cfg.predictor.key()));
        out.set("squashes",
                Json(std::uint64_t(cell.result.squashes)));
        out.set("wrong_path_ops",
                Json(std::uint64_t(cell.result.wrongPathOps)));
    }
    return out;
}

} // namespace

SimService::SimService(SimServiceOptions options)
    : options_(std::move(options))
{}

HttpResponse
SimService::handle(const HttpRequest &request, unsigned budgetMs)
{
    const double start = nowMsF();
    HttpResponse response;
    try {
        response = dispatch(request, budgetMs);
    } catch (const ServeError &e) {
        response = jsonErrorResponse(
            e.httpStatus() > 0 ? e.httpStatus() : 500, e.what());
    } catch (const ConfigError &e) {
        // Spec parsers throw ConfigError; in a daemon that is client
        // input, not an operator mistake.
        response = jsonErrorResponse(400, e.what());
    } catch (const Error &e) {
        response = jsonErrorResponse(500, e.what());
    }
    record(request.path, response.status, nowMsF() - start);
    return response;
}

SimService::FastCell *
SimService::findFastCell(const std::string &body)
{
    // Bound the memo: distinct bodies in real traffic are the points
    // of a parameter grid, far below this.  A scanner spraying unique
    // bodies just stops being memoized (and keeps paying the worker
    // path for misses), it cannot grow the map without limit.
    constexpr std::size_t kMaxCells = 4096;

    const auto it = fastCells_.find(body);
    if (it != fastCells_.end())
        return it->second.usable ? &it->second : nullptr;
    if (fastCells_.size() >= kMaxCells)
        return nullptr;

    FastCell cell;
    try {
        const Json request = parseJson(body);
        if (request.isObject()) {
            cell.loopSpec = loopSpecOf(requireMember(request, "loop"));
            cell.traceKey = "LL" + cell.loopSpec;
            cell.machineSpec =
                requireMember(request, "machine").asString();
            const Json *cfgField = request.find("config");
            cell.cfg = parseConfigSpec(
                cfgField != nullptr ? cfgField->asString() : "M11BR5");
            // Without this the fast path would alias speculative and
            // non-speculative requests onto the same cache key.
            applyPredictorField(request, &cell.cfg);
            const Json *auditField = request.find("audit");
            cell.audited =
                (auditField != nullptr && auditField->asBool()) ||
                auditRequested();
            auto sim = parseMachineSpec(cell.machineSpec, cell.cfg);
            cell.simName = sim->name();
            cell.machineKey = sim->cacheKey();
            // An empty cacheKey means the cell is never cached, so
            // the fast path can never serve it.
            cell.usable = !cell.machineKey.empty();
        }
    } catch (...) {
        // Unparseable body / bad spec: a negative entry — the worker
        // path owns the canonical error response.
        cell = FastCell{};
    }
    FastCell &stored = fastCells_.emplace(body, std::move(cell))
                           .first->second;
    return stored.usable ? &stored : nullptr;
}

bool
SimService::tryFastAnswer(const HttpRequest &request,
                          HttpResponse *response)
{
    // Fault plans (tests, chaos harness) reason about worker-path
    // behavior; keep every request on it while faults are armed.
    if (FaultRegistry::instance().armed())
        return false;
    const double start = nowMsF();
    if (request.path == "/healthz") {
        if (request.method != "GET" && request.method != "HEAD")
            return false;
        *response = handleHealthz();
        record("/healthz", response->status, nowMsF() - start);
        return true;
    }
    if (request.path != "/v1/simulate" || request.method != "POST")
        return false;

    FastCell *cell = findFastCell(request.body);
    if (cell == nullptr)
        return false;
    // Once the response is memoized the probe only needs the hit
    // itself (still counted), not a copy of the result.
    SimResult result;
    const bool needResult = cell->rendered.empty();
    const bool traced = reqTraceArmed();
    const std::uint64_t probeStart = traced ? monoNanos() : 0;
    if (!ResultCache::instance().probeHit(
            cell->machineKey, cell->traceKey, cell->cfg,
            cell->audited, needResult ? &result : nullptr))
        return false;   // miss: a worker computes (and counts) it
    if (traced) {
        SpanAnnotations &notes = spanAnnotations();
        notes.cacheHit = true;
        notes.audited = cell->audited;
        notes.cacheNs = monoNanos() - probeStart;
    }
    if (needResult) {
        // First hit for this body: render once, reuse forever.  The
        // cached SimResult is deterministic, so the rendering is too.
        CellOutcome out;
        out.result = result;
        out.simName = cell->simName;
        out.cached = true;
        out.audited = cell->audited;
        cell->rendered = cellJson(cell->loopSpec, cell->machineSpec,
                                  cell->cfg, out)
                             .dump() +
            "\n";
    }
    *response =
        HttpResponse(200, "application/json", cell->rendered);
    record("/v1/simulate", 200, nowMsF() - start);
    return true;
}

HttpResponse
SimService::dispatch(const HttpRequest &request, unsigned budgetMs)
{
    (void)budgetMs;     // expiry is enforced by the transport
    const std::string &path = request.path;
    if (path == "/healthz") {
        if (request.method != "GET" && request.method != "HEAD")
            throw ServeError(405, "use GET " + path);
        return handleHealthz();
    }
    if (path == "/metrics") {
        if (request.method != "GET")
            throw ServeError(405, "use GET " + path);
        return handleMetrics();
    }
    if (path == "/v1/simulate") {
        if (request.method != "POST")
            throw ServeError(405, "use POST " + path);
        return handleSimulate(request.body);
    }
    if (path == "/v1/sweep") {
        if (request.method != "POST")
            throw ServeError(405, "use POST " + path);
        return handleSweep(request.body);
    }
    if (path == "/v1/trace") {
        if (request.method != "GET")
            throw ServeError(405, "use GET " + path);
        return handleTrace(request.target);
    }
    throw ServeError(404, "no route for '" + path + "'");
}

HttpResponse
SimService::handleSimulate(const std::string &body)
{
    const Json request = parseJson(body);
    if (!request.isObject())
        throw ServeError(400, "request body must be a JSON object");

    const std::string loopSpec =
        loopSpecOf(requireMember(request, "loop"));
    const std::string machineSpec =
        requireMember(request, "machine").asString();
    const Json *cfgField = request.find("config");
    MachineConfig cfg = parseConfigSpec(
        cfgField != nullptr ? cfgField->asString() : "M11BR5");
    applyPredictorField(request, &cfg);
    const Json *auditField = request.find("audit");
    const bool audit =
        auditField != nullptr && auditField->asBool();

    const CellOutcome cell =
        runCell(loopSpec, machineSpec, cfg, audit);
    return HttpResponse(
        200, "application/json",
        cellJson(loopSpec, machineSpec, cfg, cell).dump() + "\n");
}

HttpResponse
SimService::handleSweep(const std::string &body)
{
    const Json request = parseJson(body);
    if (!request.isObject())
        throw ServeError(400, "request body must be a JSON object");

    // 'machine' is one spec string or a list of them: every listed
    // variant sweeps the same loops and config in one request, and
    // the variants advance over each loop's trace together through
    // the batched lockstep kernel (sim/batched.hh).
    const Json &machineField = requireMember(request, "machine");
    std::vector<std::string> machineSpecs;
    if (machineField.isString()) {
        machineSpecs.push_back(machineField.asString());
    } else if (machineField.isArray()) {
        for (const Json &item : machineField.items())
            machineSpecs.push_back(item.asString());
    } else {
        throw ServeError(400, "'machine' must be a spec string or "
                              "an array of spec strings");
    }
    if (machineSpecs.empty())
        throw ServeError(400, "'machine' must not be empty");
    if (machineSpecs.size() > options_.maxSweepMachines)
        throw ServeError(400,
                         "sweep of " +
                             std::to_string(machineSpecs.size()) +
                             " machines exceeds the cap of " +
                             std::to_string(
                                 options_.maxSweepMachines));
    const Json *cfgField = request.find("config");
    MachineConfig cfg = parseConfigSpec(
        cfgField != nullptr ? cfgField->asString() : "M11BR5");
    applyPredictorField(request, &cfg);

    // Validate every machine spec once, up front, so a bad spec is a
    // clean 400 instead of a SweepError from every cell.
    std::vector<std::string> simNames;
    for (const std::string &spec : machineSpecs)
        simNames.push_back(parseMachineSpec(spec, cfg)->name());

    std::vector<int> loops;
    const Json *loopsField = request.find("loops");
    if (loopsField == nullptr || loopsField->isNull()) {
        for (const KernelSpec &spec : kernelSpecs())
            loops.push_back(spec.id);
    } else {
        for (const Json &item : loopsField->items()) {
            int id = 0;
            if (!isLibraryLoop(loopSpecOf(item), &id))
                throw ServeError(400, "'loops' entries must be "
                                      "library loop ids (1..14)");
            loops.push_back(id);
        }
    }
    if (loops.empty())
        throw ServeError(400, "'loops' must not be empty");
    if (loops.size() > options_.maxSweepLoops)
        throw ServeError(400, "sweep of " +
                                  std::to_string(loops.size()) +
                                  " loops exceeds the cap of " +
                                  std::to_string(
                                      options_.maxSweepLoops));

    // Optional 'jobs' caps the intra-sweep parallelism; 0/absent
    // means the process default.  Bounded so one request cannot
    // oversubscribe the worker pool's host arbitrarily.
    unsigned jobs = 0;
    if (const Json *jobsField = request.find("jobs");
        jobsField != nullptr && !jobsField->isNull()) {
        const double raw = jobsField->asNumber();
        if (raw < 0 || raw > 256 ||
            raw != static_cast<double>(
                       static_cast<unsigned>(raw)))
            throw ServeError(400,
                             "'jobs' must be an integer in [0, 256]");
        jobs = static_cast<unsigned>(raw);
    }

    std::vector<SimFactory> variants;
    for (const std::string &spec : machineSpecs) {
        variants.push_back([spec](const MachineConfig &c) {
            return parseMachineSpec(spec, c);
        });
    }
    // One batched run per loop cell: the lockstep kernel advances
    // every cache-missing variant in one trace pass and stores each
    // computed cell back, so this call populates every covered
    // ResultCache entry at once.
    const std::vector<std::vector<double>> rates =
        batchedPerLoopRates(variants, loops, cfg, jobs);

    const auto fillMachine = [&](std::size_t v, Json &dst) {
        Json results = Json::array();
        std::vector<double> scalarRates, vectorRates;
        for (std::size_t i = 0; i < loops.size(); ++i) {
            bool vectorizable = false;
            for (const KernelSpec &spec : kernelSpecs())
                if (spec.id == loops[i])
                    vectorizable = spec.vectorizable;
            (vectorizable ? vectorRates : scalarRates)
                .push_back(rates[v][i]);
            Json row = Json::object();
            row.set("loop",
                    Json("LL" + std::to_string(loops[i])));
            row.set("class",
                    Json(vectorizable ? "vector" : "scalar"));
            row.set("rate", Json(rates[v][i]));
            row.set("rate_str", Json(rateString(rates[v][i])));
            results.push(std::move(row));
        }
        dst.set("machine", Json(simNames[v]));
        dst.set("machine_spec", Json(machineSpecs[v]));
        dst.set("results", std::move(results));
        if (!scalarRates.empty())
            dst.set("harmonic_mean_scalar",
                    Json(harmonicMean(scalarRates)));
        if (!vectorRates.empty())
            dst.set("harmonic_mean_vector",
                    Json(harmonicMean(vectorRates)));
    };

    Json out = Json::object();
    out.set("schema", Json("mfusim-serve-v1"));
    out.set("config", Json(cfg.name()));
    out.set("jobs", Json(std::uint64_t(
                        jobs != 0 ? jobs : defaultSweepJobs())));
    out.set("batch_size", Json(std::uint64_t(machineSpecs.size())));
    if (machineSpecs.size() == 1) {
        // Single-machine requests keep the v1 response shape.
        fillMachine(0, out);
    } else {
        Json machines = Json::array();
        for (std::size_t v = 0; v < machineSpecs.size(); ++v) {
            Json m = Json::object();
            fillMachine(v, m);
            machines.push(std::move(m));
        }
        out.set("machines", std::move(machines));
    }
    return HttpResponse(200, "application/json", out.dump() + "\n");
}

HttpResponse
SimService::handleHealthz() const
{
    Json out = Json::object();
    out.set("status", Json("ok"));
    out.set("version", Json(options_.version));
    out.set("git_sha", Json(options_.gitSha));
    out.set("uptime_seconds", Json(processUptimeSeconds()));
    return HttpResponse(200, "application/json", out.dump() + "\n");
}

HttpResponse
SimService::handleTrace(const std::string &target) const
{
    if (options_.tracer == nullptr)
        throw ServeError(503,
                         "request tracing is disabled "
                         "(--no-request-trace)");
    // The only recognized query parameter: ?last=N bounds the export
    // to the N most recently published spans (0 / absent = all
    // retained).  Anything unparseable is a client error.
    std::size_t lastN = 0;
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
        const std::string query = target.substr(q + 1);
        if (query.rfind("last=", 0) != 0)
            throw ServeError(400,
                             "unrecognized query (use ?last=N)");
        char *end = nullptr;
        const unsigned long parsed =
            std::strtoul(query.c_str() + 5, &end, 10);
        if (end == nullptr || *end != '\0')
            throw ServeError(400, "'last' must be an integer");
        lastN = std::size_t(parsed);
    }
    std::ostringstream os;
    options_.tracer->writeServeTrace(os, lastN);
    return HttpResponse(200, "application/json", os.str());
}

HttpResponse
SimService::handleMetrics()
{
    // The scrape snapshot: service counters + transport admission
    // stats + result-cache stats, all cumulative so Prometheus sees
    // monotone counters.
    MetricsRegistry snapshot;
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        snapshot.merge(http_);
    }
    if (server_ != nullptr) {
        const ServerStats stats = server_->stats();
        snapshot.counter("http.connections.accepted")
            .add(stats.accepted);
        snapshot.counter("http.connections.rejected")
            .add(stats.rejected);
        snapshot.counter("http.connections.requests")
            .add(stats.requests);
        snapshot.counter("http.requests.pipelined")
            .add(stats.pipelined);
        snapshot.counter("http.requests.fastpath")
            .add(stats.fastpath);
        snapshot.gauge("http.connections.open")
            .set(double(stats.connections));
        snapshot.gauge("http.queue_depth")
            .set(double(stats.queueDepth));
        snapshot.gauge("http.in_flight").set(double(stats.inFlight));
        snapshot.counter("http.worker_deaths")
            .add(stats.workerDeaths);
    }
    // Fault-injection telemetry: visible only while faults are armed
    // (a production scrape carries zero extra series).
    if (FaultRegistry::instance().armed()) {
        snapshot.gauge("faults.armed").set(1.0);
        for (const FaultPointStats &pointStats :
             FaultRegistry::instance().stats()) {
            std::string name = pointStats.point;
            for (char &c : name)
                if (c == '.')
                    c = '_';
            snapshot.counter("faults." + name + ".fires")
                .add(pointStats.fires);
        }
    }
    ResultCache::instance().appendMetrics(snapshot);
    // Batched lockstep kernel telemetry (sim/batched.hh):
    // batch_size is the cumulative lane count submitted to
    // runBatch(), split into lockstep-advanced and scalar-fallback
    // lanes.
    const BatchTelemetry batch = batchTelemetry();
    snapshot.counter("sweep.batches").add(batch.batches);
    snapshot.counter("sweep.batch_size").add(batch.lanes);
    snapshot.counter("sweep.batch.lockstep_lanes")
        .add(batch.lockstepLanes);
    snapshot.counter("sweep.batch.scalar_lanes")
        .add(batch.scalarLanes);
    // Speculation telemetry (spec/predictor.hh): registered
    // unconditionally so the families exist (at zero) before any
    // speculative run.
    const SpecTelemetry specT = specTelemetry();
    snapshot.counter("sim.squashes").add(specT.squashes);
    snapshot.counter("sim.wrong_path_ops").add(specT.wrongPathOps);
    snapshot.counter("sim.stall.mispredict_cycles")
        .add(specT.mispredictCycles);
    if (options_.tracer != nullptr)
        options_.tracer->appendMetrics(snapshot);
    // Build identity as the standard info-gauge idiom: constant 1,
    // identity in the labels.
    snapshot
        .gauge("build_info{version=" + options_.version +
               ",git_sha=" + options_.gitSha +
               ",build_type=" + options_.buildType + "}")
        .set(1.0);
    snapshot.gauge("process.uptime_seconds")
        .set(processUptimeSeconds());
    snapshot.setLabel("version", options_.version);
    return HttpResponse(200, "text/plain; version=0.0.4",
                        renderPrometheus(snapshot));
}

void
SimService::record(const std::string &endpoint, int status,
                   double elapsedMs)
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    http_.counter("http.requests").increment();
    const std::string statusClass =
        status >= 500 ? "5xx" : status >= 400 ? "4xx" : "2xx";
    http_.counter("http.responses." + statusClass).increment();

    // Per-endpoint counter + latency histogram for the routed
    // endpoints (unknown paths aggregate under "other" so a path
    // scanner cannot inflate the registry without bound).
    std::string name = "other";
    if (endpoint == "/v1/simulate")
        name = "simulate";
    else if (endpoint == "/v1/sweep")
        name = "sweep";
    else if (endpoint == "/healthz")
        name = "healthz";
    else if (endpoint == "/metrics")
        name = "metrics";
    else if (endpoint == "/v1/trace")
        name = "trace";
    http_.counter("http." + name + ".requests").increment();
    // 2 ms buckets x 50 = 100 ms span; slower requests land in the
    // overflow bucket, which Prometheus renders under +Inf anyway.
    http_.histogram("http." + name + ".latency_ms", 2, 50)
        .record(std::uint64_t(elapsedMs < 0 ? 0 : elapsedMs));
}

} // namespace mfusim
