/**
 * @file
 * Common interface of all trace-driven timing simulators.
 *
 * Every machine organization in the paper is a Simulator: it consumes
 * a DynTrace and reports how many clock cycles the trace would take,
 * from which the paper's figure of merit — the instruction issue rate
 * (instructions per clock cycle) — follows.
 */

#ifndef MFUSIM_SIM_SIMULATOR_HH
#define MFUSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"
#include "mfusim/obs/obs_sink.hh"
#include "mfusim/sim/audit.hh"

namespace mfusim
{

/**
 * Default livelock threshold of the no-forward-progress watchdog:
 * if a cycle-driven simulator advances this many cycles without a
 * single issue/dispatch/complete event while work remains, it throws
 * a diagnostic SimError instead of spinning forever.  Legal stalls
 * are bounded by a few tens of cycles (longest latency + branch
 * time), so the default is far above any reachable gap; tests use
 * tiny values to provoke the watchdog deterministically.
 */
constexpr ClockCycle kDefaultWatchdogCycles = 1000000;

/**
 * Where issue cycles were lost, for simulators that can attribute
 * them (currently the single-issue scoreboard family).  Each counter
 * is the number of cycles the issue stage waited on that hazard as
 * the *binding* constraint, attributed in hazard-check order
 * (RAW, then WAW, then structural, then result bus).
 */
struct StallBreakdown
{
    std::uint64_t raw = 0;          //!< waiting for source operands
    std::uint64_t waw = 0;          //!< destination register reserved
    std::uint64_t structural = 0;   //!< functional unit / memory busy
    std::uint64_t resultBus = 0;    //!< completion-slot conflicts
    std::uint64_t branch = 0;       //!< condition waits + branch time

    std::uint64_t
    total() const
    {
        return raw + waw + structural + resultBus + branch;
    }
};

/** Outcome of one simulation. */
struct SimResult
{
    std::uint64_t instructions = 0; //!< dynamic instructions issued
    ClockCycle cycles = 0;          //!< completion time of the trace

    /** Valid only when hasStalls is set. */
    StallBreakdown stalls;
    bool hasStalls = false;

    /**
     * Instructions closed by steady-state extrapolation instead of
     * cycle-accurate simulation (see sim/steady_state.hh).  Purely
     * diagnostic: cycles/stalls are bit-identical either way.  Zero
     * when the fast path is disabled, never converged, or the trace
     * has no periodic structure.
     */
    std::uint64_t steadyOpsSkipped = 0;

    /**
     * Speculation telemetry (zero unless a predictor is armed):
     * mispredicted branches squashed, and wrong-path instructions
     * that actually occupied issue/FU/bus resources before their
     * squash.
     */
    std::uint64_t squashes = 0;
    std::uint64_t wrongPathOps = 0;

    /** The paper's performance measure: instructions per cycle. */
    double issueRate() const;
};

/**
 * A trace-driven timing simulator for one machine organization.
 *
 * The hot path is run(const DecodedTrace &): every simulator's cycle
 * loop consumes the pre-decoded parallel arrays instead of looking
 * opcode traits up per op per visit.  run(const DynTrace &) is a
 * convenience that decodes under the simulator's own configuration
 * and delegates; sweeps should pass a cached DecodedTrace (see
 * TraceLibrary::decoded()) so the decode cost is paid once per
 * (trace, configuration), not once per run.
 */
class Simulator
{
  public:
    virtual ~Simulator() = default;

    /** Decode @p trace under config() and simulate it. */
    SimResult run(const DynTrace &trace);

    /**
     * Simulate a pre-decoded trace.  @p trace must have been decoded
     * under config() (the stored latencies embed the memory and
     * branch times); simulators throw ConfigError on a mismatch.
     */
    virtual SimResult run(const DecodedTrace &trace) = 0;

    /** Human-readable machine description (without M/BR config). */
    virtual std::string name() const = 0;

    /**
     * A canonical identity string for the deterministic result cache
     * (serve/result_cache.hh): two simulators with equal cacheKey()
     * and equal MachineConfig MUST produce bit-identical SimResults
     * on every trace.  Unlike name(), the key serializes EVERY
     * organization knob (branch policy, WAR blocking, FU copies,
     * ports, ...), so ablation variants that share a display name
     * never alias.  An empty string opts out of caching; the base
     * class returns empty so external Simulator subclasses are
     * uncacheable unless they make the identity promise explicitly.
     */
    virtual std::string cacheKey() const { return ""; }

    /** The machine parameters this simulator times traces under. */
    virtual const MachineConfig &config() const = 0;

    /**
     * Attach (nullptr: detach) a SimAudit event sink.  With a sink
     * attached, run() emits one AuditEvent per pipeline event; with
     * none, emission is a single predicted-not-taken branch per
     * event.  The caller owns the sink and must keep it alive across
     * the run (see runAudited() for the packaged form).
     */
    void
    attachAudit(AuditSink *sink)
    {
        audit_ = sink;
        obs_ = dynamic_cast<ObsSink *>(sink);
    }
    AuditSink *auditSink() const { return audit_; }

    /**
     * The attached sink's observability interface, or nullptr when
     * no sink is attached or the sink is a plain AuditSink.  Stall
     * samples (emitStall) reach only ObsSinks; plain auditors see
     * the unchanged event stream.
     */
    ObsSink *obsSink() const { return obs_; }

    /**
     * The legality invariants an Auditor should enforce for this
     * organization (see AuditRules).  The base implementation models
     * nothing; every concrete simulator overrides it.
     */
    virtual AuditRules auditRules() const { return AuditRules{}; }

  protected:
    /** Emit one audit event if a sink is attached. */
    void
    emitAudit(AuditPhase phase, ClockCycle cycle, std::uint64_t op,
              std::int32_t unit = -1) const
    {
        if (audit_)
            audit_->onEvent(AuditEvent{ cycle, op, unit, phase });
    }

    /**
     * Report @p cycles consecutive lost issue cycles starting at
     * @p from, attributed to @p cause, if an ObsSink is attached.
     * Zero-length waits are swallowed here so call sites can report
     * every resolved max() unconditionally.
     */
    void
    emitStall(StallCause cause, ClockCycle from, ClockCycle cycles,
              std::uint64_t op) const
    {
        if (obs_ && cycles)
            obs_->onStall(StallSample{ from, cycles, op, cause });
    }

  private:
    AuditSink *audit_ = nullptr;
    ObsSink *obs_ = nullptr;
};

/**
 * Run @p trace on @p sim with a fresh Auditor attached, verify the
 * full schedule against sim.auditRules(), and return the result.
 * Issue rates are bit-identical to a plain run(); a legality
 * violation raises AuditError.
 */
SimResult runAudited(Simulator &sim, const DecodedTrace &trace);

/**
 * Throw ConfigError unless @p trace was decoded under @p cfg.  Every
 * simulator calls this at the top of its decoded-trace run; the
 * check is once per run, not per op.
 */
void checkDecodedConfig(const DecodedTrace &trace,
                        const MachineConfig &cfg);

} // namespace mfusim

#endif // MFUSIM_SIM_SIMULATOR_HH
