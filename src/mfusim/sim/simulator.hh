/**
 * @file
 * Common interface of all trace-driven timing simulators.
 *
 * Every machine organization in the paper is a Simulator: it consumes
 * a DynTrace and reports how many clock cycles the trace would take,
 * from which the paper's figure of merit — the instruction issue rate
 * (instructions per clock cycle) — follows.
 */

#ifndef MFUSIM_SIM_SIMULATOR_HH
#define MFUSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/**
 * Where issue cycles were lost, for simulators that can attribute
 * them (currently the single-issue scoreboard family).  Each counter
 * is the number of cycles the issue stage waited on that hazard as
 * the *binding* constraint, attributed in hazard-check order
 * (RAW, then WAW, then structural, then result bus).
 */
struct StallBreakdown
{
    std::uint64_t raw = 0;          //!< waiting for source operands
    std::uint64_t waw = 0;          //!< destination register reserved
    std::uint64_t structural = 0;   //!< functional unit / memory busy
    std::uint64_t resultBus = 0;    //!< completion-slot conflicts
    std::uint64_t branch = 0;       //!< condition waits + branch time

    std::uint64_t
    total() const
    {
        return raw + waw + structural + resultBus + branch;
    }
};

/** Outcome of one simulation. */
struct SimResult
{
    std::uint64_t instructions = 0; //!< dynamic instructions issued
    ClockCycle cycles = 0;          //!< completion time of the trace

    /** Valid only when hasStalls is set. */
    StallBreakdown stalls;
    bool hasStalls = false;

    /** The paper's performance measure: instructions per cycle. */
    double issueRate() const;
};

/**
 * A trace-driven timing simulator for one machine organization.
 */
class Simulator
{
  public:
    virtual ~Simulator() = default;

    /** Simulate @p trace and report its timing. */
    virtual SimResult run(const DynTrace &trace) = 0;

    /** Human-readable machine description (without M/BR config). */
    virtual std::string name() const = 0;
};

} // namespace mfusim

#endif // MFUSIM_SIM_SIMULATOR_HH
