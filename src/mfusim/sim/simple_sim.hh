/**
 * @file
 * The Simple Machine: a strictly serial two-stage pipeline.
 *
 * "In this Simple Machine, there are two distinct phases in
 * processing an instruction: (i) an instruction fetch, decode and
 * issue phase ... and (ii) an instruction execution phase.  At any
 * time, at most one instruction can be in each phase of execution."
 *
 * An instruction enters the execution stage only when its predecessor
 * has completely finished, so there is never any overlap among
 * functional units and no hazard checking is needed.  This is the
 * paper's lower bound on the achievable issue rate (Table 1, row
 * "Simple").
 */

#ifndef MFUSIM_SIM_SIMPLE_SIM_HH
#define MFUSIM_SIM_SIMPLE_SIM_HH

#include "mfusim/core/error.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** The serial two-stage machine. */
class SimpleSim : public Simulator
{
  public:
    explicit SimpleSim(const MachineConfig &cfg) : cfg_(cfg)
    {
        if (cfg_.predictor.armed())
            throw ConfigError(
                "SimpleSim: branch prediction is not modeled for the"
                " serial machine (drop the predictor spec)");
    }

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override { return "Simple"; }
    std::string cacheKey() const override { return "simple"; }
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

  private:
    /**
     * run() body, compiled once with audit emission and once without
     * so the audit-off loop stays a pure latency sum (it vectorizes).
     */
    template <bool kAudit>
    SimResult runImpl(const DecodedTrace &trace) const;

    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_SIMPLE_SIM_HH
