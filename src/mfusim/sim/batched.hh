/**
 * @file
 * Batched lockstep sweep kernel: one trace pass advances many
 * configuration lanes.
 *
 * Every paper table sweeps one op stream across orthogonal machine
 * knobs (latencies, issue widths, bus kinds), yet the scalar path
 * re-walks the same DecodedTrace once per cell.  runBatch() advances
 * B cells — "lanes" — over the trace in block lockstep: the trace is
 * walked in blocks of a few hundred ops, every lane runs a whole
 * block (hot cycle cursors in registers) before the next lane visits
 * it, and the block's structural fields are read from cache by lanes
 * 2..B.  Every lane applies its own timing rules to its own state
 * (per-lane FU busy times, bus reservation windows, register ready
 * times, completion arrays, cycle counters); lanes never read each
 * other's state, so any interleaving is bit-identical and the block
 * schedule is purely a locality choice.
 *
 * Lockstep is possible because the covered machines consume ops in
 * program order: SimpleSim and ScoreboardSim issue one op at a time,
 * and in-order MultiIssueSim's window boundaries and issue order are
 * timing-independent (a window is refilled only when drained, and a
 * squashing branch truncates it by trace structure alone).  For the
 * in-order multiple-issue machine the kernel replaces the scalar
 * pass-rescan loop with its exact fixpoint: an op issues at the
 * least cycle >= its predecessor's issue cycle (plus one across a
 * window refill) that satisfies its dependence, branch-floor,
 * functional-unit and result-bus constraints — the same cycle the
 * scalar pass loop converges to, because its event hints are exact.
 *
 * The steady-state fast path composes per lane: each lane owns a
 * SteadyStateTracker and observes the same boundaries with the same
 * signature recipe as its scalar simulator, so it takes the same
 * skips.  A lane whose skip extrapolates past the current block
 * leaves it early; the blocks the skip crossed pass over the lane
 * with one cursor compare.
 *
 * Lanes that the lockstep kernels do not cover — out-of-order issue,
 * the RUU machines, vector traces under multiple issue, machines
 * with replicated units (fuCopies/memPorts > 1), audited runs,
 * structurally incompatible traces, and single-lane batches —
 * fall back to the scalar run() inside the same call, so callers
 * need no capability logic.  Results are bit-identical to the scalar
 * path in every covered and uncovered case.
 */

#ifndef MFUSIM_SIM_BATCHED_HH
#define MFUSIM_SIM_BATCHED_HH

#include <cstddef>
#include <vector>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/**
 * One cell of a batched sweep: a simulator and the decoded trace it
 * should time.  Lanes of one batch usually share the trace pointer
 * (organization axes); latency axes pass per-lane traces of the same
 * loop, which are structurally identical (same ops, registers and
 * dependence links) and verified as such before lockstep is used.
 * Both referents are borrowed and must outlive the runBatch() call.
 */
struct BatchLane
{
    Simulator *sim = nullptr;
    const DecodedTrace *trace = nullptr;
};

/** What runBatch() did, for telemetry and tests. */
struct BatchOutcome
{
    /** Per-lane results, in lane order; bit-identical to scalar. */
    std::vector<SimResult> results;
    /** Lanes advanced by a lockstep kernel. */
    std::size_t lockstepLanes = 0;
    /** Lanes that fell back to the scalar path. */
    std::size_t scalarLanes = 0;
};

/**
 * Advance every lane over its trace and return the per-lane results.
 * Lanes are grouped by machine kind and structural trace family;
 * groups of two or more compatible lanes run a lockstep kernel, all
 * other lanes run their simulator's scalar path.  Exceptions from
 * any lane propagate (the batch is abandoned, as a scalar sweep
 * cell's would be).
 */
BatchOutcome runBatch(const std::vector<BatchLane> &lanes);

/**
 * True when two decoded traces are structurally identical: same op
 * count and per-op opcodes, unit classes, flags, registers and
 * dependence links.  Latencies and occupancies may differ (that is
 * the latency sweep axis).  Trivially true for aliased pointers.
 */
bool structurallyIdentical(const DecodedTrace &a, const DecodedTrace &b);

/**
 * Cumulative process-lifetime runBatch() telemetry, for the serve
 * daemon's /metrics endpoint (monotone counters).  `lanes` is the
 * total batch size submitted across all calls; the lockstep/scalar
 * split tells how much of it the kernels actually covered.
 */
struct BatchTelemetry
{
    std::uint64_t batches = 0;      //!< runBatch() calls (>= 1 lane)
    std::uint64_t lanes = 0;        //!< total lanes submitted
    std::uint64_t lockstepLanes = 0;
    std::uint64_t scalarLanes = 0;
};

BatchTelemetry batchTelemetry();

} // namespace mfusim

#endif // MFUSIM_SIM_BATCHED_HH
