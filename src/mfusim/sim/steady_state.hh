/**
 * @file
 * Steady-state extrapolation over periodic trace segments.
 *
 * Every simulator's timing rules are deterministic and
 * time-invariant: state evolution depends only on *differences*
 * between stored cycle numbers, never on absolute time.  So if the
 * complete architectural timing state at one iteration boundary of a
 * periodic trace segment (see dataflow/period_detector.hh) equals
 * the state m iterations earlier — with every stored time rebased to
 * the boundary's cursor — then every subsequent group of m
 * iterations replays the same schedule shifted by a constant cycle
 * delta.  The remaining iterations can then be closed in O(1): shift
 * every live time by R*delta, advance the op cursor by R*m periods
 * and add R times the per-group stall deltas.  Integer cycle
 * arithmetic makes the extrapolation exact, not approximate.
 *
 * SteadyStateTracker implements the boundary bookkeeping shared by
 * all six simulators.  A simulator
 *
 *  1. calls beginObserve(cursor) when its op cursor reaches
 *     nextBoundary();
 *  2. fills sigBuffer() with its complete normalized live state
 *     (values are rebased to a base cycle: stale times — at or
 *     before the base — may be encoded as 0, because every consumer
 *     reads times through max()/<= against cycles >= the base, so
 *     states differing only in how stale a stale time is evolve
 *     identically; quantities consumed as exact differences, like
 *     the watchdog's last-event cycle, must be encoded exactly);
 *  3. calls finishObserve(); on a returned Skip it advances its op
 *     cursor by Skip::ops, shifts every stored time by Skip::delta
 *     and adds Skip::counters to its stall counters.
 *
 * A skip is only offered after two *consecutive* observed boundaries
 * match at the same iteration distance m (K = 2 confirmations), and
 * never past the segment's final boundary — the epilogue, including
 * the final not-taken branch, is always simulated exactly.  Matching
 * at distance m > 1 covers super-periodic state (e.g. the RUU's
 * round-robin bank pointer when inserts-per-period is not a multiple
 * of the width).
 *
 * Exactness rests entirely on the *signature match*, never on the
 * confirmation count: a complete-state match already certifies the
 * replay.  K = 2 is paranoia against a body whose state wanders in
 * ways the first match happened to hide.  That paranoia is paid once
 * per body, not once per segment: when a segment's *family* (see
 * TraceSegment::family — identical steady-state bodies) has been
 * confirmed earlier in the same run, a first in-segment match skips
 * immediately (K = 1).  Hierarchically periodic traces (LL6's
 * triangular nest decomposes into many short same-family segments)
 * then pay the two-match warm-up once for the whole trace instead of
 * once per inner run — including two-period segments, which have
 * only a single boundary pair and could otherwise never skip.  The
 * extrapolation delta always comes from a same-segment record;
 * cross-segment state is never reused.
 *
 * The fast path is on by default; setSteadyStateEnabled(false), the
 * --no-steady-state CLI flag or MFUSIM_NO_STEADY_STATE=1 in the
 * environment disable it, and simulators bypass it whenever an audit
 * sink is attached (the audit event stream must be complete, so
 * auditing always takes the plain path).
 */

#ifndef MFUSIM_SIM_STEADY_STATE_HH
#define MFUSIM_SIM_STEADY_STATE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "mfusim/core/types.hh"
#include "mfusim/dataflow/period_detector.hh"

namespace mfusim
{

/**
 * Process-wide enable flag of the steady-state fast path.  Defaults
 * to true unless MFUSIM_NO_STEADY_STATE is set (non-empty, not "0")
 * in the environment.
 */
bool steadyStateEnabled();
void setSteadyStateEnabled(bool enabled);

/**
 * Iteration-boundary state matcher for one simulation run.
 */
class SteadyStateTracker
{
  public:
    /** Ring capacity: super-periods up to kRing - 1 are matched.
     *  Deep out-of-order windows (e.g. a 100-entry RUU striding a
     *  short loop body) drift in phase for tens of iterations before
     *  the boundary state recurs, so the ring reaches well past the
     *  common super-periods of 2..8 boundaries. */
    static constexpr std::size_t kRing = 48;
    static constexpr std::size_t kMaxCounters = 6;

    /** Extrapolation order returned by finishObserve(). */
    struct Skip
    {
        std::uint64_t ops = 0;      //!< add to the op cursor
        ClockCycle delta = 0;       //!< add to every live stored time
        /**
         * Add to the run's stall counters (same order as passed).
         *
         * Simulators with per-op completion arrays refill their
         * lookback window behind the landing cursor with the plain
         * state shift — completion[q] = completion[q - ops] + delta —
         * the source index has the same cursor-relative phase as q
         * and lies in the exactly simulated prefix (the simulator
         * guards cursor >= window before observing).
         */
        std::array<std::uint64_t, kMaxCounters> counters{};
    };

    /**
     * Track @p periods (may be null: tracker inert, nextBoundary()
     * is past every cursor).  @p traceSize is the op count.
     */
    SteadyStateTracker(const TracePeriodicity *periods,
                       std::size_t traceSize);

    /**
     * The next op index at which the owning simulator should call
     * beginObserve(); traceSize when no boundary remains.
     */
    std::size_t nextBoundary() const { return next_; }

    /**
     * Start observing: @p cursor is the simulator's op cursor,
     * >= nextBoundary().  Picks the latest boundary at or before
     * the cursor (the cursor-boundary offset joins the signature, so
     * simulators whose cursor strides past boundaries — a
     * multi-issue window under a predicting branch policy — still
     * match like with like).  Returns false when the cursor left the
     * current segment's periodic region: no observation, the
     * boundary cursor resynchronizes, skip sigBuffer()/
     * finishObserve().
     */
    bool beginObserve(std::size_t cursor);

    /** Segment of the boundary being observed (after beginObserve). */
    const TraceSegment &segment() const { return *seg_; }

    /** Cleared signature buffer to fill between begin/finish. */
    std::vector<std::uint64_t> &sigBuffer();

    /**
     * Abandon the current observation (simulator-side guard failed,
     * e.g. not enough simulated history for its lookback window).
     * Breaks the confirmation chain.
     */
    void cancelObserve();

    /**
     * Record the observation and try to extrapolate.  @p base is the
     * normalization base; @p counters (numCounters <= kMaxCounters)
     * are the run's monotone stall counters at this boundary.
     */
    std::optional<Skip> finishObserve(ClockCycle base,
                                      const std::uint64_t *counters,
                                      std::size_t numCounters);

    /** Total ops closed by extrapolation so far. */
    std::uint64_t opsSkipped() const { return opsSkipped_; }

  private:
    struct Record
    {
        bool valid = false;
        std::size_t boundary = 0;   //!< boundary index k in segment
        ClockCycle base = 0;
        std::array<std::uint64_t, kMaxCounters> counters{};
        std::vector<std::uint64_t> sig;
    };

    void clearRing();
    /** Advance segment/boundary cursors so next_ > cursor holds. */
    void resync(std::size_t cursor);

    const TracePeriodicity *periods_;
    std::size_t traceSize_;
    std::size_t segIdx_ = 0;
    const TraceSegment *seg_ = nullptr;
    std::size_t next_;              //!< next boundary op index
    std::size_t obsBoundary_ = 0;   //!< boundary index being observed
    std::size_t obsOffset_ = 0;     //!< cursor - boundary op index

    std::array<Record, kRing> ring_;
    std::size_t ringNext_ = 0;
    std::vector<std::uint64_t> sig_;

    // Confirmation chain: the previous observed boundary and whether
    // it matched at some distance.
    std::size_t lastObserved_ = std::size_t(-1);
    std::size_t lastMatchDist_ = 0;
    std::size_t lastMatchBoundary_ = std::size_t(-1);

    // Families whose steady state was confirmed earlier in this run.
    // Deliberately NOT cleared on segment advance: this is the
    // cross-segment trust that lets a later same-family segment skip
    // on its first match.
    std::vector<std::uint32_t> confirmedFamilies_;

    std::uint64_t opsSkipped_ = 0;
};

} // namespace mfusim

#endif // MFUSIM_SIM_STEADY_STATE_HH
