/**
 * @file
 * Single-issue machines with execution-stage overlap (Table 1).
 *
 * One instruction may issue per cycle, in order.  Issue blocks on:
 *
 *  - RAW hazards: a source register written by an in-flight
 *    instruction is not yet available;
 *  - WAW hazards: the destination register is still reserved by an
 *    in-flight writer (the CRAY-1 register-reservation rule);
 *  - structural hazards: the needed functional unit or memory port
 *    cannot accept a new operation;
 *  - result-bus conflicts: another in-flight instruction already owns
 *    the (single) result bus in the cycle this one would complete;
 *  - branches: a branch issues once its condition register is
 *    available and then blocks the issue stage for the configured
 *    branch time (5 slow / 2 fast).
 *
 * Three of the paper's machines are configurations of this model:
 *
 *  - SerialMemory: serial memory, non-segmented functional units;
 *  - NonSegmented: interleaved memory, non-segmented units (CDC-6600
 *    flavor);
 *  - CRAY-like:    interleaved memory, segmented units.
 */

#ifndef MFUSIM_SIM_SCOREBOARD_SIM_HH
#define MFUSIM_SIM_SCOREBOARD_SIM_HH

#include "mfusim/core/branch_policy.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Organization knobs of the single-issue overlap machines. */
struct ScoreboardConfig
{
    FuDiscipline fuDiscipline = FuDiscipline::kSegmented;
    MemDiscipline memDiscipline = MemDiscipline::kInterleaved;
    /**
     * Model single-result-bus completion conflicts (two in-flight
     * instructions may not complete in the same cycle).  Matches the
     * CRAY-1 issue rule and keeps the single-issue machines exactly
     * consistent with the 1-Bus multiple-issue machine at width 1.
     */
    bool modelResultBus = true;

    /**
     * Branch handling.  kBlocking is the paper's model; kBtfn and
     * kOracle are mfusim extensions quantifying the cost of the
     * paper's no-speculation assumption (see branch_policy.hh).
     */
    BranchPolicy branchPolicy = BranchPolicy::kBlocking;

    /**
     * CRAY-1 vector chaining (extension; only affects traces with
     * vector instructions): a vector consumer may start as soon as
     * its producer's first element exists rather than waiting for
     * the last.
     */
    bool vectorChaining = true;

    /** Copies of each functional unit (extension; paper: 1). */
    unsigned fuCopies = 1;
    /** Independent memory ports (extension; paper: 1). */
    unsigned memPorts = 1;

    /** The paper's "SerialMemory" machine. */
    static ScoreboardConfig serialMemory();
    /** The paper's "NonSegmented" machine. */
    static ScoreboardConfig nonSegmented();
    /** The paper's "CRAY-like" machine. */
    static ScoreboardConfig crayLike();
};

/**
 * The single-issue scoreboarded machine.
 */
class ScoreboardSim : public Simulator
{
  public:
    /** @throws ConfigError on zero unit or port counts. */
    ScoreboardSim(const ScoreboardConfig &org,
                  const MachineConfig &cfg);

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override;
    std::string cacheKey() const override;
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

    /** Organization knobs (the batched sweep kernel mirrors them). */
    const ScoreboardConfig &org() const { return org_; }

  private:
    // The issue loop is compiled twice: kObs=false (no attached
    // sink) carries zero event/stall-emission code, so the default
    // path's throughput is untouched by instrumentation.
    template <bool kObs> SimResult runImpl(const DecodedTrace &trace);

    ScoreboardConfig org_;
    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_SCOREBOARD_SIM_HH
