/**
 * @file
 * Multiple issue units over an instruction buffer (Tables 3-6).
 *
 * The machine fetches a block of `width` consecutive instructions
 * into an instruction buffer examined in parallel by `width` issue
 * units.  The buffer is refilled only after every instruction in it
 * has issued — except that a taken branch squashes the rest of the
 * buffer and refills from the target once it resolves.
 *
 * Two issue disciplines (paper sections 5.1 and 5.2):
 *
 *  - sequential: "If any instruction cannot issue, succeeding
 *    instructions cannot be issued even if their resources are
 *    available."
 *  - out-of-order: any instruction in the buffer may issue once it
 *    has no RAW or WAW hazard with the (unissued) instructions that
 *    precede it in the buffer and no hazard with in-flight
 *    instructions.  No instruction may issue past an unissued
 *    branch (the machine does not speculate).
 *
 * The execution resources are always the CRAY-like complement
 * (segmented units, interleaved memory): "we restrict further
 * experiments to machines with fully segmented functional units and
 * an interleaved memory system."
 *
 * Result busses follow BusKind: issue unit i is the buffer slot i,
 * and an instruction reserves its bus for its completion cycle at
 * issue (N-Bus: slot's own bus; 1-Bus: the shared bus; X-Bar: any
 * free bus).
 */

#ifndef MFUSIM_SIM_MULTI_ISSUE_SIM_HH
#define MFUSIM_SIM_MULTI_ISSUE_SIM_HH

#include "mfusim/core/branch_policy.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/funits/result_bus.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Organization of the multiple-issue buffer machine. */
struct MultiIssueConfig
{
    unsigned width = 2;             //!< issue units == buffer size
    bool outOfOrder = false;        //!< section 5.2 vs 5.1
    BusKind busKind = BusKind::kPerUnit;
    /**
     * Also block on WAR hazards against earlier unissued buffer
     * entries.  The paper ignores WAR ("not important in a single
     * processor situation"); real out-of-order issue with issue-time
     * operand read would need this.  Ablation knob, default off.
     */
    bool blockWar = false;

    /**
     * Branch handling.  kBlocking is the paper's model (no
     * speculation): instructions never issue past an unresolved
     * branch, and a taken branch squashes the rest of the buffer.
     * kBtfn/kOracle model an idealized predicted front end: a
     * correctly predicted branch costs one issue slot, imposes no
     * floor, and the buffer behind it holds the correct path; a
     * mispredicted branch behaves like a blocking one (redirect
     * after resolution).
     */
    BranchPolicy branchPolicy = BranchPolicy::kBlocking;

    /** Copies of each functional unit (extension; paper: 1). */
    unsigned fuCopies = 1;
    /** Independent memory ports (extension; paper: 1). */
    unsigned memPorts = 1;

    /**
     * Livelock watchdog threshold: cycles without any issue event
     * (while instructions remain) before the run aborts with a
     * diagnostic SimError.  0 = kDefaultWatchdogCycles.
     */
    ClockCycle watchdogCycles = 0;
};

/**
 * The multiple-issue instruction-buffer machine.
 */
class MultiIssueSim : public Simulator
{
  public:
    /** @throws ConfigError on a zero width / unit / port count. */
    MultiIssueSim(const MultiIssueConfig &org, const MachineConfig &cfg);

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override;
    std::string cacheKey() const override;
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

    /** Organization knobs (the batched sweep kernel mirrors them). */
    const MultiIssueConfig &org() const { return org_; }

  private:
    /**
     * run() body, compiled once with audit emission and once without
     * so the audit-off issue loop carries no per-event branches.
     */
    template <bool kAudit>
    SimResult runImpl(const DecodedTrace &trace);

    MultiIssueConfig org_;
    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_MULTI_ISSUE_SIM_HH
