/**
 * @file
 * Tomasulo machine implementation.
 *
 * The simulation is event driven (no cycle loop): instructions are
 * processed in program order, and every timing constraint resolves
 * to a max() over previously computed completion times plus
 * first-free-slot searches in small reservation sets.
 */

#include "mfusim/sim/tomasulo_sim.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <set>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

TomasuloSim::TomasuloSim(const TomasuloConfig &org,
                         const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.stationsPerFu < 1)
        throw ConfigError("TomasuloSim: stationsPerFu must be >= 1");
    if (org_.cdbCount < 1)
        throw ConfigError("TomasuloSim: cdbCount must be >= 1");
    if (cfg_.predictor.armed())
        throw ConfigError(
            "TomasuloSim: branch prediction is not modeled for the"
            " single-issue machines (drop the predictor spec)");
}

std::string
TomasuloSim::name() const
{
    return "Tomasulo(rs=" + std::to_string(org_.stationsPerFu) +
        ", cdb=" + std::to_string(org_.cdbCount) + ")";
}

std::string
TomasuloSim::cacheKey() const
{
    return "tomasulo|rs=" + std::to_string(org_.stationsPerFu) +
        "|cdb=" + std::to_string(org_.cdbCount) +
        "|bp=" + branchPolicyName(org_.branchPolicy);
}

SimResult
TomasuloSim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kObs>
SimResult
TomasuloSim::runImpl(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const std::size_t n = trace.size();

    if (trace.hasVector()) {
        throw SimError(
            "TomasuloSim: vector instructions are not supported");
    }

    // Renaming: value completion time per architectural register
    // (tags resolve to the last writer in program order; since we
    // process in program order, a simple per-register completion
    // time is exactly tag semantics).
    std::array<ClockCycle, kNumRegs> value_ready{};

    // Station occupancy per FU class: completion (broadcast) times
    // of the live stations.  A multiset (not a priority queue) so
    // the steady-state snapshot can enumerate and shift it.
    std::array<std::multiset<ClockCycle>, kNumFuClasses> stations;

    // Per-FU pipeline accept slots and CDB slots (out-of-order
    // arrivals -> reservation sets).
    std::array<std::set<ClockCycle>, kNumFuClasses> fu_slots;
    std::set<ClockCycle> mem_slots;
    std::vector<std::set<ClockCycle>> cdb(org_.cdbCount);

    // First cycle at or after @p from with no reservation in @p s.
    // A no-progress scan adds nothing to the set, so the walk finds
    // exactly the cycle one-by-one probing would.
    const auto nextFree = [](const std::set<ClockCycle> &s,
                             ClockCycle from) {
        auto it = s.lower_bound(from);
        while (it != s.end() && *it == from) {
            ++from;
            ++it;
        }
        return from;
    };

    ClockCycle issue_cursor = 0;
    ClockCycle end = 0;

    // Steady-state fast path (off under audit).  Boundary state:
    // live register values, station broadcast times, and the accept /
    // CDB reservation sets pruned to the future, rebased to the
    // issue cursor.
    const bool steady = steadyStateEnabled() && !kObs;
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();
    const std::vector<RegId> &written = trace.writtenRegs();

    // Reservations at or before @p base can never be probed again
    // (future probes start after the issue cursor): drop them.
    const auto prune = [](auto &s, ClockCycle base) {
        s.erase(s.begin(), s.upper_bound(base));
    };
    const auto appendSet = [](const auto &s, ClockCycle base,
                              std::vector<std::uint64_t> &sig) {
        sig.push_back(s.size());
        for (const ClockCycle v : s)
            sig.push_back(v - base);
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (i == boundary) {
            if (tracker.beginObserve(i)) {
                const ClockCycle base = issue_cursor;
                auto &sig = tracker.sigBuffer();
                for (const RegId r : written) {
                    if (value_ready[r] > base) {
                        sig.push_back(r);
                        sig.push_back(value_ready[r] - base);
                    }
                }
                sig.push_back(sig.size());  // section delimiter
                for (auto &pool : stations) {
                    prune(pool, base);      // past broadcasts are
                    appendSet(pool, base, sig); // popped lazily anyway
                }
                for (auto &unit : fu_slots) {
                    prune(unit, base);
                    appendSet(unit, base, sig);
                }
                prune(mem_slots, base);
                appendSet(mem_slots, base, sig);
                for (auto &bus : cdb) {
                    prune(bus, base);
                    appendSet(bus, base, sig);
                }
                sig.push_back(end - base);  // end >= cursor: exact
                if (const auto skip =
                        tracker.finishObserve(base, nullptr, 0)) {
                    i += skip->ops;
                    issue_cursor += skip->delta;
                    end += skip->delta;
                    for (ClockCycle &r : value_ready)
                        r += skip->delta;
                    const auto shiftSet = [&](auto &s) {
                        std::decay_t<decltype(s)> shifted;
                        for (const ClockCycle v : s)
                            shifted.insert(shifted.end(),
                                           v + skip->delta);
                        s.swap(shifted);
                    };
                    for (auto &pool : stations)
                        shiftSet(pool);
                    for (auto &unit : fu_slots)
                        shiftSet(unit);
                    shiftSet(mem_slots);
                    for (auto &bus : cdb)
                        shiftSet(bus);
                }
            }
            boundary = tracker.nextBoundary();
        }
        const unsigned latency = trace.latency(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        if (trace.isBranch(i)) {
            const ClockCycle cond_ready =
                srcA != kNoReg ? value_ready[srcA] : 0;
            const bool predicted_free =
                org_.branchPolicy == BranchPolicy::kOracle ||
                (org_.branchPolicy == BranchPolicy::kBtfn &&
                 trace.btfnCorrect(i));
            if (predicted_free) {
                const ClockCycle t = issue_cursor;
                if constexpr (kObs)
                    emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + 1;
                end = std::max(end, t + 1);
            } else {
                const ClockCycle t =
                    std::max(issue_cursor, cond_ready);
                if constexpr (kObs) {
                    emitAudit(AuditPhase::kIssue, t, i);
                    emitStall(StallCause::kBranch, issue_cursor,
                              t - issue_cursor, i);
                    emitStall(StallCause::kBranch, t + 1,
                              cfg_.branchTime - 1, i);
                }
                issue_cursor = t + cfg_.branchTime;
                end = std::max(end, t + cfg_.branchTime);
            }
            continue;
        }

        const unsigned fu = unsigned(trace.fu(i));
        const bool is_transfer = trace.isTransfer(i);

        // ---- issue: in order, blocks only on a full station pool.
        ClockCycle t = issue_cursor;
        if (!is_transfer) {
            auto &pool = stations[fu];
            // Free every station whose broadcast is already past.
            while (!pool.empty() && *pool.begin() <= t)
                pool.erase(pool.begin());
            while (pool.size() >= org_.stationsPerFu) {
                t = std::max(t, *pool.begin());
                while (!pool.empty() && *pool.begin() <= t)
                    pool.erase(pool.begin());
            }
        }
        // The only in-order issue blocker is a full station pool;
        // operand and CDB waits happen out at the stations.
        if constexpr (kObs)
            emitStall(StallCause::kBufferDrain, issue_cursor,
                      t - issue_cursor, i);

        // ---- dispatch: operands by tag, then a pipeline slot.
        ClockCycle dispatch = t + 1;    // station latch
        if (srcA != kNoReg)
            dispatch = std::max(dispatch, value_ready[srcA]);
        if (srcB != kNoReg)
            dispatch = std::max(dispatch, value_ready[srcB]);

        ClockCycle completion;
        std::int32_t claimed_cdb = -1;
        if (is_transfer) {
            completion = dispatch + latency;
        } else {
            // Claim an accept slot (one per unit per cycle) and a
            // CDB slot at completion.  On a CDB conflict, jump to
            // the earliest free CDB slot across the buses: every
            // cycle before it has all buses taken, so the jump lands
            // exactly where one-by-one retrying would.
            std::set<ClockCycle> &unit = trace.isMemory(i) ?
                mem_slots : fu_slots[fu];
            const bool produces = trace.producesResult(i);
            while (true) {
                const ClockCycle probe = nextFree(unit, dispatch);
                if (produces) {
                    bool got_cdb = false;
                    ClockCycle earliest =
                        std::numeric_limits<ClockCycle>::max();
                    for (std::size_t b = 0; b < cdb.size(); ++b) {
                        const ClockCycle slot =
                            nextFree(cdb[b], probe + latency);
                        if (slot == probe + latency) {
                            cdb[b].insert(slot);
                            claimed_cdb = std::int32_t(b);
                            got_cdb = true;
                            break;
                        }
                        earliest = std::min(earliest, slot);
                    }
                    if (!got_cdb) {
                        dispatch = earliest - latency;
                        continue;
                    }
                }
                unit.insert(probe);
                dispatch = probe;
                break;
            }
            completion = dispatch + latency;
            stations[fu].insert(completion);
        }

        if constexpr (kObs) {
            emitAudit(AuditPhase::kIssue, t, i);
            emitAudit(AuditPhase::kDispatch, dispatch, i);
            emitAudit(AuditPhase::kComplete, completion, i,
                      claimed_cdb);
        }
        if (dst != kNoReg)
            value_ready[dst] = completion;
        issue_cursor = t + 1;
        end = std::max(end, completion);
    }

    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    return result;
}

AuditRules
TomasuloSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kDispatch;
    rules.execPhase = AuditPhase::kDispatch;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.checkBranchFloor = true;
    // Renaming by tag: WAW never serializes completion.
    rules.completionConsistent = true;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount = org_.cdbCount;
    rules.busKind = BusKind::kPerUnit;
    rules.checkFuCaps = true;
    rules.stationsPerFu = org_.stationsPerFu;
    return rules;
}

} // namespace mfusim
