/**
 * @file
 * Tomasulo machine implementation.
 *
 * The simulation is event driven (no cycle loop): instructions are
 * processed in program order, and every timing constraint resolves
 * to a max() over previously computed completion times plus
 * first-free-slot searches in small reservation sets.
 */

#include "mfusim/sim/tomasulo_sim.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <set>
#include <vector>

#include "mfusim/core/error.hh"

namespace mfusim
{

TomasuloSim::TomasuloSim(const TomasuloConfig &org,
                         const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.stationsPerFu < 1)
        throw ConfigError("TomasuloSim: stationsPerFu must be >= 1");
    if (org_.cdbCount < 1)
        throw ConfigError("TomasuloSim: cdbCount must be >= 1");
}

std::string
TomasuloSim::name() const
{
    return "Tomasulo(rs=" + std::to_string(org_.stationsPerFu) +
        ", cdb=" + std::to_string(org_.cdbCount) + ")";
}

SimResult
TomasuloSim::run(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const std::size_t n = trace.size();

    if (trace.hasVector()) {
        throw SimError(
            "TomasuloSim: vector instructions are not supported");
    }

    // Renaming: value completion time per architectural register
    // (tags resolve to the last writer in program order; since we
    // process in program order, a simple per-register completion
    // time is exactly tag semantics).
    std::array<ClockCycle, kNumRegs> value_ready{};

    // Station occupancy per FU class: completion (broadcast) times
    // of the live stations.
    std::array<std::priority_queue<ClockCycle,
                                   std::vector<ClockCycle>,
                                   std::greater<ClockCycle>>,
               kNumFuClasses>
        stations;

    // Per-FU pipeline accept slots and CDB slots (out-of-order
    // arrivals -> reservation sets).
    std::array<std::set<ClockCycle>, kNumFuClasses> fu_slots;
    std::set<ClockCycle> mem_slots;
    std::vector<std::set<ClockCycle>> cdb(org_.cdbCount);

    ClockCycle issue_cursor = 0;
    ClockCycle end = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const unsigned latency = trace.latency(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        if (trace.isBranch(i)) {
            const ClockCycle cond_ready =
                srcA != kNoReg ? value_ready[srcA] : 0;
            const bool predicted_free =
                org_.branchPolicy == BranchPolicy::kOracle ||
                (org_.branchPolicy == BranchPolicy::kBtfn &&
                 trace.btfnCorrect(i));
            if (predicted_free) {
                const ClockCycle t = issue_cursor;
                emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + 1;
                end = std::max(end, t + 1);
            } else {
                const ClockCycle t =
                    std::max(issue_cursor, cond_ready);
                emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + cfg_.branchTime;
                end = std::max(end, t + cfg_.branchTime);
            }
            continue;
        }

        const unsigned fu = unsigned(trace.fu(i));
        const bool is_transfer = trace.isTransfer(i);

        // ---- issue: in order, blocks only on a full station pool.
        ClockCycle t = issue_cursor;
        if (!is_transfer) {
            auto &pool = stations[fu];
            // Free every station whose broadcast is already past.
            while (!pool.empty() && pool.top() <= t)
                pool.pop();
            while (pool.size() >= org_.stationsPerFu) {
                t = std::max(t, pool.top());
                while (!pool.empty() && pool.top() <= t)
                    pool.pop();
            }
        }

        // ---- dispatch: operands by tag, then a pipeline slot.
        ClockCycle dispatch = t + 1;    // station latch
        if (srcA != kNoReg)
            dispatch = std::max(dispatch, value_ready[srcA]);
        if (srcB != kNoReg)
            dispatch = std::max(dispatch, value_ready[srcB]);

        ClockCycle completion;
        std::int32_t claimed_cdb = -1;
        if (is_transfer) {
            completion = dispatch + latency;
        } else {
            // Claim an accept slot (one per unit per cycle) and a
            // CDB slot at completion; retry if the CDB cycle is
            // taken.
            std::set<ClockCycle> &unit = trace.isMemory(i) ?
                mem_slots : fu_slots[fu];
            const bool produces = trace.producesResult(i);
            ClockCycle retries = 0;
            while (true) {
                ClockCycle probe = dispatch;
                while (unit.count(probe) != 0)
                    ++probe;
                if (produces) {
                    bool got_cdb = false;
                    for (std::size_t b = 0; b < cdb.size(); ++b) {
                        if (cdb[b].count(probe + latency) == 0) {
                            cdb[b].insert(probe + latency);
                            claimed_cdb = std::int32_t(b);
                            got_cdb = true;
                            break;
                        }
                    }
                    if (!got_cdb) {
                        if (++retries > kDefaultWatchdogCycles) {
                            throw SimError(
                                "TomasuloSim: no free CDB slot"
                                " after " +
                                std::to_string(retries) +
                                " cycles for op #" +
                                std::to_string(i) +
                                " dispatching at cycle " +
                                std::to_string(probe));
                        }
                        dispatch = probe + 1;
                        continue;
                    }
                }
                unit.insert(probe);
                dispatch = probe;
                break;
            }
            completion = dispatch + latency;
            stations[fu].push(completion);
        }

        emitAudit(AuditPhase::kIssue, t, i);
        emitAudit(AuditPhase::kDispatch, dispatch, i);
        emitAudit(AuditPhase::kComplete, completion, i, claimed_cdb);
        if (dst != kNoReg)
            value_ready[dst] = completion;
        issue_cursor = t + 1;
        end = std::max(end, completion);
    }

    result.cycles = end;
    return result;
}

AuditRules
TomasuloSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kDispatch;
    rules.execPhase = AuditPhase::kDispatch;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.checkBranchFloor = true;
    // Renaming by tag: WAW never serializes completion.
    rules.completionConsistent = true;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount = org_.cdbCount;
    rules.busKind = BusKind::kPerUnit;
    rules.checkFuCaps = true;
    rules.stationsPerFu = org_.stationsPerFu;
    return rules;
}

} // namespace mfusim
