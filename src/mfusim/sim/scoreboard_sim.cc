/**
 * @file
 * Single-issue scoreboard machine implementation.
 */

#include "mfusim/sim/scoreboard_sim.hh"

#include <algorithm>
#include <array>

#include "mfusim/core/error.hh"
#include "mfusim/funits/result_bus.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

ScoreboardConfig
ScoreboardConfig::serialMemory()
{
    return { FuDiscipline::kNonSegmented, MemDiscipline::kSerial, true };
}

ScoreboardConfig
ScoreboardConfig::nonSegmented()
{
    return { FuDiscipline::kNonSegmented, MemDiscipline::kInterleaved,
             true };
}

ScoreboardConfig
ScoreboardConfig::crayLike()
{
    return { FuDiscipline::kSegmented, MemDiscipline::kInterleaved,
             true };
}

ScoreboardSim::ScoreboardSim(const ScoreboardConfig &org,
                             const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.fuCopies < 1)
        throw ConfigError("ScoreboardSim: fuCopies must be >= 1");
    if (org_.memPorts < 1)
        throw ConfigError("ScoreboardSim: memPorts must be >= 1");
    if (cfg_.predictor.armed())
        throw ConfigError(
            "ScoreboardSim: branch prediction is not modeled for the"
            " single-issue machines (drop the predictor spec)");
}

std::string
ScoreboardSim::name() const
{
    if (org_.memDiscipline == MemDiscipline::kSerial)
        return "SerialMemory";
    if (org_.fuDiscipline == FuDiscipline::kNonSegmented)
        return "NonSegmented";
    return "CRAY-like";
}

std::string
ScoreboardSim::cacheKey() const
{
    return std::string("scoreboard|fu=") +
        (org_.fuDiscipline == FuDiscipline::kSegmented ? "seg"
                                                       : "nonseg") +
        "|mem=" +
        (org_.memDiscipline == MemDiscipline::kInterleaved
             ? "ilv"
             : "serial") +
        "|rbus=" + (org_.modelResultBus ? "1" : "0") +
        "|bp=" + branchPolicyName(org_.branchPolicy) +
        "|chain=" + (org_.vectorChaining ? "1" : "0") +
        "|fuc=" + std::to_string(org_.fuCopies) +
        "|mp=" + std::to_string(org_.memPorts);
}

SimResult
ScoreboardSim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kObs>
SimResult
ScoreboardSim::runImpl(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    result.hasStalls = true;

    std::array<ClockCycle, kNumRegs> regReady{};
    // First-element availability of vector results (== regReady for
    // scalar results); vector consumers read it when chaining.
    std::array<ClockCycle, kNumRegs> chainReady{};
    FuPool pool({ org_.fuDiscipline, org_.memDiscipline,
                  org_.fuCopies, org_.memPorts },
                cfg_);
    ResultBusSet bus(BusKind::kSingle, 1);

    ClockCycle issue_cursor = 0;    // earliest next issue slot
    ClockCycle end = 0;

    const std::size_t n = trace.size();

    // Steady-state fast path (off under audit: the event stream
    // must be complete).  The machine's timing state at an iteration
    // boundary is the live part of the register ready times, the
    // pool and bus timelines and the end watermark, all rebased to
    // the issue cursor; once it repeats across boundaries, the
    // remaining iterations shift by a constant delta.
    const bool steady = steadyStateEnabled() && !kObs;
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();
    // Only registers the trace writes can ever hold a live ready
    // time, so signatures scan this cached list instead of all
    // kNumRegs (or all ops) per run.
    const std::vector<RegId> &written = trace.writtenRegs();
    const bool has_vector = trace.hasVector();

    for (std::size_t i = 0; i < n; ++i) {
        if (i == boundary) {
            if (tracker.beginObserve(i)) {
                const ClockCycle base = issue_cursor;
                auto &sig = tracker.sigBuffer();
                for (const RegId r : written) {
                    if (regReady[r] > base) {
                        sig.push_back(r);
                        sig.push_back(regReady[r] - base);
                    }
                }
                sig.push_back(sig.size());  // section delimiter
                if (has_vector) {
                    for (const RegId r : written) {
                        if (chainReady[r] > base) {
                            sig.push_back(r);
                            sig.push_back(chainReady[r] - base);
                        }
                    }
                    sig.push_back(sig.size());
                }
                pool.appendSignature(base, sig);
                bus.appendSignature(base, sig);
                sig.push_back(end - base);  // end >= cursor: exact
                const std::uint64_t counters[5] = {
                    result.stalls.raw, result.stalls.waw,
                    result.stalls.structural,
                    result.stalls.resultBus, result.stalls.branch
                };
                if (const auto skip =
                        tracker.finishObserve(base, counters, 5)) {
                    i += skip->ops;
                    issue_cursor += skip->delta;
                    end += skip->delta;
                    // Live times shift with the clock; stale times
                    // (<= base) stay stale relative to the shifted
                    // cursor, so the blanket shift is exact.
                    for (ClockCycle &r : regReady)
                        r += skip->delta;
                    for (ClockCycle &r : chainReady)
                        r += skip->delta;
                    pool.shiftTime(skip->delta);
                    bus.shiftTime(skip->delta);
                    result.stalls.raw += skip->counters[0];
                    result.stalls.waw += skip->counters[1];
                    result.stalls.structural += skip->counters[2];
                    result.stalls.resultBus += skip->counters[3];
                    result.stalls.branch += skip->counters[4];
                }
            }
            boundary = tracker.nextBoundary();
        }
        const unsigned latency = trace.latency(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        if (trace.isBranch(i)) {
            const ClockCycle cond_ready =
                srcA != kNoReg ? regReady[srcA] : 0;
            const bool predicted_free =
                org_.branchPolicy == BranchPolicy::kOracle ||
                (org_.branchPolicy == BranchPolicy::kBtfn &&
                 trace.btfnCorrect(i));
            if (predicted_free) {
                // Correctly predicted: the branch spends one issue
                // slot and never gates the stream.
                const ClockCycle t = issue_cursor;
                if constexpr (kObs)
                    emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + 1;
                end = std::max(end, t + 1);
            } else {
                // Blocking (and mispredicted-BTFN, which redirects
                // once the outcome is known): wait for the
                // condition, then hold the issue stage for the
                // branch time.
                const ClockCycle t =
                    std::max(issue_cursor, cond_ready);
                result.stalls.branch +=
                    (t - issue_cursor) + (cfg_.branchTime - 1);
                if constexpr (kObs) {
                    emitAudit(AuditPhase::kIssue, t, i);
                    emitStall(StallCause::kBranch, issue_cursor,
                              t - issue_cursor, i);
                    emitStall(StallCause::kBranch, t + 1,
                              cfg_.branchTime - 1, i);
                }
                issue_cursor = t + cfg_.branchTime;
                end = std::max(end, t + cfg_.branchTime);
            }
            continue;
        }

        const bool vector_op = trace.isVector(i);
        const unsigned occupancy = trace.occupancy(i);
        const FuClass fu = trace.fu(i);

        // Earliest cycle with all register hazards cleared,
        // attributing waits to the binding hazard in check order.
        // A chained vector consumer waits only for the first element
        // of a vector source.
        const bool chain = vector_op && org_.vectorChaining;
        ClockCycle t = issue_cursor;
        for (const RegId src : { srcA, srcB }) {
            if (src == kNoReg)
                continue;
            const bool v_src = classOf(src) == RegClass::V;
            t = std::max(t, chain && v_src ? chainReady[src]
                                           : regReady[src]);
        }
        result.stalls.raw += t - issue_cursor;
        if constexpr (kObs)
            emitStall(StallCause::kRaw, issue_cursor,
                      t - issue_cursor, i);
        ClockCycle mark = t;
        if (dst != kNoReg)
            t = std::max(t, regReady[dst]);         // WAW reservation
        result.stalls.waw += t - mark;
        if constexpr (kObs)
            emitStall(StallCause::kWaw, mark, t - mark, i);

        // Structural hazards: functional unit, then result bus.
        // Vector results stream over the vector register write
        // paths, not the scalar result bus.
        const bool needs_bus = org_.modelResultBus &&
            trace.producesResult(i) && !vector_op;
        while (true) {
            const ClockCycle at_fu = pool.earliestAccept(fu, t);
            result.stalls.structural += at_fu - t;
            if constexpr (kObs)
                emitStall(StallCause::kFuBusy, t, at_fu - t, i);
            t = at_fu;
            if (needs_bus) {
                bus.advanceTo(t);
                // Jump straight to the first free completion slot:
                // no new reservations can appear while this op
                // waits, so the next-event scan is exact, and every
                // skipped cycle is a result-bus stall exactly as if
                // stepped one by one.  (The 64-cycle bus window
                // always has a free slot, so this terminates.)
                const ClockCycle slot =
                    bus.earliestReserve(0, t + latency);
                if (slot != t + latency) {
                    result.stalls.resultBus += slot - (t + latency);
                    if constexpr (kObs)
                        emitStall(StallCause::kBusBusy, t,
                                  slot - (t + latency), i);
                    t = slot - latency;
                    continue;   // recheck the unit at the later cycle
                }
            }
            break;
        }

        // Issue.
        const ClockCycle ready = pool.accept(fu, t, latency, occupancy);
        if constexpr (kObs) {
            emitAudit(AuditPhase::kIssue, t, i);
            emitAudit(AuditPhase::kComplete, ready, i,
                      needs_bus ? 0 : -1);
        }
        if (needs_bus)
            bus.reserve(0, ready);
        if (dst != kNoReg) {
            regReady[dst] = ready;
            // First element of a vector result streams out after
            // one unit latency.
            chainReady[dst] =
                occupancy > 1 ? t + latency + 1 : ready;
        }

        issue_cursor = t + 1;
        end = std::max(end, ready);
    }

    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    return result;
}

AuditRules
ScoreboardSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kIssue;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.checkBranchFloor = true;
    rules.wawOrdered = true;
    rules.completionConsistent = true;
    rules.vectorChaining = org_.vectorChaining;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount = org_.modelResultBus ? 1 : 0;
    rules.busKind = BusKind::kSingle;
    rules.checkFuCaps = true;
    rules.fuDiscipline = org_.fuDiscipline;
    rules.memDiscipline = org_.memDiscipline;
    rules.fuCopies = org_.fuCopies;
    rules.memPorts = org_.memPorts;
    return rules;
}

} // namespace mfusim
