/**
 * @file
 * Single-issue scoreboard machine implementation.
 */

#include "mfusim/sim/scoreboard_sim.hh"

#include <algorithm>
#include <array>

#include "mfusim/core/error.hh"
#include "mfusim/funits/result_bus.hh"

namespace mfusim
{

ScoreboardConfig
ScoreboardConfig::serialMemory()
{
    return { FuDiscipline::kNonSegmented, MemDiscipline::kSerial, true };
}

ScoreboardConfig
ScoreboardConfig::nonSegmented()
{
    return { FuDiscipline::kNonSegmented, MemDiscipline::kInterleaved,
             true };
}

ScoreboardConfig
ScoreboardConfig::crayLike()
{
    return { FuDiscipline::kSegmented, MemDiscipline::kInterleaved,
             true };
}

ScoreboardSim::ScoreboardSim(const ScoreboardConfig &org,
                             const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.fuCopies < 1)
        throw ConfigError("ScoreboardSim: fuCopies must be >= 1");
    if (org_.memPorts < 1)
        throw ConfigError("ScoreboardSim: memPorts must be >= 1");
}

std::string
ScoreboardSim::name() const
{
    if (org_.memDiscipline == MemDiscipline::kSerial)
        return "SerialMemory";
    if (org_.fuDiscipline == FuDiscipline::kNonSegmented)
        return "NonSegmented";
    return "CRAY-like";
}

SimResult
ScoreboardSim::run(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    result.hasStalls = true;

    std::array<ClockCycle, kNumRegs> regReady{};
    // First-element availability of vector results (== regReady for
    // scalar results); vector consumers read it when chaining.
    std::array<ClockCycle, kNumRegs> chainReady{};
    FuPool pool({ org_.fuDiscipline, org_.memDiscipline,
                  org_.fuCopies, org_.memPorts },
                cfg_);
    ResultBusSet bus(BusKind::kSingle, 1);

    ClockCycle issue_cursor = 0;    // earliest next issue slot
    ClockCycle end = 0;

    const std::size_t n = trace.size();
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned latency = trace.latency(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        if (trace.isBranch(i)) {
            const ClockCycle cond_ready =
                srcA != kNoReg ? regReady[srcA] : 0;
            const bool predicted_free =
                org_.branchPolicy == BranchPolicy::kOracle ||
                (org_.branchPolicy == BranchPolicy::kBtfn &&
                 trace.btfnCorrect(i));
            if (predicted_free) {
                // Correctly predicted: the branch spends one issue
                // slot and never gates the stream.
                const ClockCycle t = issue_cursor;
                emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + 1;
                end = std::max(end, t + 1);
            } else {
                // Blocking (and mispredicted-BTFN, which redirects
                // once the outcome is known): wait for the
                // condition, then hold the issue stage for the
                // branch time.
                const ClockCycle t =
                    std::max(issue_cursor, cond_ready);
                emitAudit(AuditPhase::kIssue, t, i);
                result.stalls.branch +=
                    (t - issue_cursor) + (cfg_.branchTime - 1);
                issue_cursor = t + cfg_.branchTime;
                end = std::max(end, t + cfg_.branchTime);
            }
            continue;
        }

        const bool vector_op = trace.isVector(i);
        const unsigned occupancy = trace.occupancy(i);
        const FuClass fu = trace.fu(i);

        // Earliest cycle with all register hazards cleared,
        // attributing waits to the binding hazard in check order.
        // A chained vector consumer waits only for the first element
        // of a vector source.
        const bool chain = vector_op && org_.vectorChaining;
        ClockCycle t = issue_cursor;
        for (const RegId src : { srcA, srcB }) {
            if (src == kNoReg)
                continue;
            const bool v_src = classOf(src) == RegClass::V;
            t = std::max(t, chain && v_src ? chainReady[src]
                                           : regReady[src]);
        }
        result.stalls.raw += t - issue_cursor;
        ClockCycle mark = t;
        if (dst != kNoReg)
            t = std::max(t, regReady[dst]);         // WAW reservation
        result.stalls.waw += t - mark;

        // Structural hazards: functional unit, then result bus.
        // Vector results stream over the vector register write
        // paths, not the scalar result bus.
        const bool needs_bus = org_.modelResultBus &&
            trace.producesResult(i) && !vector_op;
        ClockCycle retries = 0;
        while (true) {
            const ClockCycle at_fu = pool.earliestAccept(fu, t);
            result.stalls.structural += at_fu - t;
            t = at_fu;
            if (needs_bus) {
                bus.advanceTo(t);
                if (!bus.canReserve(0, t + latency)) {
                    if (++retries > kDefaultWatchdogCycles) {
                        throw SimError(
                            "ScoreboardSim: no free result-bus slot"
                            " after " +
                            std::to_string(retries) +
                            " cycles for op #" + std::to_string(i) +
                            " at cycle " + std::to_string(t));
                    }
                    result.stalls.resultBus += 1;
                    ++t;
                    continue;
                }
            }
            break;
        }

        // Issue.
        const ClockCycle ready = pool.accept(fu, t, latency, occupancy);
        emitAudit(AuditPhase::kIssue, t, i);
        emitAudit(AuditPhase::kComplete, ready, i, needs_bus ? 0 : -1);
        if (needs_bus)
            bus.reserve(0, ready);
        if (dst != kNoReg) {
            regReady[dst] = ready;
            // First element of a vector result streams out after
            // one unit latency.
            chainReady[dst] =
                occupancy > 1 ? t + latency + 1 : ready;
        }

        issue_cursor = t + 1;
        end = std::max(end, ready);
    }

    result.cycles = end;
    return result;
}

AuditRules
ScoreboardSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kIssue;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.checkBranchFloor = true;
    rules.wawOrdered = true;
    rules.completionConsistent = true;
    rules.vectorChaining = org_.vectorChaining;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount = org_.modelResultBus ? 1 : 0;
    rules.busKind = BusKind::kSingle;
    rules.checkFuCaps = true;
    rules.fuDiscipline = org_.fuDiscipline;
    rules.memDiscipline = org_.memDiscipline;
    rules.fuCopies = org_.fuCopies;
    rules.memPorts = org_.memPorts;
    return rules;
}

} // namespace mfusim
