/**
 * @file
 * Steady-state tracker implementation.
 */

#include "mfusim/sim/steady_state.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

namespace mfusim
{

namespace
{

bool
initialEnable()
{
    // MFUSIM_NO_STEADY_STATE=1 (any non-empty value but "0")
    // disables the fast path for the whole process.
    const char *value = std::getenv("MFUSIM_NO_STEADY_STATE");
    if (value == nullptr || *value == '\0')
        return true;
    return value[0] == '0' && value[1] == '\0';
}

std::atomic<bool> g_steadyEnabled{ initialEnable() };

} // namespace

bool
steadyStateEnabled()
{
    return g_steadyEnabled.load(std::memory_order_relaxed);
}

void
setSteadyStateEnabled(bool enabled)
{
    g_steadyEnabled.store(enabled, std::memory_order_relaxed);
}

SteadyStateTracker::SteadyStateTracker(const TracePeriodicity *periods,
                                       std::size_t traceSize)
    : periods_(periods), traceSize_(traceSize), next_(traceSize)
{
    if (periods_ != nullptr)
        resync(0);
}

void
SteadyStateTracker::clearRing()
{
    for (Record &rec : ring_)
        rec.valid = false;
    ringNext_ = 0;
    lastObserved_ = std::size_t(-1);
    lastMatchDist_ = 0;
    lastMatchBoundary_ = std::size_t(-1);
}

void
SteadyStateTracker::resync(std::size_t cursor)
{
    while (segIdx_ < periods_->segments.size()) {
        const TraceSegment &seg = periods_->segments[segIdx_];
        // Boundaries 0..count-1 are observation points (observing at
        // the final boundary could never skip anything).
        if (cursor <= seg.base) {
            seg_ = &seg;
            next_ = seg.base;
            return;
        }
        if (cursor < seg.base + (seg.count - 1) * seg.period) {
            const std::size_t k =
                (cursor - seg.base + seg.period - 1) / seg.period;
            seg_ = &seg;
            next_ = seg.base + k * seg.period;
            return;
        }
        ++segIdx_;
        clearRing();
    }
    seg_ = nullptr;
    next_ = traceSize_;
}

bool
SteadyStateTracker::beginObserve(std::size_t cursor)
{
    assert(seg_ != nullptr && cursor >= next_);
    const TraceSegment &seg = *seg_;
    if (cursor >= seg.end()) {
        // The cursor left the periodic region (a wide window can
        // overrun a short segment): resynchronize, no observation.
        ++segIdx_;
        clearRing();
        resync(cursor);
        return false;
    }
    const std::size_t k = (cursor - seg.base) / seg.period;
    obsBoundary_ = k;
    obsOffset_ = cursor - (seg.base + k * seg.period);
    return true;
}

std::vector<std::uint64_t> &
SteadyStateTracker::sigBuffer()
{
    sig_.clear();
    return sig_;
}

void
SteadyStateTracker::cancelObserve()
{
    lastMatchDist_ = 0;
    lastObserved_ = obsBoundary_;
    // Consume the boundary: observe the next one (or next segment).
    if (obsBoundary_ + 1 < seg_->count) {
        next_ = seg_->base + (obsBoundary_ + 1) * seg_->period;
    } else {
        const std::size_t end = seg_->end();
        ++segIdx_;
        clearRing();
        resync(end);
    }
}

std::optional<SteadyStateTracker::Skip>
SteadyStateTracker::finishObserve(ClockCycle base,
                                  const std::uint64_t *counters,
                                  std::size_t numCounters)
{
    assert(numCounters <= kMaxCounters);
    const TraceSegment &seg = *seg_;
    const std::size_t k = obsBoundary_;
    // The cursor-boundary offset is part of the state: only
    // boundaries the simulator reached in the same phase compare
    // equal.
    sig_.push_back(obsOffset_);

    // Most recent matching record = smallest iteration distance m.
    const Record *match = nullptr;
    for (const Record &rec : ring_) {
        if (!rec.valid || rec.boundary >= k || rec.sig != sig_)
            continue;
        if (match == nullptr || rec.boundary > match->boundary)
            match = &rec;
    }

    std::optional<Skip> out;
    std::size_t landing = k;
    if (match != nullptr) {
        const std::size_t m = k - match->boundary;
        // Two consecutive observed boundaries matching at the same
        // distance confirm steady state (K = 2) — or one match
        // suffices when this segment's family was already confirmed
        // earlier in the run (the delta still comes from the
        // same-segment record; only the warm-up is waived).
        const bool confirmed = (lastMatchDist_ == m &&
                                lastMatchBoundary_ == lastObserved_) ||
            std::find(confirmedFamilies_.begin(),
                      confirmedFamilies_.end(),
                      seg.family) != confirmedFamilies_.end();
        if (confirmed) {
            if (std::find(confirmedFamilies_.begin(),
                          confirmedFamilies_.end(),
                          seg.family) == confirmedFamilies_.end())
                confirmedFamilies_.push_back(seg.family);
            // Never extrapolate past the last boundary — and when
            // the cursor sits past the boundary (offset > 0), stop
            // one period short so the landing stays inside the
            // periodic region.  When the segment runs to the very
            // end of the trace, stop one period short too: every
            // simulator resumes by executing the op at the landing
            // cursor, so the landing must be a real op index.
            std::size_t maxK = seg.count - (obsOffset_ > 0 ? 1 : 0);
            if (seg.end() == traceSize_ && maxK == seg.count)
                --maxK;
            const std::size_t groups = maxK > k ? (maxK - k) / m : 0;
            if (groups > 0) {
                Skip skip;
                skip.ops =
                    std::uint64_t(groups) * m * seg.period;
                assert(base > match->base);
                skip.delta = ClockCycle(groups) * (base - match->base);
                for (std::size_t c = 0; c < numCounters; ++c) {
                    skip.counters[c] = std::uint64_t(groups) *
                        (counters[c] - match->counters[c]);
                }
                opsSkipped_ += skip.ops;
                landing = k + groups * m;
                out = skip;
            }
        }
        lastMatchDist_ = m;
        lastMatchBoundary_ = k;
    } else {
        lastMatchDist_ = 0;
    }
    lastObserved_ = k;

    if (out.has_value()) {
        // Fewer than m boundaries remain after the landing; no
        // further skip is possible in this segment, so forget the
        // (now stale-based) records.
        clearRing();
    } else {
        Record &rec = ring_[ringNext_];
        ringNext_ = (ringNext_ + 1) % kRing;
        rec.valid = true;
        rec.boundary = k;
        rec.base = base;
        rec.counters.fill(0);
        for (std::size_t c = 0; c < numCounters; ++c)
            rec.counters[c] = counters[c];
        rec.sig = sig_;
    }

    if (landing + 1 < seg.count) {
        next_ = seg.base + (landing + 1) * seg.period;
    } else {
        const std::size_t end = seg.end();
        ++segIdx_;
        clearRing();
        resync(end);
    }
    return out;
}

} // namespace mfusim
