/**
 * @file
 * CDC 6600-style issue implementation.
 */

#include "mfusim/sim/cdc6600_sim.hh"

#include <algorithm>
#include <array>

#include <set>

#include "mfusim/core/error.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

SimResult
Cdc6600Sim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kObs>
SimResult
Cdc6600Sim::runImpl(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();

    if (trace.hasVector()) {
        throw SimError(
            "Cdc6600Sim: vector instructions are not supported");
    }

    // Completion time of the current value of each register.
    std::array<ClockCycle, kNumRegs> regReady{};
    // Time each unit's single waiting station frees (the parked
    // instruction entered the execution pipeline).
    std::array<ClockCycle, kNumFuClasses> stationFree{};
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved },
                cfg_);
    // Completion times can regress between successive instructions
    // (dispatch waits at the units), so the single result bus uses
    // an unbounded reservation set rather than a sliding window.
    std::set<ClockCycle> bus_reserved;

    ClockCycle issue_cursor = 0;
    ClockCycle end = 0;

    const std::size_t n = trace.size();

    // Steady-state fast path (see sim/steady_state.hh; off under
    // audit).  Boundary state: live register ready times, waiting
    // stations, the pool, and the outstanding bus reservations, all
    // rebased to the issue cursor.
    const bool steady = steadyStateEnabled() && !kObs;
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();
    const std::vector<RegId> &written = trace.writtenRegs();

    for (std::size_t i = 0; i < n; ++i) {
        if (i == boundary) {
            if (tracker.beginObserve(i)) {
                const ClockCycle base = issue_cursor;
                // Reservations at or before the cursor can never
                // conflict again (future probes are later): prune,
                // which also bounds the set's growth.
                bus_reserved.erase(bus_reserved.begin(),
                                   bus_reserved.upper_bound(base));
                auto &sig = tracker.sigBuffer();
                for (const RegId r : written) {
                    if (regReady[r] > base) {
                        sig.push_back(r);
                        sig.push_back(regReady[r] - base);
                    }
                }
                sig.push_back(sig.size());  // section delimiter
                for (const ClockCycle free : stationFree)
                    sig.push_back(free > base ? free - base : 0);
                pool.appendSignature(base, sig);
                for (const ClockCycle slot : bus_reserved)
                    sig.push_back(slot - base);
                sig.push_back(end - base);  // end >= cursor: exact
                if (const auto skip =
                        tracker.finishObserve(base, nullptr, 0)) {
                    i += skip->ops;
                    issue_cursor += skip->delta;
                    end += skip->delta;
                    for (ClockCycle &r : regReady)
                        r += skip->delta;
                    for (ClockCycle &s : stationFree)
                        s += skip->delta;
                    pool.shiftTime(skip->delta);
                    std::set<ClockCycle> shifted;
                    for (const ClockCycle slot : bus_reserved)
                        shifted.insert(shifted.end(),
                                       slot + skip->delta);
                    bus_reserved.swap(shifted);
                }
            }
            boundary = tracker.nextBoundary();
        }
        const unsigned latency = trace.latency(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        if (trace.isBranch(i)) {
            const ClockCycle cond_ready =
                srcA != kNoReg ? regReady[srcA] : 0;
            const bool predicted_free =
                org_.branchPolicy == BranchPolicy::kOracle ||
                (org_.branchPolicy == BranchPolicy::kBtfn &&
                 trace.btfnCorrect(i));
            if (predicted_free) {
                const ClockCycle t = issue_cursor;
                if constexpr (kObs)
                    emitAudit(AuditPhase::kIssue, t, i);
                issue_cursor = t + 1;
                end = std::max(end, t + 1);
            } else {
                // The 6600 resolves branches in the unified exchange
                // pipeline; we keep the paper's uniform rule: wait
                // for the condition, then block for the branch time.
                const ClockCycle t =
                    std::max(issue_cursor, cond_ready);
                if constexpr (kObs) {
                    emitAudit(AuditPhase::kIssue, t, i);
                    emitStall(StallCause::kBranch, issue_cursor,
                              t - issue_cursor, i);
                    emitStall(StallCause::kBranch, t + 1,
                              cfg_.branchTime - 1, i);
                }
                issue_cursor = t + cfg_.branchTime;
                end = std::max(end, t + cfg_.branchTime);
            }
            continue;
        }

        const FuClass fu_class = trace.fu(i);
        const unsigned fu = unsigned(fu_class);
        const bool is_transfer = trace.isTransfer(i);

        // Issue: blocks on WAW and on an occupied waiting station,
        // but NOT on RAW.
        ClockCycle t = issue_cursor;
        if (dst != kNoReg)
            t = std::max(t, regReady[dst]);             // WAW
        if constexpr (kObs)
            emitStall(StallCause::kWaw, issue_cursor,
                      t - issue_cursor, i);
        const ClockCycle waw_mark = t;
        if (!is_transfer)
            t = std::max(t, stationFree[fu]);           // station busy
        if constexpr (kObs)
            emitStall(StallCause::kFuBusy, waw_mark, t - waw_mark, i);

        // Dispatch: the parked instruction enters its (segmented)
        // unit once its operands exist and the unit can accept.
        ClockCycle dispatch = t;
        if (srcA != kNoReg)
            dispatch = std::max(dispatch, regReady[srcA]);
        if (srcB != kNoReg)
            dispatch = std::max(dispatch, regReady[srcB]);

        const bool needs_bus =
            org_.modelResultBus && trace.producesResult(i);
        while (true) {
            dispatch = pool.earliestAccept(fu_class, dispatch);
            if (needs_bus) {
                // Walk the ordered reservations to the first free
                // completion cycle (exact next-event skip: nothing
                // is ever removed from the set, so the scan finds
                // the same cycle one-by-one probing would).
                ClockCycle slot = dispatch + latency;
                auto it = bus_reserved.lower_bound(slot);
                while (it != bus_reserved.end() && *it == slot) {
                    ++slot;
                    ++it;
                }
                if (slot != dispatch + latency) {
                    dispatch = slot - latency;
                    continue;   // recheck the unit at the later cycle
                }
            }
            break;
        }

        const ClockCycle ready = pool.accept(fu_class, dispatch,
                                             latency);
        if constexpr (kObs) {
            emitAudit(AuditPhase::kIssue, t, i);
            emitAudit(AuditPhase::kDispatch, dispatch, i);
            emitAudit(AuditPhase::kComplete, ready, i,
                      needs_bus ? 0 : -1);
        }
        if (needs_bus)
            bus_reserved.insert(ready);
        if (dst != kNoReg)
            regReady[dst] = ready;
        if (!is_transfer)
            stationFree[fu] = dispatch + 1;

        issue_cursor = t + 1;
        end = std::max(end, ready);
    }

    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    return result;
}

AuditRules
Cdc6600Sim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kDispatch;
    rules.execPhase = AuditPhase::kDispatch;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.checkBranchFloor = true;
    rules.wawOrdered = true;
    rules.completionConsistent = true;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount = org_.modelResultBus ? 1 : 0;
    rules.busKind = BusKind::kSingle;
    rules.checkFuCaps = true;
    rules.waitingStations = true;
    return rules;
}

} // namespace mfusim
