/**
 * @file
 * Batched lockstep sweep kernel implementation.
 *
 * Each kernel below is a line-for-line mirror of its scalar
 * simulator's state transitions (simple_sim.cc, scoreboard_sim.cc,
 * multi_issue_sim.cc): lanes never read each other's state, so any
 * interleaving of per-lane progress yields bit-identical results,
 * and the kernels are free to schedule lanes purely for locality.
 * Any behavioural deviation from the scalar path is a bug — the
 * bit-identity tests compare every field of every SimResult.
 *
 * Three kernel-only engineering choices keep the per-op-lane cost
 * well under the scalar path's:
 *
 *  - **Block-level lockstep.**  Ops are processed in blocks of
 *    kOpBlock: each lane runs a whole block with its hot scalars
 *    (cycle cursors, window bounds, watermarks) in locals — the
 *    compiler keeps them in registers across hundreds of ops — and
 *    the block's trace words stay warm in cache from the previous
 *    lane's visit.  Per-op lockstep would pay a lane-state reload
 *    and store for every op of every lane; per-block lockstep pays
 *    it once per block.  A lane that extrapolates past the block
 *    (steady-state skip) simply leaves early and is passed over by
 *    the blocks its skip crossed.
 *
 *  - **Inline resource state.**  The lanes do not carry FuPool /
 *    ResultBusSet objects; they carry the raw words those classes
 *    wrap (per-class unit-free cycles, the memory port's free cycle,
 *    per-bus 64-cycle reservation word + base) and apply the exact
 *    same transitions inline — the scalar path pays several
 *    cross-TU calls per op for the same arithmetic.  Buses are also
 *    advanced lazily, per touched bus, instead of sliding the whole
 *    set every producing op; sliding composes, so the state a
 *    signature observes is bit-identical either way.  This is why
 *    lanes with replicated units (fuCopies/memPorts > 1) fall back
 *    to the scalar path: the inline state hard-codes the paper's
 *    one-of-each machine.
 *
 *  - **Out-of-struct trackers.**  A steady-state tracker's ring
 *    buffer is kilobytes of boundary history touched only at
 *    segment boundaries; the trackers live in a vector parallel to
 *    the lane states so the per-op state of every lane fits in a
 *    handful of cache lines.
 */

#include "mfusim/sim/batched.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <limits>
#include <memory>

#include "mfusim/core/error.hh"
#include "mfusim/core/registers.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/funits/result_bus.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

namespace
{

constexpr std::uint32_t kNoProd = DecodedTrace::kNoProducer;
constexpr std::size_t kNoIdx = std::numeric_limits<std::size_t>::max();

/** Ops per lockstep block: small enough that a block's trace words
 *  stay cache-resident across all lanes, large enough to amortize
 *  the per-lane state spill/reload at block edges. */
constexpr std::size_t kOpBlock = 256;

// Out of line so the string building does not bloat the issue loop
// it guards (same treatment as the scalar simulator's watchdog).
[[noreturn]] __attribute__((noinline, cold)) void
throwWatchdog(ClockCycle gap, ClockCycle watchdog, std::size_t op)
{
    throw SimError("MultiIssueSim: no issue for " +
                   std::to_string(gap) + " cycles (watchdog " +
                   std::to_string(watchdog) + "; batched lane): op #" +
                   std::to_string(op) + " cannot issue");
}

// ---------------------------------------------------------------
// Inline resource state: the exact transitions of FunctionalUnit,
// MemoryPort (fu_pool.hh) and CycleReservations (result_bus.hh),
// flattened into lane-local words.  Signature blocks reproduce
// FuPool::appendSignature / ResultBusSet::appendSignature for the
// one-of-each machine (fuCopies == 1, memPorts == 1) byte for byte.
// ---------------------------------------------------------------

struct InlinePool
{
    FuDiscipline fuD;
    MemDiscipline memD;
    ClockCycle memLat;
    std::array<ClockCycle, kNumFuClasses> unitFree{};
    ClockCycle portFree = 0;

    InlinePool(FuDiscipline f, MemDiscipline m, unsigned lat)
        : fuD(f), memD(m), memLat(lat)
    {
    }

    static bool
    usesPool(FuClass fu)
    {
        return fu != FuClass::kTransfer && fu != FuClass::kBranch;
    }

    ClockCycle
    earliestAccept(FuClass fu, ClockCycle when) const
    {
        if (!usesPool(fu))
            return when;
        const ClockCycle free = fu == FuClass::kMemory
                                    ? portFree
                                    : unitFree[std::size_t(fu)];
        return free > when ? free : when;
    }

    ClockCycle
    accept(FuClass fu, ClockCycle when, unsigned latency,
           unsigned occupancy = 1)
    {
        if (!usesPool(fu))
            return when + latency + occupancy - 1;
        if (fu == FuClass::kMemory) {
            portFree = memD == MemDiscipline::kInterleaved
                           ? when + occupancy
                           : when + memLat + occupancy - 1;
            return when + memLat + occupancy - 1;
        }
        unitFree[std::size_t(fu)] =
            fuD == FuDiscipline::kSegmented
                ? when + occupancy
                : when + std::max<ClockCycle>(latency, occupancy);
        return when + latency + occupancy - 1;
    }

    void
    shiftTime(ClockCycle delta)
    {
        for (ClockCycle &f : unitFree)
            f += delta;
        portFree += delta;
    }

    // Mirrors FuPool::appendSignature: every unit in class order
    // (unused classes stay 0), then the port.
    void
    appendSignature(ClockCycle base,
                    std::vector<std::uint64_t> &out) const
    {
        for (const ClockCycle f : unitFree)
            out.push_back(f > base ? f - base : 0);
        out.push_back(portFree > base ? portFree - base : 0);
    }
};

struct InlineBusSet
{
    // One bus: the 64-cycle reservation window and its base cycle,
    // kept adjacent so a bus touch is one cache line.
    struct Slot
    {
        ClockCycle base = 0;
        std::uint64_t bits = 0;
    };

    BusKind kind;
    std::vector<Slot> slots;

    InlineBusSet(BusKind k, unsigned numUnits)
        : kind(k), slots(k == BusKind::kSingle ? 1 : numUnits)
    {
    }

    // CycleReservations::advanceTo.  Lazy per-bus: sliding a window
    // forward in one step or many yields the same (base, bits).
    void
    advance(std::size_t b, ClockCycle now)
    {
        Slot &s = slots[b];
        if (now <= s.base)
            return;
        const ClockCycle d = now - s.base;
        s.bits = d >= 64 ? 0 : s.bits >> d;
        s.base = now;
    }

    // CycleReservations::nextFreeSlot; the bus must have been
    // advanced to the current issue time first.
    ClockCycle
    nextFreeSlot(std::size_t b, ClockCycle from) const
    {
        const Slot &s = slots[b];
        if (from < s.base || from >= s.base + 64)
            return from;
        return from + std::countr_one(s.bits >> (from - s.base));
    }

    void
    set(std::size_t b, ClockCycle t)
    {
        slots[b].bits |= std::uint64_t(1) << (t - slots[b].base);
    }

    void
    shiftTime(ClockCycle delta)
    {
        for (Slot &s : slots)
            s.base += delta;
    }

    // Mirrors ResultBusSet::appendSignature.
    void
    appendSignature(ClockCycle sigBase,
                    std::vector<std::uint64_t> &out)
    {
        for (std::size_t b = 0; b < slots.size(); ++b) {
            advance(b, sigBase);
            out.push_back(slots[b].bits);
        }
    }
};

// ---------------------------------------------------------------
// Simple Machine: the whole per-lane state is the end watermark.
// ---------------------------------------------------------------

struct SimpleLaneState
{
    std::size_t lane;               // index into the batch
    const DecodedTrace *trace;
    ClockCycle end = 0;
    std::size_t boundary;
    std::size_t cursor = 0;         // next op this lane executes

    SimpleLaneState(std::size_t laneIdx, const DecodedTrace &t,
                    const SteadyStateTracker &tracker)
        : lane(laneIdx), trace(&t), boundary(tracker.nextBoundary())
    {
    }
};

void
runSimpleLockstep(const std::vector<BatchLane> &lanes,
                  const std::vector<std::size_t> &members,
                  std::vector<SimResult> &results)
{
    const std::size_t n = lanes[members.front()].trace->size();
    const bool steady = steadyStateEnabled();

    std::vector<SimpleLaneState> st;
    std::vector<SteadyStateTracker> trackers;
    st.reserve(members.size());
    trackers.reserve(members.size());
    for (const std::size_t m : members) {
        const DecodedTrace &t = *lanes[m].trace;
        checkDecodedConfig(t, lanes[m].sim->config());
        trackers.emplace_back(steady ? &t.periodicity() : nullptr,
                              t.size());
        st.emplace_back(m, t, trackers.back());
    }

    for (std::size_t b0 = 0; b0 < n; b0 += kOpBlock) {
        const std::size_t b1 = std::min(b0 + kOpBlock, n);
        for (std::size_t li = 0; li < st.size(); ++li) {
            SimpleLaneState &lane = st[li];
            if (lane.cursor >= b1)
                continue;       // extrapolated past this block
            SteadyStateTracker &tracker = trackers[li];
            const DecodedTrace &tr = *lane.trace;
            std::size_t i = lane.cursor;
            std::size_t boundary = lane.boundary;
            ClockCycle end = lane.end;
            while (i < b1) {
                if (i == boundary) {
                    if (tracker.beginObserve(i)) {
                        tracker.sigBuffer();    // state is `end`
                        if (const auto skip = tracker.finishObserve(
                                end, nullptr, 0)) {
                            i += skip->ops;
                            end += skip->delta;
                        }
                    }
                    boundary = tracker.nextBoundary();
                }
                end += tr.latency(i);
                end += tr.occupancy(i) - 1;     // one elem per cycle
                ++i;
            }
            lane.cursor = i;
            lane.boundary = boundary;
            lane.end = end;
        }
    }

    for (std::size_t k = 0; k < st.size(); ++k) {
        SimResult &out = results[st[k].lane];
        out.instructions = n;
        out.cycles = st[k].end;
        out.steadyOpsSkipped = trackers[k].opsSkipped();
    }
}

// ---------------------------------------------------------------
// Scoreboard: per-lane register ready times, pool, bus, stalls.
// ---------------------------------------------------------------

struct ScoreboardLaneState
{
    std::size_t lane;
    const DecodedTrace *trace;
    // The organization/config knobs the issue loop reads, copied
    // out flat so the loop never chases the full config structs.
    BranchPolicy branchPolicy;
    bool vectorChaining;
    bool modelResultBus;
    ClockCycle branchTime;

    std::array<ClockCycle, kNumRegs> regReady{};
    std::array<ClockCycle, kNumRegs> chainReady{};
    InlinePool pool;
    InlineBusSet bus;
    ClockCycle issue_cursor = 0;
    ClockCycle end = 0;
    StallBreakdown stalls;
    std::size_t boundary;
    std::size_t cursor = 0;

    ScoreboardLaneState(std::size_t laneIdx, const DecodedTrace &t,
                        const ScoreboardConfig &o,
                        const MachineConfig &c,
                        const SteadyStateTracker &tracker)
        : lane(laneIdx), trace(&t), branchPolicy(o.branchPolicy),
          vectorChaining(o.vectorChaining),
          modelResultBus(o.modelResultBus), branchTime(c.branchTime),
          pool(o.fuDiscipline, o.memDiscipline, c.memLatency),
          bus(BusKind::kSingle, 1), boundary(tracker.nextBoundary())
    {
    }
};

void
runScoreboardLockstep(const std::vector<BatchLane> &lanes,
                      const std::vector<std::size_t> &members,
                      std::vector<SimResult> &results)
{
    const DecodedTrace &lead = *lanes[members.front()].trace;
    const std::size_t n = lead.size();
    const bool steady = steadyStateEnabled();

    std::vector<ScoreboardLaneState> st;
    std::vector<SteadyStateTracker> trackers;
    st.reserve(members.size());
    trackers.reserve(members.size());
    for (const std::size_t m : members) {
        const auto *sim =
            static_cast<const ScoreboardSim *>(lanes[m].sim);
        const DecodedTrace &t = *lanes[m].trace;
        checkDecodedConfig(t, sim->config());
        trackers.emplace_back(steady ? &t.periodicity() : nullptr,
                              t.size());
        st.emplace_back(m, t, sim->org(), sim->config(),
                        trackers.back());
    }

    for (std::size_t b0 = 0; b0 < n; b0 += kOpBlock) {
        const std::size_t b1 = std::min(b0 + kOpBlock, n);
        for (std::size_t li = 0; li < st.size(); ++li) {
            ScoreboardLaneState &lane = st[li];
            if (lane.cursor >= b1)
                continue;
            SteadyStateTracker &tracker = trackers[li];
            const DecodedTrace &tr = *lane.trace;
            std::size_t i = lane.cursor;
            std::size_t boundary = lane.boundary;
            ClockCycle issue_cursor = lane.issue_cursor;
            ClockCycle end = lane.end;
            StallBreakdown stalls = lane.stalls;
            while (i < b1) {
                if (i == boundary) {
                    if (tracker.beginObserve(i)) {
                        const ClockCycle base = issue_cursor;
                        auto &sig = tracker.sigBuffer();
                        for (const RegId r : tr.writtenRegs()) {
                            if (lane.regReady[r] > base) {
                                sig.push_back(r);
                                sig.push_back(lane.regReady[r] -
                                              base);
                            }
                        }
                        sig.push_back(sig.size());
                        if (tr.hasVector()) {
                            for (const RegId r : tr.writtenRegs()) {
                                if (lane.chainReady[r] > base) {
                                    sig.push_back(r);
                                    sig.push_back(
                                        lane.chainReady[r] - base);
                                }
                            }
                            sig.push_back(sig.size());
                        }
                        lane.pool.appendSignature(base, sig);
                        lane.bus.appendSignature(base, sig);
                        sig.push_back(end - base);
                        const std::uint64_t counters[5] = {
                            stalls.raw, stalls.waw,
                            stalls.structural, stalls.resultBus,
                            stalls.branch
                        };
                        if (const auto skip = tracker.finishObserve(
                                base, counters, 5)) {
                            i += skip->ops;
                            issue_cursor += skip->delta;
                            end += skip->delta;
                            for (ClockCycle &r : lane.regReady)
                                r += skip->delta;
                            for (ClockCycle &r : lane.chainReady)
                                r += skip->delta;
                            lane.pool.shiftTime(skip->delta);
                            lane.bus.shiftTime(skip->delta);
                            stalls.raw += skip->counters[0];
                            stalls.waw += skip->counters[1];
                            stalls.structural += skip->counters[2];
                            stalls.resultBus += skip->counters[3];
                            stalls.branch += skip->counters[4];
                        }
                    }
                    boundary = tracker.nextBoundary();
                }

                // Structural fields are lane-invariant (verified by
                // the grouping) and read from the leader so every
                // lane's block pass hits the same cache lines;
                // latency and occupancy are the sweep axis and come
                // from the lane's own trace.
                const std::uint8_t flags = lead.flags(i);
                const RegId srcA = lead.srcA(i);
                const RegId srcB = lead.srcB(i);
                const RegId dst = lead.dst(i);

                if (flags & DecodedTrace::kIsBranch) {
                    const ClockCycle cond_ready =
                        srcA != kNoReg ? lane.regReady[srcA] : 0;
                    const bool predicted_free =
                        lane.branchPolicy == BranchPolicy::kOracle ||
                        (lane.branchPolicy == BranchPolicy::kBtfn &&
                         (flags & DecodedTrace::kBtfnCorrect));
                    if (predicted_free) {
                        const ClockCycle t = issue_cursor;
                        issue_cursor = t + 1;
                        end = std::max(end, t + 1);
                    } else {
                        const ClockCycle t =
                            std::max(issue_cursor, cond_ready);
                        stalls.branch += (t - issue_cursor) +
                            (lane.branchTime - 1);
                        issue_cursor = t + lane.branchTime;
                        end = std::max(end, t + lane.branchTime);
                    }
                    ++i;
                    continue;
                }

                const unsigned latency = tr.latency(i);
                const unsigned occupancy = tr.occupancy(i);
                const FuClass fu = lead.fu(i);
                const bool vector_op =
                    flags & DecodedTrace::kIsVector;
                const bool chain = vector_op && lane.vectorChaining;
                ClockCycle t = issue_cursor;
                for (const RegId src : { srcA, srcB }) {
                    if (src == kNoReg)
                        continue;
                    const bool v_src = classOf(src) == RegClass::V;
                    t = std::max(t, chain && v_src
                                        ? lane.chainReady[src]
                                        : lane.regReady[src]);
                }
                stalls.raw += t - issue_cursor;
                ClockCycle mark = t;
                if (dst != kNoReg)
                    t = std::max(t, lane.regReady[dst]);
                stalls.waw += t - mark;

                const bool needs_bus = lane.modelResultBus &&
                    (flags & DecodedTrace::kProducesResult) &&
                    !vector_op;
                while (true) {
                    const ClockCycle at_fu =
                        lane.pool.earliestAccept(fu, t);
                    stalls.structural += at_fu - t;
                    t = at_fu;
                    if (needs_bus) {
                        lane.bus.advance(0, t);
                        const ClockCycle slot =
                            lane.bus.nextFreeSlot(0, t + latency);
                        if (slot != t + latency) {
                            stalls.resultBus += slot - (t + latency);
                            t = slot - latency;
                            continue;
                        }
                    }
                    break;
                }

                const ClockCycle ready =
                    lane.pool.accept(fu, t, latency, occupancy);
                if (needs_bus)
                    lane.bus.set(0, ready);
                if (dst != kNoReg) {
                    lane.regReady[dst] = ready;
                    lane.chainReady[dst] =
                        occupancy > 1 ? t + latency + 1 : ready;
                }
                issue_cursor = t + 1;
                end = std::max(end, ready);
                ++i;
            }
            lane.cursor = i;
            lane.boundary = boundary;
            lane.issue_cursor = issue_cursor;
            lane.end = end;
            lane.stalls = stalls;
        }
    }

    for (std::size_t k = 0; k < st.size(); ++k) {
        SimResult &out = results[st[k].lane];
        out.instructions = n;
        out.hasStalls = true;
        out.cycles = st[k].end;
        out.stalls = st[k].stalls;
        out.steadyOpsSkipped = trackers[k].opsSkipped();
    }
}

// ---------------------------------------------------------------
// In-order multiple issue: the scalar pass loop collapses to one
// exact per-op fixpoint (see batched.hh), so the lanes advance
// op-by-op like the single-issue machines.
// ---------------------------------------------------------------

struct MultiIssueLaneState
{
    std::size_t lane;
    const DecodedTrace *trace;
    // Flat copies of the organization/config knobs the issue loop
    // reads (see ScoreboardLaneState).
    unsigned width;
    BranchPolicy branchPolicy;
    ClockCycle branchTime;
    ClockCycle watchdog;

    std::vector<ClockCycle> completion;
    InlinePool pool;
    InlineBusSet bus;
    std::size_t wStart = 0;
    std::size_t wEnd = 0;           // 0 forces a refill at op 0
    std::size_t floorIdx = kNoIdx;
    ClockCycle floorTime = 0;
    ClockCycle t = 0;
    ClockCycle last_event = 0;
    ClockCycle end = 0;
    std::size_t boundary;
    std::size_t cursor = 0;
    bool observeAtRefill = true;    // false right after a skip

    MultiIssueLaneState(std::size_t laneIdx, const DecodedTrace &t_,
                        const MultiIssueConfig &o,
                        const MachineConfig &c,
                        const SteadyStateTracker &tracker)
        : lane(laneIdx), trace(&t_), width(o.width),
          branchPolicy(o.branchPolicy), branchTime(c.branchTime),
          watchdog(o.watchdogCycles > 0 ? o.watchdogCycles
                                        : kDefaultWatchdogCycles),
          completion(t_.size(), 0),
          pool(FuDiscipline::kSegmented, MemDiscipline::kInterleaved,
               c.memLatency),
          bus(o.busKind, o.width), boundary(tracker.nextBoundary())
    {
    }

    bool
    squashes(const DecodedTrace &lead, std::size_t j) const
    {
        if (!lead.isBranch(j))
            return false;
        const bool predicted_free =
            branchPolicy == BranchPolicy::kOracle ||
            (branchPolicy == BranchPolicy::kBtfn &&
             lead.btfnCorrect(j));
        if (predicted_free)
            return false;
        return lead.taken(j) ||
            branchPolicy == BranchPolicy::kBtfn;
    }
};

void
runMultiIssueLockstep(const std::vector<BatchLane> &lanes,
                      const std::vector<std::size_t> &members,
                      std::vector<SimResult> &results)
{
    const DecodedTrace &lead = *lanes[members.front()].trace;
    const std::size_t n = lead.size();
    const bool steady = steadyStateEnabled();

    std::vector<MultiIssueLaneState> st;
    std::vector<SteadyStateTracker> trackers;
    st.reserve(members.size());
    trackers.reserve(members.size());
    for (const std::size_t m : members) {
        const auto *sim =
            static_cast<const MultiIssueSim *>(lanes[m].sim);
        const DecodedTrace &t = *lanes[m].trace;
        checkDecodedConfig(t, sim->config());
        trackers.emplace_back(steady ? &t.periodicity() : nullptr,
                              t.size());
        st.emplace_back(m, t, sim->org(), sim->config(),
                        trackers.back());
    }

    for (std::size_t b0 = 0; b0 < n; b0 += kOpBlock) {
        const std::size_t b1 = std::min(b0 + kOpBlock, n);
        for (std::size_t li = 0; li < st.size(); ++li) {
            MultiIssueLaneState &lane = st[li];
            if (lane.cursor >= b1)
                continue;
            SteadyStateTracker &tracker = trackers[li];
            const DecodedTrace &tr = *lane.trace;
            ClockCycle *const comp = lane.completion.data();
            std::size_t i = lane.cursor;
            std::size_t wStart = lane.wStart;
            std::size_t wEnd = lane.wEnd;
            std::size_t floorIdx = lane.floorIdx;
            std::size_t boundary = lane.boundary;
            ClockCycle floorTime = lane.floorTime;
            ClockCycle t_cur = lane.t;
            ClockCycle last_event = lane.last_event;
            ClockCycle end = lane.end;
            bool observeAtRefill = lane.observeAtRefill;
            while (i < b1) {
                if (i == wEnd) {
                    // Window refill; mirrors the top of the scalar
                    // while loop (multi_issue_sim.cc).
                    wStart = i;
                    if (observeAtRefill && wStart >= boundary) {
                        if (tracker.beginObserve(wStart)) {
                            const TraceSegment &seg =
                                tracker.segment();
                            const std::size_t lw = seg.lookback;
                            if (wStart < lw) {
                                tracker.cancelObserve();
                            } else {
                                const ClockCycle base = t_cur;
                                auto &sig = tracker.sigBuffer();
                                sig.push_back(t_cur - last_event);
                                sig.push_back(
                                    floorIdx != kNoIdx &&
                                            floorTime > base
                                        ? floorTime - base
                                        : 0);
                                for (std::size_t q = wStart - lw;
                                     q < wStart; ++q)
                                    sig.push_back(comp[q] > base
                                                      ? comp[q] - base
                                                      : 0);
                                for (const std::uint32_t a :
                                     seg.ancients)
                                    sig.push_back(comp[a] > base
                                                      ? comp[a] - base
                                                      : 0);
                                lane.pool.appendSignature(base, sig);
                                lane.bus.appendSignature(base, sig);
                                sig.push_back(end - base);
                                if (const auto skip =
                                        tracker.finishObserve(
                                            base, nullptr, 0)) {
                                    const std::size_t oldW = wStart;
                                    wStart += skip->ops;
                                    t_cur += skip->delta;
                                    end += skip->delta;
                                    last_event += skip->delta;
                                    if (floorIdx != kNoIdx)
                                        floorTime += skip->delta;
                                    lane.pool.shiftTime(skip->delta);
                                    lane.bus.shiftTime(skip->delta);
                                    for (std::size_t q = wStart - lw;
                                         q < wStart; ++q) {
                                        if (q < oldW)
                                            continue;
                                        comp[q] =
                                            comp[q - skip->ops] +
                                            skip->delta;
                                    }
                                    boundary =
                                        tracker.nextBoundary();
                                    i = wStart;
                                    wEnd = wStart;
                                    observeAtRefill = false;
                                    continue;   // next refill: no obs
                                }
                            }
                        }
                        boundary = tracker.nextBoundary();
                    }
                    observeAtRefill = true;
                    std::size_t newEnd =
                        std::min(wStart + lane.width, n);
                    for (std::size_t j = wStart; j < newEnd; ++j) {
                        if (lane.squashes(lead, j)) {
                            newEnd = j + 1;
                            break;
                        }
                    }
                    wEnd = newEnd;
                }

                // Issue op i: least cycle >= the lane's time cursor
                // that satisfies every constraint (exact fixpoint of
                // the scalar pass loop).
                const std::uint8_t flags = lead.flags(i);
                const FuClass fu = lead.fu(i);
                const std::uint32_t prodA = lead.prodA(i);
                const std::uint32_t prodB = lead.prodB(i);
                const std::uint32_t prevW = lead.prevWriter(i);
                const unsigned latency = tr.latency(i);
                const bool is_branch =
                    flags & DecodedTrace::kIsBranch;
                const bool produces =
                    flags & DecodedTrace::kProducesResult;
                const bool free_branch = is_branch &&
                    (lane.branchPolicy == BranchPolicy::kOracle ||
                     (lane.branchPolicy == BranchPolicy::kBtfn &&
                      (flags & DecodedTrace::kBtfnCorrect)));
                ClockCycle earliest = 0;
                if (!free_branch && prodA != kNoProd)
                    earliest = std::max(earliest, comp[prodA]);
                if (prodB != kNoProd)
                    earliest = std::max(earliest, comp[prodB]);
                if (prevW != kNoProd)
                    earliest = std::max(earliest, comp[prevW]);
                if (floorIdx < i)
                    earliest = std::max(earliest, floorTime);
                ClockCycle t = std::max(t_cur, earliest);

                const unsigned unit = unsigned(i - wStart);
                std::size_t busIdx = 0;
                while (true) {
                    t = lane.pool.earliestAccept(fu, t);
                    if (produces) {
                        ClockCycle slot;
                        if (lane.bus.kind == BusKind::kCrossbar) {
                            // Mirror of ResultBusSet::
                            // earliestReserve's crossbar arm: first
                            // cycle any bus is free.
                            for (std::size_t b = 0;
                                 b < lane.bus.slots.size(); ++b)
                                lane.bus.advance(b, t);
                            slot = lane.bus.nextFreeSlot(
                                0, t + latency);
                            for (std::size_t b = 1;
                                 b < lane.bus.slots.size(); ++b)
                                slot = std::min(
                                    slot, lane.bus.nextFreeSlot(
                                              b, t + latency));
                        } else {
                            busIdx =
                                lane.bus.kind == BusKind::kSingle
                                    ? 0
                                    : unit;
                            lane.bus.advance(busIdx, t);
                            slot = lane.bus.nextFreeSlot(
                                busIdx, t + latency);
                        }
                        if (slot != t + latency) {
                            t = slot - latency;
                            continue;
                        }
                    }
                    break;
                }
                if (t - last_event > lane.watchdog)
                    throwWatchdog(t - last_event, lane.watchdog, i);

                const ClockCycle ready =
                    lane.pool.accept(fu, t, latency);
                if (produces) {
                    if (lane.bus.kind == BusKind::kCrossbar) {
                        // Mirror of ResultBusSet::reserve: first bus
                        // with the completion cycle free.
                        for (std::size_t b = 0;
                             b < lane.bus.slots.size(); ++b) {
                            const InlineBusSet::Slot &s =
                                lane.bus.slots[b];
                            if (!((s.bits >> (ready - s.base)) & 1)) {
                                lane.bus.set(b, ready);
                                break;
                            }
                        }
                    } else {
                        lane.bus.set(busIdx, ready);
                    }
                    end = std::max(end, ready);
                }
                comp[i] = ready;
                if (is_branch) {
                    if (free_branch) {
                        end = std::max(end, t + 1);
                    } else {
                        floorIdx = i;
                        floorTime = t + lane.branchTime;
                        end = std::max(end, floorTime);
                    }
                } else {
                    end = std::max(end, ready);
                }
                last_event = t;
                // Within a window the next op may issue in the same
                // cycle (the scalar pass keeps scanning); across a
                // refill the next window starts one cycle later (the
                // scalar pass advances time before it drains).
                t_cur = i + 1 == wEnd ? t + 1 : t;
                ++i;
            }
            lane.cursor = i;
            lane.wStart = wStart;
            lane.wEnd = wEnd;
            lane.floorIdx = floorIdx;
            lane.boundary = boundary;
            lane.floorTime = floorTime;
            lane.t = t_cur;
            lane.last_event = last_event;
            lane.end = end;
            lane.observeAtRefill = observeAtRefill;
        }
    }

    for (std::size_t k = 0; k < st.size(); ++k) {
        SimResult &out = results[st[k].lane];
        out.instructions = n;
        out.cycles = st[k].end;
        out.steadyOpsSkipped = trackers[k].opsSkipped();
    }
}

// ---------------------------------------------------------------
// Dispatch: group compatible lanes, run kernels, fall back scalar.
// ---------------------------------------------------------------

enum class LaneKind
{
    kSimple,
    kScoreboard,
    kMultiInOrder,
    kScalar,
};

LaneKind
classify(const BatchLane &lane)
{
    if (lane.sim == nullptr || lane.trace == nullptr)
        throw ConfigError("runBatch: null lane");
    // Audited runs need the complete event stream: scalar path.
    if (lane.sim->auditSink() != nullptr)
        return LaneKind::kScalar;
    // Speculative lanes (armed predictor) carry wrong-path fetch and
    // squash state the lockstep kernels do not model: scalar path.
    if (lane.sim->config().predictor.armed())
        return LaneKind::kScalar;
    if (dynamic_cast<const SimpleSim *>(lane.sim) != nullptr)
        return LaneKind::kSimple;
    if (const auto *sb =
            dynamic_cast<const ScoreboardSim *>(lane.sim)) {
        // The inline pool state hard-codes the paper's one-of-each
        // machine; replicated-unit extensions take the scalar path.
        if (sb->org().fuCopies == 1 && sb->org().memPorts == 1)
            return LaneKind::kScoreboard;
        return LaneKind::kScalar;
    }
    if (const auto *mi =
            dynamic_cast<const MultiIssueSim *>(lane.sim)) {
        if (!mi->org().outOfOrder && mi->org().width <= 64 &&
            mi->org().fuCopies == 1 && mi->org().memPorts == 1 &&
            !lane.trace->hasVector())
            return LaneKind::kMultiInOrder;
    }
    return LaneKind::kScalar;
}

std::atomic<std::uint64_t> g_batches{ 0 };
std::atomic<std::uint64_t> g_lanes{ 0 };
std::atomic<std::uint64_t> g_lockstep_lanes{ 0 };
std::atomic<std::uint64_t> g_scalar_lanes{ 0 };

} // namespace

BatchTelemetry
batchTelemetry()
{
    BatchTelemetry t;
    t.batches = g_batches.load(std::memory_order_relaxed);
    t.lanes = g_lanes.load(std::memory_order_relaxed);
    t.lockstepLanes = g_lockstep_lanes.load(std::memory_order_relaxed);
    t.scalarLanes = g_scalar_lanes.load(std::memory_order_relaxed);
    return t;
}

bool
structurallyIdentical(const DecodedTrace &a, const DecodedTrace &b)
{
    if (&a == &b)
        return true;
    const std::size_t n = a.size();
    if (n != b.size() || a.hasVector() != b.hasVector())
        return false;
    for (std::size_t i = 0; i < n; ++i) {
        if (a.op(i) != b.op(i) || a.fu(i) != b.fu(i) ||
            a.flags(i) != b.flags(i) || a.dst(i) != b.dst(i) ||
            a.srcA(i) != b.srcA(i) || a.srcB(i) != b.srcB(i) ||
            a.prodA(i) != b.prodA(i) || a.prodB(i) != b.prodB(i) ||
            a.prevWriter(i) != b.prevWriter(i))
            return false;
    }
    return true;
}

BatchOutcome
runBatch(const std::vector<BatchLane> &lanes)
{
    BatchOutcome out;
    out.results.resize(lanes.size());

    // Group lockstep-capable lanes by (kind, structural trace
    // family).  Groups of one are not worth a kernel: they take the
    // scalar path, as do all uncovered lanes.
    struct Group
    {
        LaneKind kind;
        const DecodedTrace *leader;
        std::vector<std::size_t> members;
    };
    std::vector<Group> groups;
    std::vector<std::size_t> scalar;

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const LaneKind kind = classify(lanes[i]);
        if (kind == LaneKind::kScalar) {
            scalar.push_back(i);
            continue;
        }
        Group *home = nullptr;
        for (Group &g : groups) {
            if (g.kind == kind &&
                structurallyIdentical(*g.leader, *lanes[i].trace)) {
                home = &g;
                break;
            }
        }
        if (home == nullptr) {
            groups.push_back(Group{ kind, lanes[i].trace, {} });
            home = &groups.back();
        }
        home->members.push_back(i);
    }

    for (const Group &g : groups) {
        if (g.members.size() < 2) {
            scalar.insert(scalar.end(), g.members.begin(),
                          g.members.end());
            continue;
        }
        switch (g.kind) {
        case LaneKind::kSimple:
            runSimpleLockstep(lanes, g.members, out.results);
            break;
        case LaneKind::kScoreboard:
            runScoreboardLockstep(lanes, g.members, out.results);
            break;
        case LaneKind::kMultiInOrder:
            runMultiIssueLockstep(lanes, g.members, out.results);
            break;
        case LaneKind::kScalar:
            break;      // unreachable
        }
        out.lockstepLanes += g.members.size();
    }

    for (const std::size_t i : scalar) {
        out.results[i] = lanes[i].sim->run(*lanes[i].trace);
        ++out.scalarLanes;
    }

    if (!lanes.empty()) {
        g_batches.fetch_add(1, std::memory_order_relaxed);
        g_lanes.fetch_add(lanes.size(), std::memory_order_relaxed);
        g_lockstep_lanes.fetch_add(out.lockstepLanes,
                                   std::memory_order_relaxed);
        g_scalar_lanes.fetch_add(out.scalarLanes,
                                 std::memory_order_relaxed);
    }
    return out;
}

} // namespace mfusim
