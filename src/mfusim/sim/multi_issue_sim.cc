/**
 * @file
 * Multiple-issue buffer machine implementation.
 */

#include "mfusim/sim/multi_issue_sim.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <limits>
#include <vector>

namespace mfusim
{

namespace
{

constexpr ClockCycle kNever = std::numeric_limits<ClockCycle>::max();

} // namespace

MultiIssueSim::MultiIssueSim(const MultiIssueConfig &org,
                             const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    assert(org_.width >= 1);
}

std::string
MultiIssueSim::name() const
{
    std::string text = org_.outOfOrder ? "OutOfOrderIssue" : "SeqIssue";
    text += "(w=" + std::to_string(org_.width) + ", ";
    text += busKindName(org_.busKind);
    text += ")";
    return text;
}

SimResult
MultiIssueSim::run(const DynTrace &trace)
{
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    // The multiple-issue study is scalar-only, as in the paper.
    for (const DynOp &guard_op : trace.ops()) {
        if (isVector(guard_op.op)) {
            throw std::invalid_argument(
                "MultiIssueSim: vector instructions are not "
                "supported (the paper's multiple-issue study is "
                "scalar-only; use ScoreboardSim)");
        }
    }

    // A branch is "predicted free" when the (extension) branch
    // policy resolves it without gating the stream: oracle always,
    // BTFN when the static prediction matches the outcome.
    const auto predicted_free = [this](const DynOp &op) {
        if (!isBranch(op.op))
            return false;
        if (org_.branchPolicy == BranchPolicy::kOracle)
            return true;
        return org_.branchPolicy == BranchPolicy::kBtfn &&
            btfnCorrect(op.backward, op.taken);
    };
    // A branch squashes the buffer slots behind it when the machine
    // must refetch: a taken branch under the blocking policy, or any
    // mispredicted branch under BTFN.
    const auto squashes = [this, &predicted_free](const DynOp &op) {
        if (!isBranch(op.op) || predicted_free(op))
            return false;
        return op.taken ||
            org_.branchPolicy == BranchPolicy::kBtfn;
    };

    // Program-order dependence links.  With out-of-order issue a
    // younger instruction may write a register before an older
    // reader has issued; the older reader must wait on its *true*
    // (program-order) producer, not on whatever wrote the register
    // most recently.  (The paper ignores WAR hazards, so the younger
    // write neither blocks nor creates a dependence.)  prodA/prodB
    // point at the last earlier writer of each source; prevWriter at
    // the last earlier writer of the destination (the CRAY WAW
    // register reservation).
    constexpr std::size_t kNoProd = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> prodA(n, kNoProd), prodB(n, kNoProd);
    std::vector<std::size_t> prevWriter(n, kNoProd);
    {
        std::array<std::size_t, kNumRegs> lastWriter;
        lastWriter.fill(kNoProd);
        for (std::size_t j = 0; j < n; ++j) {
            if (ops[j].srcA != kNoReg)
                prodA[j] = lastWriter[ops[j].srcA];
            if (ops[j].srcB != kNoReg)
                prodB[j] = lastWriter[ops[j].srcB];
            if (ops[j].dst != kNoReg) {
                prevWriter[j] = lastWriter[ops[j].dst];
                lastWriter[ops[j].dst] = j;
            }
        }
    }
    // Completion (result-available) time of each issued instruction.
    std::vector<ClockCycle> completion(n, 0);
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved, org_.fuCopies,
                  org_.memPorts },
                cfg_);
    ResultBusSet bus(org_.busKind, org_.width);

    std::size_t wStart = 0;             // first instruction in buffer
    std::vector<bool> issued(org_.width, false);

    // Issue floor imposed by the most recently issued branch: no
    // instruction that follows it in program order may issue before
    // floorTime.
    std::size_t floorIdx = std::numeric_limits<std::size_t>::max();
    ClockCycle floorTime = 0;

    ClockCycle t = 0;
    ClockCycle end = 0;

    while (wStart < n) {
        // Window [wStart, wEnd): a taken branch squashes the slots
        // behind it (they hold wrong-path instructions that never
        // issue), so the issuable window ends just after it.
        std::size_t wEnd = std::min(wStart + org_.width, n);
        for (std::size_t j = wStart; j < wEnd; ++j) {
            if (squashes(ops[j])) {
                wEnd = j + 1;
                break;
            }
        }
        std::fill(issued.begin(), issued.end(), false);

        std::size_t remaining = wEnd - wStart;
        while (remaining > 0) {
            bus.advanceTo(t);
            bool progress = false;
            ClockCycle hint = kNever;   // earliest future issue event

            for (std::size_t j = wStart; j < wEnd; ++j) {
                if (issued[j - wStart])
                    continue;
                const DynOp &op = ops[j];
                const unsigned latency = latencyOf(op.op, cfg_);

                // Register and control constraints give a concrete
                // earliest cycle; buffer-order hazards (against
                // earlier *unissued* entries) are resolved only by a
                // later cycle's scan.
                const bool free_branch = predicted_free(op);
                ClockCycle earliest = 0;
                // A predicted-free branch does not wait for its
                // condition to issue (it resolves in the background).
                if (!free_branch && prodA[j] != kNoProd)
                    earliest = std::max(earliest, completion[prodA[j]]);
                if (prodB[j] != kNoProd)
                    earliest = std::max(earliest, completion[prodB[j]]);
                if (prevWriter[j] != kNoProd)
                    earliest = std::max(earliest,
                                        completion[prevWriter[j]]);
                if (floorIdx < j)
                    earliest = std::max(earliest, floorTime);

                bool buffer_hazard = false;
                for (std::size_t k = wStart; k < j && !buffer_hazard;
                     ++k) {
                    if (issued[k - wStart])
                        continue;
                    if (!org_.outOfOrder) {
                        // Sequential issue: any unissued predecessor
                        // blocks.
                        buffer_hazard = true;
                        break;
                    }
                    const DynOp &prev = ops[k];
                    if (isBranch(prev.op) && !predicted_free(prev)) {
                        buffer_hazard = true;   // no speculation
                        break;
                    }
                    if (prev.dst != kNoReg) {
                        if (!free_branch &&
                            (prev.dst == op.srcA ||
                             prev.dst == op.srcB)) {
                            buffer_hazard = true;       // RAW in buffer
                        }
                        if (prev.dst == op.dst)
                            buffer_hazard = true;       // WAW in buffer
                    }
                    if (org_.blockWar && op.dst != kNoReg &&
                        (prev.srcA == op.dst || prev.srcB == op.dst)) {
                        buffer_hazard = true;           // WAR in buffer
                    }
                }
                if (buffer_hazard) {
                    if (!org_.outOfOrder)
                        break;      // nothing later may issue either
                    continue;
                }

                if (earliest > t) {
                    hint = std::min(hint, earliest);
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }

                // Structural: functional unit and result bus.
                const unsigned unit = unsigned(j - wStart);
                if (!pool.canAccept(op.op, t)) {
                    hint = std::min(hint,
                                    pool.earliestAccept(op.op, t));
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }
                if (producesResult(op.op) &&
                    !bus.canReserve(unit, t + latency)) {
                    hint = std::min(hint, t + 1);
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }

                // Issue instruction j at cycle t.
                const ClockCycle ready = pool.accept(op.op, t);
                if (producesResult(op.op)) {
                    bus.reserve(unit, ready);
                    end = std::max(end, ready);
                }
                completion[j] = ready;
                if (isBranch(op.op)) {
                    if (free_branch) {
                        // One issue slot, no gating.
                        end = std::max(end, t + 1);
                    } else {
                        floorIdx = j;
                        floorTime = t + cfg_.branchTime;
                        end = std::max(end, floorTime);
                    }
                } else {
                    end = std::max(end, ready);
                }
                issued[j - wStart] = true;
                --remaining;
                progress = true;

                if (!org_.outOfOrder && isBranch(op.op) && op.taken) {
                    // Slots behind a taken branch were already cut
                    // from the window by wEnd.
                }
            }

            // Advance time: one cycle after any progress, otherwise
            // jump to the next cycle at which anything can change.
            if (progress || hint == kNever)
                t += 1;
            else
                t = std::max(t + 1, hint);
        }

        // Refill: the next window's instructions can issue no
        // earlier than the cycle after the last issue from this one
        // (and no earlier than a pending branch floor, which the
        // per-instruction check enforces).
        wStart = wEnd;
    }

    result.cycles = end;
    return result;
}

} // namespace mfusim
