/**
 * @file
 * Multiple-issue buffer machine implementation.
 */

#include "mfusim/sim/multi_issue_sim.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

namespace
{

constexpr ClockCycle kNever = std::numeric_limits<ClockCycle>::max();

} // namespace

MultiIssueSim::MultiIssueSim(const MultiIssueConfig &org,
                             const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.width < 1)
        throw ConfigError("MultiIssueSim: width must be >= 1");
    if (org_.fuCopies < 1)
        throw ConfigError("MultiIssueSim: fuCopies must be >= 1");
    if (org_.memPorts < 1)
        throw ConfigError("MultiIssueSim: memPorts must be >= 1");
    if (cfg_.predictor.armed() &&
        org_.branchPolicy != BranchPolicy::kBlocking) {
        throw ConfigError(
            "MultiIssueSim: an armed predictor replaces the branch"
            " policy; combine it only with the default blocking"
            " policy");
    }
}

std::string
MultiIssueSim::name() const
{
    std::string text = org_.outOfOrder ? "OutOfOrderIssue" : "SeqIssue";
    text += "(w=" + std::to_string(org_.width) + ", ";
    text += busKindName(org_.busKind);
    text += ")";
    return text;
}

std::string
MultiIssueSim::cacheKey() const
{
    return std::string(org_.outOfOrder ? "ooo" : "seq") +
        "|w=" + std::to_string(org_.width) +
        "|bus=" + busKindName(org_.busKind) +
        "|war=" + (org_.blockWar ? "1" : "0") +
        "|bp=" + branchPolicyName(org_.branchPolicy) +
        "|fuc=" + std::to_string(org_.fuCopies) +
        "|mp=" + std::to_string(org_.memPorts) +
        "|wd=" + std::to_string(org_.watchdogCycles) +
        (cfg_.predictor.armed() ? "|pred=" + cfg_.predictor.key()
                                : std::string());
}

SimResult
MultiIssueSim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kAudit>
SimResult
MultiIssueSim::runImpl(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const std::size_t n = trace.size();

    // The multiple-issue study is scalar-only, as in the paper.
    if (trace.hasVector()) {
        throw SimError(
            "MultiIssueSim: vector instructions are not "
            "supported (the paper's multiple-issue study is "
            "scalar-only; use ScoreboardSim)");
    }

    // Armed predictor: the front end speculates down the predicted
    // path.  Prediction outcomes are precomputed once in trace order
    // (they are timing-independent; wrong-path ops never update the
    // predictor) and replace the static branch-policy logic below.
    const bool spec = cfg_.predictor.armed();
    std::vector<std::uint8_t> predOk;
    if (spec)
        predOk = precomputePredictions(trace, cfg_.predictor);

    // A branch is "predicted free" when it resolves without gating
    // the stream: a correctly predicted branch under an armed
    // predictor, oracle always, BTFN when the static prediction
    // matches the outcome.
    const auto predicted_free = [this, &trace, spec,
                                 &predOk](std::size_t j) {
        if (!trace.isBranch(j))
            return false;
        if (spec)
            return predOk[j] != 0;
        if (org_.branchPolicy == BranchPolicy::kOracle)
            return true;
        return org_.branchPolicy == BranchPolicy::kBtfn &&
            trace.btfnCorrect(j);
    };
    // A branch issues without waiting for its condition when the
    // front end carries on past it: any branch under an armed
    // predictor (a mispredicted one resolves — and squashes — in the
    // background), otherwise exactly the predicted-free ones.
    const auto issue_free = [&trace, spec,
                             &predicted_free](std::size_t j) {
        return spec ? trace.isBranch(j) : predicted_free(j);
    };
    // A branch squashes the buffer slots behind it when the machine
    // must refetch: any mispredicted branch under an armed predictor
    // or BTFN, or a taken branch under the blocking policy.
    const auto squashes = [this, &trace, spec,
                           &predicted_free](std::size_t j) {
        if (!trace.isBranch(j) || predicted_free(j))
            return false;
        if (spec)
            return true;
        return trace.taken(j) ||
            org_.branchPolicy == BranchPolicy::kBtfn;
    };

    // Program-order dependence links, precomputed at decode time.
    // With out-of-order issue a younger instruction may write a
    // register before an older reader has issued; the older reader
    // must wait on its *true* (program-order) producer, not on
    // whatever wrote the register most recently.  (The paper ignores
    // WAR hazards, so the younger write neither blocks nor creates a
    // dependence.)  prodA/prodB point at the last earlier writer of
    // each source; prevWriter at the last earlier writer of the
    // destination (the CRAY WAW register reservation).
    constexpr std::uint32_t kNoProd = DecodedTrace::kNoProducer;
    // Completion (result-available) time of each issued instruction.
    std::vector<ClockCycle> completion(n, 0);
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved, org_.fuCopies,
                  org_.memPorts },
                cfg_);
    ResultBusSet bus(org_.busKind, org_.width);

    std::vector<bool> issued(org_.width, false);
    // Static buffer-order hazards of the current window, as
    // bitmasks: bit k of conflict[j] is set when window entry k
    // (k < j) blocks entry j while k is unissued.  Whether a pair
    // conflicts depends only on the instructions (registers, branch
    // prediction), not on timing, so the masks are computed once per
    // window and each pass's hazard scan collapses to one AND
    // against the unissued mask.  Windows wider than 64 fall back to
    // the per-pair scan.
    const bool use_masks = org_.width <= 64;
    std::vector<std::uint64_t> conflict(use_masks ? org_.width : 0);
    std::uint64_t unissued_mask = 0;

    // Issue floor imposed by the most recently issued branch: no
    // instruction that follows it in program order may issue before
    // floorTime.  When the floor comes from a squashed mispredict,
    // floorResolve splits it for stall attribution: cycles before
    // the resolve were spent fetching the wrong path, cycles after
    // it are the post-squash redirect.
    std::size_t floorIdx = std::numeric_limits<std::size_t>::max();
    ClockCycle floorTime = 0;
    ClockCycle floorResolve = 0;
    bool floorMispredict = false;

    // One mispredicted branch can be pending per window (it
    // truncates the window behind itself); its resolve time and
    // wrong-path fetch are settled once the window drains, when the
    // condition producer's completion time is known.
    constexpr std::size_t kNoPending =
        std::numeric_limits<std::size_t>::max();
    std::size_t pendingBranch = kNoPending;
    ClockCycle pendingIssue = 0;
    std::uint64_t mispredictCycles = 0;

    ClockCycle t = 0;
    ClockCycle end = 0;
    // Forgetting horizon of the result-bus reservation window: the
    // wrong-path pollution below may only reserve cycles the bus
    // still remembers (>= its last advanceTo).
    ClockCycle busBase = 0;
    // No-forward-progress watchdog: cycle of the most recent issue.
    const ClockCycle watchdog = org_.watchdogCycles > 0
                                    ? org_.watchdogCycles
                                    : kDefaultWatchdogCycles;
    ClockCycle last_event = 0;
    // Diagnose and abort a tripped watchdog: name the oldest
    // unissued op and the hazard that blocks it.  Kept out of line
    // so the string building does not bloat the issue loop it
    // guards; the hot window bounds come in as arguments so their
    // addresses never escape into the closure.
    const auto throw_watchdog =
        [&](ClockCycle next, std::size_t wStart, std::size_t wEnd)
            __attribute__((noinline, cold)) {
        std::size_t oldest = wEnd;
        for (std::size_t j = wStart; j < wEnd; ++j) {
            if (!issued[j - wStart]) {
                oldest = j;
                break;
            }
        }
        std::string why = "unknown hazard";
        if (oldest < wEnd) {
            const std::size_t j = oldest;
            ClockCycle earliest = 0;
            std::uint32_t blocker = kNoProd;
            for (const std::uint32_t prod :
                 { trace.prodA(j), trace.prodB(j),
                   trace.prevWriter(j) }) {
                if (prod != kNoProd && completion[prod] > earliest) {
                    earliest = completion[prod];
                    blocker = prod;
                }
            }
            if (floorIdx < j && floorTime > earliest) {
                why = "the branch floor of op #" +
                    std::to_string(floorIdx) + " (cycle " +
                    std::to_string(floorTime) + ")";
            } else if (earliest > t && blocker != kNoProd) {
                why = "the result of op #" +
                    std::to_string(blocker) + " (" +
                    mnemonicOf(trace.op(blocker)) +
                    ", completes at cycle " +
                    std::to_string(completion[blocker]) + ")";
            } else if (!pool.canAccept(trace.fu(j), t)) {
                why = std::string("the ") +
                    fuClassName(trace.fu(j)) +
                    " unit (accepts at cycle " +
                    std::to_string(pool.earliestAccept(
                        trace.fu(j), t)) +
                    ")";
            } else {
                why = "a result-bus slot at cycle " +
                    std::to_string(t + trace.latency(j));
            }
        }
        throw SimError(
            "MultiIssueSim: no issue for " +
            std::to_string(next - last_event) +
            " cycles (watchdog " + std::to_string(watchdog) +
            "; cycles " + std::to_string(last_event) + ".." +
            std::to_string(next) + "): oldest unissued op #" +
            std::to_string(oldest) +
            (oldest < wEnd
                 ? std::string(" (") +
                       mnemonicOf(trace.op(oldest)) +
                       ") is waiting for " + why
                 : std::string(" is outside the window")));
    };

    // Steady-state fast path (see sim/steady_state.hh; audit runs
    // use the plain path).  Boundaries are checked at window refill;
    // under a predicting branch policy the window strides past them,
    // which the tracker handles by folding the cursor-boundary
    // offset into the signature.  Boundary state: the watchdog gap,
    // the branch floor, the completion times the segment can still
    // read (its link-lookback window plus fixed pre-segment
    // producers), the pool and bus timelines, and the end watermark.
    // A non-perfect predictor's mispredict stream is aperiodic in
    // general (2-bit counters and fixed-accuracy hashes do not
    // respect the trace's loop period), so the steady-state fast
    // path stays off for it; a perfect predictor never mispredicts
    // and keeps the oracle-identical schedule.
    const bool steady = !kAudit && steadyStateEnabled() &&
        !(spec && cfg_.predictor.kind != PredictorSpec::Kind::kPerfect);
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();

    std::size_t wStart = 0;             // first instruction in buffer
    while (wStart < n) {
        if (wStart >= boundary) {
            if (tracker.beginObserve(wStart)) {
                const TraceSegment &seg = tracker.segment();
                const std::size_t lw = seg.lookback;
                if (wStart < lw) {
                    // Not enough simulated history to snapshot the
                    // lookback window.
                    tracker.cancelObserve();
                } else {
                    const ClockCycle base = t;
                    auto &sig = tracker.sigBuffer();
                    sig.push_back(t - last_event);  // watchdog: exact
                    sig.push_back(
                        floorIdx != std::numeric_limits<
                                        std::size_t>::max() &&
                                floorTime > base
                            ? floorTime - base
                            : 0);
                    for (std::size_t q = wStart - lw; q < wStart; ++q)
                        sig.push_back(completion[q] > base
                                          ? completion[q] - base
                                          : 0);
                    // A live pre-segment completion can never match
                    // across boundaries (it is a fixed cycle while
                    // the clock advances), so a match certifies all
                    // of these are stale — no shift needed.
                    for (const std::uint32_t a : seg.ancients)
                        sig.push_back(completion[a] > base
                                          ? completion[a] - base
                                          : 0);
                    pool.appendSignature(base, sig);
                    bus.appendSignature(base, sig);
                    sig.push_back(end - base);  // end >= t at refill
                    if (const auto skip =
                            tracker.finishObserve(base, nullptr, 0)) {
                        const std::size_t oldW = wStart;
                        wStart += skip->ops;
                        t += skip->delta;
                        end += skip->delta;
                        last_event += skip->delta;
                        if (floorIdx != std::numeric_limits<
                                            std::size_t>::max())
                            floorTime += skip->delta;
                        pool.shiftTime(skip->delta);
                        bus.shiftTime(skip->delta);
                        // Refill the lookback window behind the
                        // landing cursor with the state shift: the
                        // source op has the same cursor-relative
                        // phase and was simulated exactly.
                        for (std::size_t q = wStart - lw; q < wStart;
                             ++q) {
                            if (q < oldW)
                                continue;       // simulated exactly
                            completion[q] =
                                completion[q - skip->ops] +
                                skip->delta;
                        }
                    }
                }
            }
            boundary = tracker.nextBoundary();
        }
        // Window [wStart, wEnd): a taken branch squashes the slots
        // behind it (they hold wrong-path instructions that never
        // issue), so the issuable window ends just after it.
        std::size_t wEnd = std::min(wStart + org_.width, n);
        for (std::size_t j = wStart; j < wEnd; ++j) {
            if (squashes(j)) {
                wEnd = j + 1;
                break;
            }
        }
        std::fill(issued.begin(), issued.end(), false);

        const std::size_t wlen = wEnd - wStart;
        if (use_masks) {
            unissued_mask = wlen >= 64 ? ~std::uint64_t(0)
                                       : (std::uint64_t(1) << wlen) - 1;
            for (std::size_t j = wStart; j < wEnd; ++j) {
                const std::size_t s = j - wStart;
                if (!org_.outOfOrder) {
                    // Sequential issue: every unissued predecessor
                    // blocks.
                    conflict[s] = (std::uint64_t(1) << s) - 1;
                    continue;
                }
                std::uint64_t mask = 0;
                const bool free_branch = issue_free(j);
                const RegId op_dst = trace.dst(j);
                const RegId op_srcA = trace.srcA(j);
                const RegId op_srcB = trace.srcB(j);
                for (std::size_t k = wStart; k < j; ++k) {
                    bool blocks = false;
                    if (trace.isBranch(k) && !predicted_free(k))
                        blocks = true;          // no speculation
                    const RegId prev_dst = trace.dst(k);
                    if (prev_dst != kNoReg) {
                        if (!free_branch &&
                            (prev_dst == op_srcA ||
                             prev_dst == op_srcB)) {
                            blocks = true;      // RAW in buffer
                        }
                        if (prev_dst == op_dst)
                            blocks = true;      // WAW in buffer
                    }
                    if (org_.blockWar && op_dst != kNoReg &&
                        (trace.srcA(k) == op_dst ||
                         trace.srcB(k) == op_dst)) {
                        blocks = true;          // WAR in buffer
                    }
                    if (blocks)
                        mask |= std::uint64_t(1) << (k - wStart);
                }
                conflict[s] = mask;
            }
        }

        std::size_t remaining = wlen;
        while (remaining > 0) {
            bus.advanceTo(t);
            busBase = t;
            bool progress = false;
            ClockCycle hint = kNever;   // earliest future issue event

            // Stall attribution: the oldest unissued window entry is
            // never blocked by a buffer-order hazard (every earlier
            // entry has issued), so it always reaches a concrete
            // dependency / FU / bus check whose cause we record.  If
            // this pass issues nothing, the skipped cycles are
            // charged to that cause.
            [[maybe_unused]] bool head_blocked = false;
            [[maybe_unused]] bool seen_unissued = false;
            [[maybe_unused]] StallCause head_cause = StallCause::kOther;
            [[maybe_unused]] std::uint64_t head_op = 0;
            [[maybe_unused]] bool head_floor_split = false;

            for (std::size_t j = wStart; j < wEnd; ++j) {
                const std::size_t s = j - wStart;
                bool buffer_hazard;
                if (use_masks) {
                    if (!(unissued_mask >> s & 1))
                        continue;       // already issued
                    buffer_hazard = (unissued_mask & conflict[s]) != 0;
                } else {
                    if (issued[s])
                        continue;
                    buffer_hazard = false;
                    for (std::size_t k = wStart;
                         k < j && !buffer_hazard; ++k) {
                        if (issued[k - wStart])
                            continue;
                        if (!org_.outOfOrder) {
                            // Sequential issue: any unissued
                            // predecessor blocks.
                            buffer_hazard = true;
                            break;
                        }
                        if (trace.isBranch(k) && !predicted_free(k)) {
                            buffer_hazard = true;   // no speculation
                            break;
                        }
                        const RegId prev_dst = trace.dst(k);
                        if (prev_dst != kNoReg) {
                            if (!issue_free(j) &&
                                (prev_dst == trace.srcA(j) ||
                                 prev_dst == trace.srcB(j))) {
                                buffer_hazard = true;   // RAW in buffer
                            }
                            if (prev_dst == trace.dst(j))
                                buffer_hazard = true;   // WAW in buffer
                        }
                        if (org_.blockWar && trace.dst(j) != kNoReg &&
                            (trace.srcA(k) == trace.dst(j) ||
                             trace.srcB(k) == trace.dst(j))) {
                            buffer_hazard = true;       // WAR in buffer
                        }
                    }
                }
                if (buffer_hazard) {
                    if constexpr (kAudit)
                        seen_unissued = true;
                    if (!org_.outOfOrder)
                        break;      // nothing later may issue either
                    continue;
                }
                [[maybe_unused]] bool is_head = false;
                if constexpr (kAudit) {
                    is_head = !seen_unissued;
                    seen_unissued = true;
                }

                // Register and control constraints give a concrete
                // earliest cycle; buffer-order hazards (against
                // earlier *unissued* entries) are resolved only by a
                // later cycle's scan.
                const unsigned latency = trace.latency(j);
                const bool free_branch = issue_free(j);
                ClockCycle earliest = 0;
                // A predicted-free branch does not wait for its
                // condition to issue (it resolves in the background).
                if (!free_branch && trace.prodA(j) != kNoProd)
                    earliest = std::max(earliest,
                                        completion[trace.prodA(j)]);
                if (trace.prodB(j) != kNoProd)
                    earliest = std::max(earliest,
                                        completion[trace.prodB(j)]);
                if (trace.prevWriter(j) != kNoProd)
                    earliest = std::max(earliest,
                                        completion[trace.prevWriter(j)]);
                if (floorIdx < j)
                    earliest = std::max(earliest, floorTime);

                if (earliest > t) {
                    if constexpr (kAudit) {
                        if (is_head && !head_blocked) {
                            // Decompose the binding register/control
                            // constraint back into the paper's
                            // conflict classes.
                            ClockCycle rawT = 0, wawT = 0;
                            if (!free_branch &&
                                trace.prodA(j) != kNoProd)
                                rawT = completion[trace.prodA(j)];
                            if (trace.prodB(j) != kNoProd)
                                rawT = std::max(
                                    rawT, completion[trace.prodB(j)]);
                            if (trace.prevWriter(j) != kNoProd)
                                wawT = completion[trace.prevWriter(j)];
                            if (floorMispredict && floorIdx < j &&
                                floorTime == earliest &&
                                rawT != earliest && wawT != earliest) {
                                // Blocked by a squashed mispredict:
                                // wrong-path fetch up to the resolve,
                                // the refetch redirect after it.
                                head_cause = t < floorResolve
                                    ? StallCause::kMispredict
                                    : StallCause::kSquashDrain;
                                head_floor_split = t < floorResolve;
                            } else {
                                head_cause = trace.isBranch(j)
                                    ? StallCause::kBranch
                                    : rawT == earliest
                                        ? StallCause::kRaw
                                    : wawT == earliest
                                        ? StallCause::kWaw
                                        : StallCause::kBranch;
                            }
                            head_op = j;
                            head_blocked = true;
                        }
                    }
                    hint = std::min(hint, earliest);
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }

                // Structural: functional unit and result bus.
                const unsigned unit = unsigned(s);
                const FuClass op_fu = trace.fu(j);
                if (!pool.canAccept(op_fu, t)) {
                    if constexpr (kAudit) {
                        if (is_head && !head_blocked) {
                            head_cause = StallCause::kFuBusy;
                            head_op = j;
                            head_blocked = true;
                        }
                    }
                    hint = std::min(hint,
                                    pool.earliestAccept(op_fu, t));
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }
                const bool produces = trace.producesResult(j);
                if (produces && !bus.canReserve(unit, t + latency)) {
                    if constexpr (kAudit) {
                        if (is_head && !head_blocked) {
                            head_cause = StallCause::kBusBusy;
                            head_op = j;
                            head_blocked = true;
                        }
                    }
                    // Exact next event: every completion cycle up to
                    // the first free slot is taken on every eligible
                    // bus, and a no-progress pass adds no
                    // reservations, so the op cannot issue any
                    // earlier (the old conservative hint was t + 1,
                    // which rescanned the window every cycle).
                    hint = std::min(
                        hint,
                        bus.earliestReserve(unit, t + latency) -
                            latency);
                    if (!org_.outOfOrder)
                        break;
                    continue;
                }

                // Issue instruction j at cycle t.
                const ClockCycle ready =
                    pool.accept(op_fu, t, latency);
                if constexpr (kAudit) {
                    emitAudit(AuditPhase::kIssue, t, j,
                              std::int32_t(unit));
                    if (!trace.isBranch(j)) {
                        emitAudit(AuditPhase::kComplete, ready, j,
                                  produces ? std::int32_t(unit) : -1);
                    }
                }
                if (produces) {
                    bus.reserve(unit, ready);
                    end = std::max(end, ready);
                }
                completion[j] = ready;
                if (trace.isBranch(j)) {
                    if (spec && !predOk[j]) {
                        // Mispredicted: the resolve time, wrong-path
                        // fetch and squash floor are settled at
                        // window drain, once the condition
                        // producer's completion time is known.
                        pendingBranch = j;
                        pendingIssue = t;
                        end = std::max(end, t + 1);
                    } else if (free_branch) {
                        // One issue slot, no gating.
                        end = std::max(end, t + 1);
                    } else {
                        floorIdx = j;
                        floorTime = t + cfg_.branchTime;
                        end = std::max(end, floorTime);
                    }
                } else {
                    end = std::max(end, ready);
                }
                issued[s] = true;
                unissued_mask &= ~(std::uint64_t(1) << s);
                --remaining;
                progress = true;
            }

            // Advance time: one cycle after any progress, otherwise
            // jump to the next cycle at which anything can change.
            if (progress) {
                last_event = t;
                t += 1;
                continue;
            }
            const ClockCycle next =
                hint == kNever ? t + 1 : std::max(t + 1, hint);
            if (next - last_event > watchdog)
                throw_watchdog(next, wStart, wEnd);
            if constexpr (kAudit) {
                // Nothing issued this pass: charge [t, next) to
                // whatever blocked the oldest unissued entry.  A
                // span that straddles a mispredict's resolve cycle
                // splits into wrong-path fetch + squash drain.
                if (head_blocked) {
                    if (head_floor_split && next > floorResolve) {
                        emitStall(StallCause::kMispredict, t,
                                  floorResolve - t, head_op);
                        emitStall(StallCause::kSquashDrain,
                                  floorResolve, next - floorResolve,
                                  head_op);
                    } else {
                        emitStall(head_cause, t, next - t, head_op);
                    }
                }
            }
            t = next;
        }

        // A mispredicted branch drained with this window: it issued
        // at pendingIssue and resolves at tr — one cycle later, or
        // when its condition register materializes, whichever is
        // later.  Until then the front end fetches and issues down
        // the wrong path (synthesized from the following trace ops,
        // bounded by the wrong-path window), polluting FU and
        // result-bus timelines; right-path reservations all exist by
        // now, so the wrong path never displaces them.  The squash
        // at tr flushes every wrong-path op precisely — none has
        // touched architectural state (completion[] carries only
        // trace ops) — and the refetch redirect floors the right
        // path at tr + branchTime.
        if (spec && pendingBranch != kNoPending) {
            const std::size_t j = pendingBranch;
            ClockCycle tr = pendingIssue + 1;
            if (trace.prodA(j) != kNoProd)
                tr = std::max(tr, completion[trace.prodA(j)]);

            const unsigned window = cfg_.predictor.wrongPathWindow;
            for (unsigned k = 0; k < window; ++k) {
                const ClockCycle c =
                    pendingIssue + 1 + k / org_.width;
                if (c >= tr)
                    break;
                const std::size_t src = (j + 1 + k) % n;
                const FuClass wrong_fu = trace.fu(src);
                const unsigned wrong_lat = trace.latency(src);
                if (!trace.isBranch(src) && !trace.isTransfer(src) &&
                    pool.canAccept(wrong_fu, c)) {
                    pool.accept(wrong_fu, c, wrong_lat);
                    // Its (doomed) result claims a completion slot
                    // when the bus still remembers that cycle and no
                    // right-path op holds it.
                    const unsigned unit = k % org_.width;
                    const ClockCycle done = c + wrong_lat;
                    if (trace.producesResult(src) && done >= busBase &&
                        done - busBase < 64 &&
                        bus.canReserve(unit, done)) {
                        bus.reserve(unit, done);
                    }
                }
                ++result.wrongPathOps;
                if constexpr (kAudit)
                    emitAudit(AuditPhase::kWrongPath, c, j,
                              std::int32_t(k));
            }

            floorIdx = j;
            floorResolve = tr;
            floorTime = tr + cfg_.branchTime;
            floorMispredict = true;
            end = std::max(end, floorTime);
            ++result.squashes;
            mispredictCycles += floorTime - (pendingIssue + 1);
            if constexpr (kAudit)
                emitAudit(AuditPhase::kSquash, tr, j);
            pendingBranch = kNoPending;
        }

        // Refill: the next window's instructions can issue no
        // earlier than the cycle after the last issue from this one
        // (and no earlier than a pending branch floor, which the
        // per-instruction check enforces).
        wStart = wEnd;
    }

    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    if (spec)
        recordSpecRun(result.squashes, result.wrongPathOps,
                      mispredictCycles);
    return result;
}

AuditRules
MultiIssueSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kIssue;
    rules.inOrderFront = !org_.outOfOrder;
    rules.frontWidth = org_.width;
    rules.checkBranchFloor = true;
    rules.wawOrdered = true;
    rules.completionConsistent = true;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount =
        org_.busKind == BusKind::kSingle ? 1 : org_.width;
    rules.busKind = org_.busKind;
    rules.checkFuCaps = true;
    rules.fuCopies = org_.fuCopies;
    rules.memPorts = org_.memPorts;
    rules.predictor = cfg_.predictor;
    return rules;
}

} // namespace mfusim
