/**
 * @file
 * Multiple issue units with RUU dependency resolution (Tables 7-8).
 *
 * The Register Update Unit scheme of Sohi & Vajapeyam consolidates
 * all reservation stations into one unit that also acts as a reorder
 * buffer:
 *
 *  - up to N instructions per cycle are placed into the RUU in
 *    program order ("unless (i) a branch instruction is encountered
 *    or (ii) the RUU is full");
 *  - per-register instance counters rename registers, so WAW and WAR
 *    hazards never block issue;
 *  - instructions wait in the RUU for their operands and proceed to
 *    the functional units, up to N per cycle;
 *  - results return to the RUU (bypassed to waiting instructions the
 *    cycle they are produced) and are retired to the register file
 *    from the RUU head, in order, up to N per cycle, freeing slots.
 *
 * Bus organizations:
 *  - restricted N-Bus: issue unit i owns a fixed bank of RUU slots
 *    and fixed busses, so each bank dispatches at most one
 *    instruction and receives at most one result per cycle;
 *  - 1-Bus: one RUU->FU bus, one FU->RUU bus and one RUU->register
 *    file bus shared by all issue units;
 *  - X-Bar (extension): N busses usable by any slot.
 *
 * Branches never enter the RUU: a branch holds its issue unit until
 * its condition operand is produced, then blocks issue for the
 * configured branch time (no speculation, as everywhere in the
 * paper).
 */

#ifndef MFUSIM_SIM_RUU_SIM_HH
#define MFUSIM_SIM_RUU_SIM_HH

#include "mfusim/core/branch_policy.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/funits/result_bus.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Organization of the RUU machine. */
struct RuuConfig
{
    unsigned width = 1;         //!< number of issue units (N)
    unsigned ruuSize = 10;      //!< total RUU entries
    BusKind busKind = BusKind::kPerUnit;

    /**
     * Branch handling (extension).  kBlocking is the paper's model:
     * issue stalls at every branch until it resolves.  Under
     * kBtfn/kOracle a correctly predicted branch costs one issue
     * slot and issue continues (idealized speculative front end);
     * mispredicted branches behave as under kBlocking.
     */
    BranchPolicy branchPolicy = BranchPolicy::kBlocking;

    /** Copies of each functional unit (extension; paper: 1). */
    unsigned fuCopies = 1;
    /** Independent memory ports (extension; paper: 1). */
    unsigned memPorts = 1;

    /**
     * Livelock watchdog threshold: cycles without any
     * insert/dispatch/commit event (while work remains) before the
     * run aborts with a diagnostic SimError.  0 =
     * kDefaultWatchdogCycles.
     */
    ClockCycle watchdogCycles = 0;
};

/**
 * The RUU dependency-resolution machine.
 */
class RuuSim : public Simulator
{
  public:
    /** @throws ConfigError on a zero or inconsistent size/width. */
    RuuSim(const RuuConfig &org, const MachineConfig &cfg);

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override;
    std::string cacheKey() const override;
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

  private:
    /**
     * run() body, compiled once with audit emission and once without
     * so the audit-off scheduling loop carries no per-event branches.
     */
    template <bool kAudit>
    SimResult runImpl(const DecodedTrace &trace);

    RuuConfig org_;
    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_RUU_SIM_HH
