/**
 * @file
 * CDC 6600-style scoreboard issue (paper section 3.3).
 *
 * "The instruction issue scheme used in the CDC 6600 handles RAW
 * hazards but blocks instruction issue when a WAW hazard is
 * encountered."
 *
 * Model: one instruction issues per cycle, in order.  Issue blocks
 * on WAW hazards (the destination register is reserved by an
 * in-flight writer) and on structural hazards (each functional-unit
 * class has a single waiting station; an instruction parked there
 * waiting for operands blocks later instructions that need the same
 * unit).  Issue does NOT block on RAW hazards: the instruction
 * proceeds to its unit and waits there for its operands, so
 * independent instructions behind it keep issuing.
 *
 * The functional units themselves are the CRAY-like complement
 * (segmented, interleaved memory), isolating the issue-scheme
 * comparison exactly as section 3.3 does ("Given the functional
 * units of a CRAY-like machine, the instruction issue rate can be
 * further improved by making the issue unit more elaborate").
 * WAR hazards are not modeled (the paper: "not important in a
 * single processor situation").
 */

#ifndef MFUSIM_SIM_CDC6600_SIM_HH
#define MFUSIM_SIM_CDC6600_SIM_HH

#include "mfusim/core/branch_policy.hh"
#include "mfusim/core/error.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Organization knobs of the CDC 6600-style machine. */
struct Cdc6600Config
{
    /** Model single-result-bus completion conflicts. */
    bool modelResultBus = true;
    BranchPolicy branchPolicy = BranchPolicy::kBlocking;
};

/**
 * Single-issue machine with CDC 6600-style RAW handling.
 */
class Cdc6600Sim : public Simulator
{
  public:
    Cdc6600Sim(const Cdc6600Config &org, const MachineConfig &cfg)
        : org_(org), cfg_(cfg)
    {
        if (cfg_.predictor.armed())
            throw ConfigError(
                "Cdc6600Sim: branch prediction is not modeled for"
                " the single-issue machines (drop the predictor"
                " spec)");
    }

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override { return "CDC6600-issue"; }
    std::string
    cacheKey() const override
    {
        return std::string("cdc|rbus=") +
            (org_.modelResultBus ? "1" : "0") + "|bp=" +
            branchPolicyName(org_.branchPolicy);
    }
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

  private:
    // The issue loop is compiled twice: kObs=false (no attached
    // sink) carries zero event/stall-emission code, so the default
    // path's throughput is untouched by instrumentation.
    template <bool kObs> SimResult runImpl(const DecodedTrace &trace);

    Cdc6600Config org_;
    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_CDC6600_SIM_HH
