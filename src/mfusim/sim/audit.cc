/**
 * @file
 * SimAudit reference checker implementation.
 *
 * The Auditor deliberately re-derives hazards and resource intervals
 * from the decoded trace instead of reusing FuPool / ResultBusSet:
 * an independent implementation is what makes the audit a check
 * rather than a tautology.
 */

#include "mfusim/sim/audit.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "mfusim/core/opcode.hh"
#include "mfusim/core/registers.hh"

namespace mfusim
{

Auditor::Auditor(const DecodedTrace &trace, const AuditRules &rules,
                 std::string label)
    : trace_(trace), rules_(rules), label_(std::move(label)),
      issue_(trace.size(), kNoCycle),
      dispatch_(trace.size(), kNoCycle),
      complete_(trace.size(), kNoCycle),
      insert_(trace.size(), kNoCycle),
      commit_(trace.size(), kNoCycle),
      completeUnit_(trace.size(), -1),
      dispatchUnit_(trace.size(), -1),
      insertUnit_(trace.size(), -1),
      squash_(trace.size(), kNoCycle)
{
    if (rules_.predictor.armed())
        predOk_ = precomputePredictions(trace_, rules_.predictor);
}

void
Auditor::fail(const std::string &check, ClockCycle cycle,
              std::uint64_t op, const std::string &detail) const
{
    const std::string tagged =
        label_.empty() ? check : label_ + ": " + check;
    throw AuditError(tagged, cycle, op,
                     detail + " [" + describeOp(op) + "]");
}

std::string
Auditor::describeOp(std::uint64_t i) const
{
    if (i >= trace_.size())
        return "op #" + std::to_string(i) + " (out of trace)";
    std::string text = mnemonicOf(trace_.op(i));
    text += " " + regName(trace_.dst(i));
    text += "," + regName(trace_.srcA(i));
    text += "," + regName(trace_.srcB(i));
    text += " fu=";
    text += fuClassName(trace_.fu(i));
    text += " lat=" + std::to_string(trace_.latency(i));
    text += " occ=" + std::to_string(trace_.occupancy(i));
    const auto stamp = [](const char *tag, ClockCycle c) {
        return c == kNoCycle ? std::string()
                             : " " + std::string(tag) +
                                   std::to_string(c);
    };
    text += stamp("issue@", issue_[i]);
    text += stamp("insert@", insert_[i]);
    text += stamp("dispatch@", dispatch_[i]);
    text += stamp("complete@", complete_[i]);
    text += stamp("commit@", commit_[i]);
    return text;
}

bool
Auditor::predictedFree(std::uint64_t i) const
{
    if (!trace_.isBranch(i))
        return false;
    if (rules_.predictor.armed())
        return predOk_[i] != 0;
    if (rules_.branchPolicy == BranchPolicy::kOracle)
        return true;
    return rules_.branchPolicy == BranchPolicy::kBtfn &&
        trace_.btfnCorrect(i);
}

ClockCycle
Auditor::resolveCycle(std::uint64_t i) const
{
    // A mispredicted branch resolves one cycle after it enters the
    // front end, or when its condition register materializes,
    // whichever is later.
    const ClockCycle f = front(i);
    ClockCycle resolve = f + 1;
    const std::uint32_t prod = trace_.prodA(i);
    if (prod != DecodedTrace::kNoProducer &&
        complete_[prod] != kNoCycle) {
        resolve = std::max(resolve, complete_[prod]);
    }
    return resolve;
}

ClockCycle
Auditor::availableAt(std::uint64_t i, RegId src,
                     std::uint32_t prod) const
{
    const ClockCycle done = complete_[prod];
    // Chaining: a vector consumer of a vector source may start once
    // the producer's first element exists, one latency after its
    // dispatch: complete - occupancy + 2.
    if (rules_.vectorChaining && trace_.isVector(i) &&
        src != kNoReg && classOf(src) == RegClass::V &&
        trace_.occupancy(prod) > 1) {
        return done - trace_.occupancy(prod) + 2;
    }
    return done;
}

ClockCycle
Auditor::front(std::uint64_t i) const
{
    return rules_.frontPhase == AuditPhase::kInsert ? insert_[i]
                                                    : issue_[i];
}

ClockCycle
Auditor::exec(std::uint64_t i) const
{
    return rules_.execPhase == AuditPhase::kDispatch ? dispatch_[i]
                                                     : issue_[i];
}

void
Auditor::onEvent(const AuditEvent &event)
{
    if (event.op >= trace_.size()) {
        throw AuditError(label_.empty() ? "event-range"
                                        : label_ + ": event-range",
                         event.cycle, event.op,
                         "event references an op outside the trace (" +
                             std::to_string(trace_.size()) + " ops)");
    }
    std::vector<ClockCycle> *slot = nullptr;
    switch (event.phase) {
      case AuditPhase::kWrongPath:
        // Many per branch; validated wholesale in checkSpeculation.
        wrongPath_.push_back(event);
        ++eventCount_;
        return;
      case AuditPhase::kSquash:
        slot = &squash_;
        break;
      case AuditPhase::kIssue:
        slot = &issue_;
        break;
      case AuditPhase::kDispatch:
        slot = &dispatch_;
        dispatchUnit_[event.op] = event.unit;
        break;
      case AuditPhase::kComplete:
        slot = &complete_;
        completeUnit_[event.op] = event.unit;
        break;
      case AuditPhase::kInsert:
        slot = &insert_;
        insertUnit_[event.op] = event.unit;
        break;
      case AuditPhase::kCommit:
        slot = &commit_;
        break;
    }
    if ((*slot)[event.op] != kNoCycle) {
        fail("duplicate-event", event.cycle, event.op,
             "op already has an event of this phase at cycle " +
                 std::to_string((*slot)[event.op]));
    }
    (*slot)[event.op] = event.cycle;
    ++eventCount_;
}

void
Auditor::finish()
{
    checkCompleteness();
    checkFrontOrder();
    checkRaw();
    checkWawAndCompletion();
    checkBusses();
    checkFuOccupancy();
    checkWindows();
    checkDispatchCommit();
    checkSpeculation();
}

void
Auditor::checkCompleteness()
{
    const std::size_t n = trace_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (front(i) == kNoCycle)
            fail("missing-event", 0, i, "op was never issued");
        if (trace_.isBranch(i))
            continue;       // branches may produce no completion
        if (complete_[i] == kNoCycle)
            fail("missing-event", 0, i, "op never completed");
        if (rules_.execPhase == AuditPhase::kDispatch &&
            dispatch_[i] == kNoCycle) {
            fail("missing-event", 0, i, "op was never dispatched");
        }
        if (rules_.windowCapacity > 0 &&
            (insert_[i] == kNoCycle || commit_[i] == kNoCycle)) {
            fail("missing-event", 0, i,
                 "op never passed through the RUU window");
        }
    }
}

void
Auditor::checkFrontOrder()
{
    const std::size_t n = trace_.size();
    ClockCycle prev = 0;
    bool have_prev = false;
    ClockCycle floor = 0;
    std::uint64_t floor_branch = 0;
    std::map<ClockCycle, unsigned> per_cycle;

    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle f = front(i);
        if (rules_.inOrderFront && have_prev) {
            const bool bad = rules_.strictSingleFront ? f <= prev
                                                      : f < prev;
            if (bad) {
                fail("in-order-issue", f, i,
                     "issues at cycle " + std::to_string(f) +
                         ", not after its program-order predecessor"
                         " (cycle " +
                         std::to_string(prev) + ")");
            }
        }
        if (rules_.frontWidth > 0 &&
            ++per_cycle[f] > rules_.frontWidth) {
            fail("issue-width", f, i,
                 "more than " + std::to_string(rules_.frontWidth) +
                     " ops issued in one cycle");
        }
        if (rules_.serialExecution && i > 0 &&
            complete_[i - 1] != kNoCycle && f < complete_[i - 1]) {
            fail("serial-overlap", f, i,
                 "enters execution before op #" +
                     std::to_string(i - 1) + " leaves (cycle " +
                     std::to_string(complete_[i - 1]) + ")");
        }
        if (rules_.checkBranchFloor && f < floor) {
            fail("branch-floor", f, i,
                 "issues under the floor (cycle " +
                     std::to_string(floor) +
                     ") imposed by blocking branch #" +
                     std::to_string(floor_branch));
        }
        if (trace_.isBranch(i) && !predictedFree(i)) {
            if (rules_.predictor.armed()) {
                // Speculative mispredict: the branch issues without
                // waiting for its condition; the floor for younger
                // right-path ops starts at the squash, one redirect
                // (branchTime) later.
                const ClockCycle resolve =
                    resolveCycle(i) + trace_.config().branchTime;
                if (resolve > floor) {
                    floor = resolve;
                    floor_branch = i;
                }
                prev = f;
                have_prev = true;
                continue;
            }
            if (rules_.rawAt != AuditRules::RawAt::kNone) {
                const std::uint32_t prod = trace_.prodA(i);
                if (prod != DecodedTrace::kNoProducer &&
                    complete_[prod] != kNoCycle &&
                    f < complete_[prod]) {
                    fail("branch-condition-raw", f, i,
                         "blocking branch issues before its condition"
                         " exists (producer: " +
                             describeOp(prod) + ")");
                }
            }
            const ClockCycle resolve =
                f + trace_.config().branchTime;
            if (resolve > floor) {
                floor = resolve;
                floor_branch = i;
            }
        }
        prev = f;
        have_prev = true;
    }
}

void
Auditor::checkRaw()
{
    if (rules_.rawAt == AuditRules::RawAt::kNone)
        return;
    const std::size_t n = trace_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (trace_.isBranch(i))
            continue;       // condition reads checked at the front
        const ClockCycle e = exec(i);
        const std::array<std::pair<RegId, std::uint32_t>, 2> sources{
            { { trace_.srcA(i), trace_.prodA(i) },
              { trace_.srcB(i), trace_.prodB(i) } }
        };
        for (const auto &[src, prod] : sources) {
            if (prod == DecodedTrace::kNoProducer)
                continue;
            if (complete_[prod] == kNoCycle)
                continue;   // producer legality caught elsewhere
            const ClockCycle avail = availableAt(i, src, prod);
            if (e < avail) {
                fail("raw-hazard", e, i,
                     "reads " + regName(src) + " at cycle " +
                         std::to_string(e) +
                         " but its value only exists at cycle " +
                         std::to_string(avail) + " (producer: " +
                         describeOp(prod) + ")");
            }
        }
    }
}

void
Auditor::checkWawAndCompletion()
{
    const std::size_t n = trace_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (trace_.isBranch(i))
            continue;
        if (rules_.completionConsistent) {
            const ClockCycle e = exec(i);
            const ClockCycle expect = e + trace_.latency(i) +
                trace_.occupancy(i) - 1;
            if (complete_[i] != expect) {
                fail("completion-latency", complete_[i], i,
                     "completes at cycle " +
                         std::to_string(complete_[i]) +
                         " instead of exec + latency + occupancy - 1"
                         " = " +
                         std::to_string(expect));
            }
        }
        if (rules_.wawOrdered) {
            const std::uint32_t p = trace_.prevWriter(i);
            if (p != DecodedTrace::kNoProducer &&
                complete_[p] != kNoCycle &&
                complete_[i] < complete_[p]) {
                fail("waw-order", complete_[i], i,
                     "writes " + regName(trace_.dst(i)) +
                         " before the program-order earlier writer"
                         " (op: " +
                         describeOp(p) + ")");
            }
        }
    }
}

void
Auditor::checkBusses()
{
    if (rules_.busCount == 0)
        return;
    const std::size_t n = trace_.size();
    // (bus, cycle) -> first op holding the slot.
    std::map<std::pair<std::int32_t, ClockCycle>, std::uint64_t>
        per_unit;
    // cycle -> (count, first op) for the counted kinds.
    std::map<ClockCycle, std::pair<unsigned, std::uint64_t>> per_cycle;

    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle c = complete_[i];
        const std::int32_t unit = completeUnit_[i];
        if (c == kNoCycle || unit < 0)
            continue;       // result uses no bus (vector / no result)
        if (rules_.busKind == BusKind::kPerUnit) {
            if (unsigned(unit) >= rules_.busCount) {
                fail("result-bus-range", c, i,
                     "uses bus " + std::to_string(unit) +
                         " of a " + std::to_string(rules_.busCount) +
                         "-bus machine");
            }
            const auto [it, fresh] =
                per_unit.emplace(std::make_pair(unit, c), i);
            if (!fresh) {
                fail("result-bus-conflict", c, i,
                     "bus " + std::to_string(unit) +
                         " already carries a result this cycle"
                         " (op: " +
                         describeOp(it->second) + ")");
            }
        } else {
            auto &slot = per_cycle[c];
            if (slot.first == 0)
                slot.second = i;
            if (++slot.first > rules_.busCount) {
                fail("result-bus-conflict", c, i,
                     std::to_string(slot.first) +
                         " results in one cycle on " +
                         std::to_string(rules_.busCount) +
                         " bus(ses) (first op: " +
                         describeOp(slot.second) + ")");
            }
        }
    }
}

void
Auditor::checkFuOccupancy()
{
    if (!rules_.checkFuCaps)
        return;
    struct Interval
    {
        ClockCycle start, end;
        std::uint64_t op;
    };
    std::array<std::vector<Interval>, kNumFuClasses> per_class;

    const std::size_t n = trace_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (trace_.isBranch(i) || trace_.isTransfer(i))
            continue;       // no pool resource
        const FuClass fu = trace_.fu(i);
        const ClockCycle e = exec(i);
        if (e == kNoCycle)
            continue;
        const unsigned latency = trace_.latency(i);
        const unsigned occupancy = trace_.occupancy(i);
        unsigned busy;
        if (fu == FuClass::kMemory) {
            busy = rules_.memDiscipline == MemDiscipline::kSerial
                       ? latency + occupancy - 1
                       : occupancy;
        } else {
            busy = rules_.fuDiscipline == FuDiscipline::kSegmented
                       ? occupancy
                       : std::max(latency, occupancy);
        }
        per_class[unsigned(fu)].push_back({ e, e + busy, i });
    }

    for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
        auto &intervals = per_class[fu];
        if (intervals.empty())
            continue;
        const unsigned cap = FuClass(fu) == FuClass::kMemory
                                 ? rules_.memPorts
                                 : rules_.fuCopies;
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start < b.start;
                  });
        std::priority_queue<ClockCycle, std::vector<ClockCycle>,
                            std::greater<ClockCycle>>
            busy_until;
        for (const Interval &iv : intervals) {
            while (!busy_until.empty() &&
                   busy_until.top() <= iv.start) {
                busy_until.pop();
            }
            if (busy_until.size() >= cap) {
                fail("fu-occupancy", iv.start, iv.op,
                     std::string(fuClassName(FuClass(fu))) +
                         " already has " + std::to_string(cap) +
                         " busy unit(s) at cycle " +
                         std::to_string(iv.start));
            }
            busy_until.push(iv.end);
        }
    }
}

void
Auditor::checkWindows()
{
    struct Interval
    {
        ClockCycle start, end;
        std::uint64_t op;
    };
    const std::size_t n = trace_.size();

    const auto sweep = [this](std::vector<Interval> &intervals,
                              unsigned cap, const char *check,
                              const std::string &what) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start < b.start;
                  });
        std::priority_queue<ClockCycle, std::vector<ClockCycle>,
                            std::greater<ClockCycle>>
            live;
        for (const Interval &iv : intervals) {
            while (!live.empty() && live.top() <= iv.start)
                live.pop();
            if (live.size() >= cap) {
                fail(check, iv.start, iv.op,
                     what + " already holds " + std::to_string(cap) +
                         " op(s) at cycle " +
                         std::to_string(iv.start));
            }
            live.push(iv.end);
        }
    };

    if (rules_.windowCapacity > 0) {
        std::vector<Interval> window;
        for (std::size_t i = 0; i < n; ++i) {
            if (trace_.isBranch(i))
                continue;   // branches never occupy the RUU
            if (insert_[i] == kNoCycle || commit_[i] == kNoCycle)
                continue;
            window.push_back({ insert_[i], commit_[i], i });
        }
        sweep(window, rules_.windowCapacity, "ruu-capacity",
              "the RUU (" + std::to_string(rules_.windowCapacity) +
                  " entries)");
    }

    if (rules_.stationsPerFu > 0 || rules_.waitingStations) {
        std::array<std::vector<Interval>, kNumFuClasses> stations;
        for (std::size_t i = 0; i < n; ++i) {
            if (trace_.isBranch(i) || trace_.isTransfer(i))
                continue;
            if (rules_.waitingStations) {
                // CDC 6600: the single station is held from issue
                // until the cycle after dispatch.
                if (issue_[i] == kNoCycle || dispatch_[i] == kNoCycle)
                    continue;
                stations[unsigned(trace_.fu(i))].push_back(
                    { issue_[i], dispatch_[i] + 1, i });
            } else {
                // Tomasulo: a station is held from issue until the
                // result broadcast.
                if (issue_[i] == kNoCycle || complete_[i] == kNoCycle)
                    continue;
                stations[unsigned(trace_.fu(i))].push_back(
                    { issue_[i], complete_[i], i });
            }
        }
        const unsigned cap =
            rules_.waitingStations ? 1 : rules_.stationsPerFu;
        for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
            if (stations[fu].empty())
                continue;
            sweep(stations[fu], cap,
                  rules_.waitingStations ? "waiting-station"
                                         : "reservation-stations",
                  std::string(fuClassName(FuClass(fu))) +
                      "'s station pool");
        }
    }
}

void
Auditor::checkDispatchCommit()
{
    const std::size_t n = trace_.size();
    if (rules_.dispatchWidth > 0 || rules_.bankedDispatch) {
        std::map<ClockCycle, unsigned> per_cycle;
        std::map<std::pair<std::int32_t, ClockCycle>, std::uint64_t>
            per_bank;
        for (std::size_t i = 0; i < n; ++i) {
            const ClockCycle d = dispatch_[i];
            if (d == kNoCycle)
                continue;
            if (rules_.dispatchWidth > 0 &&
                ++per_cycle[d] > rules_.dispatchWidth) {
                fail("dispatch-width", d, i,
                     "more than " +
                         std::to_string(rules_.dispatchWidth) +
                         " dispatches in one cycle");
            }
            if (rules_.bankedDispatch) {
                const auto [it, fresh] = per_bank.emplace(
                    std::make_pair(dispatchUnit_[i], d), i);
                if (!fresh) {
                    fail("dispatch-bank", d, i,
                         "bank " +
                             std::to_string(dispatchUnit_[i]) +
                             " already dispatched this cycle (op: " +
                             describeOp(it->second) + ")");
                }
            }
        }
    }
    if (rules_.commitWidth > 0 || rules_.inOrderCommit) {
        std::map<ClockCycle, unsigned> per_cycle;
        ClockCycle prev = 0;
        bool have_prev = false;
        for (std::size_t i = 0; i < n; ++i) {
            const ClockCycle c = commit_[i];
            if (c == kNoCycle)
                continue;
            if (rules_.commitWidth > 0 &&
                ++per_cycle[c] > rules_.commitWidth) {
                fail("commit-width", c, i,
                     "more than " +
                         std::to_string(rules_.commitWidth) +
                         " commits in one cycle");
            }
            if (rules_.inOrderCommit && have_prev && c < prev) {
                fail("in-order-commit", c, i,
                     "retires before its program-order predecessor"
                     " (cycle " +
                         std::to_string(prev) + ")");
            }
            prev = c;
            have_prev = true;
        }
    }
}

void
Auditor::checkSpeculation()
{
    const std::size_t n = trace_.size();
    if (!rules_.predictor.armed()) {
        // A disarmed organization must not emit speculation events.
        if (!wrongPath_.empty()) {
            const AuditEvent &ev = wrongPath_.front();
            fail("unexpected-wrong-path", ev.cycle, ev.op,
                 "wrong-path event without an armed predictor");
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (squash_[i] != kNoCycle)
                fail("unexpected-squash", squash_[i], i,
                     "squash event without an armed predictor");
        }
        return;
    }

    // Squash legality: exactly one squash per mispredicted branch,
    // at its resolve cycle; nothing else squashes.
    for (std::size_t i = 0; i < n; ++i) {
        const bool mispredicted =
            trace_.isBranch(i) && predOk_[i] == 0;
        if (!mispredicted) {
            if (squash_[i] != kNoCycle)
                fail("squash-legality", squash_[i], i,
                     "squash on an op that is not a mispredicted"
                     " branch");
            continue;
        }
        const ClockCycle resolve = resolveCycle(i);
        if (squash_[i] == kNoCycle)
            fail("squash-legality", resolve, i,
                 "mispredicted branch never squashed");
        if (squash_[i] != resolve) {
            fail("squash-legality", squash_[i], i,
                 "squashes at cycle " + std::to_string(squash_[i]) +
                     " instead of its resolve cycle " +
                     std::to_string(resolve));
        }
    }

    // Wrong-path discipline: every wrong-path slot belongs to a
    // mispredicted branch, lives strictly between the branch's front
    // event and its squash, and the per-branch count respects the
    // fetch window.  (Wrong-path ops are synthesized, not trace ops,
    // so they structurally cannot commit — kCommit events are
    // range-checked against the trace.)
    std::vector<unsigned> per_branch(n, 0);
    for (const AuditEvent &ev : wrongPath_) {
        const std::uint64_t b = ev.op;
        if (!trace_.isBranch(b) || predOk_[b] != 0)
            fail("wrong-path-legality", ev.cycle, b,
                 "wrong-path op charged to an op that is not a"
                 " mispredicted branch");
        const ClockCycle f = front(b);
        if (ev.cycle <= f || ev.cycle >= squash_[b]) {
            fail("wrong-path-legality", ev.cycle, b,
                 "wrong-path op outside (" + std::to_string(f) +
                     ", " + std::to_string(squash_[b]) +
                     "), the branch's fetch..squash span");
        }
        if (++per_branch[b] > rules_.predictor.wrongPathWindow) {
            fail("wrong-path-legality", ev.cycle, b,
                 "more than " +
                     std::to_string(rules_.predictor.wrongPathWindow) +
                     " wrong-path ops for one mispredict");
        }
    }
}

namespace
{

// -1 = not yet decided (consult the environment once).
std::atomic<int> g_audit_requested{ -1 };

} // namespace

bool
auditRequested()
{
    const int cached = g_audit_requested.load();
    if (cached >= 0)
        return cached != 0;
    const char *env = std::getenv("MFUSIM_AUDIT");
    const bool on = env != nullptr && *env != '\0' &&
        std::string(env) != "0";
    g_audit_requested.store(on ? 1 : 0);
    return on;
}

void
setAuditRequested(bool enabled)
{
    g_audit_requested.store(enabled ? 1 : 0);
}

} // namespace mfusim
