/**
 * @file
 * IBM 360/91-style Tomasulo issue (paper section 3.3).
 *
 * "The instruction issuing scheme used in the IBM 360/91 floating
 * point unit issues instructions in spite of RAW and WAW hazards."
 *
 * Model: one instruction issues per cycle, in order, into a
 * reservation station of its functional unit's pool; issue blocks
 * only when that pool's stations are all occupied.  Register
 * renaming by tag (the classic Tomasulo scheme) removes WAW and WAR
 * hazards; an instruction leaves its station for the (segmented)
 * unit once its operands have been produced, and broadcasts its
 * result on a common data bus (CDB) — one result per CDB per cycle,
 * the scheme's hallmark bottleneck.  A station is held until the
 * broadcast.
 *
 * Unlike the RUU (Sohi's scheme, RuuSim), there is no in-order
 * retirement and hence no precise interrupts — that is exactly the
 * gap the paper's chosen RUU scheme fills.  Performance-wise a
 * Tomasulo machine with many stations and CDBs approaches a
 * single-issue RUU with a large buffer.
 */

#ifndef MFUSIM_SIM_TOMASULO_SIM_HH
#define MFUSIM_SIM_TOMASULO_SIM_HH

#include "mfusim/core/branch_policy.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Organization knobs of the Tomasulo machine. */
struct TomasuloConfig
{
    /**
     * Reservation stations per functional-unit class (the 360/91
     * had 3 adder and 2 multiplier stations; memory buffers are
     * modeled with the same count).
     */
    unsigned stationsPerFu = 3;

    /** Number of common data busses (classic 360/91: 1). */
    unsigned cdbCount = 1;

    BranchPolicy branchPolicy = BranchPolicy::kBlocking;
};

/**
 * Single-issue machine with Tomasulo dependency resolution.
 */
class TomasuloSim : public Simulator
{
  public:
    TomasuloSim(const TomasuloConfig &org, const MachineConfig &cfg);

    using Simulator::run;
    SimResult run(const DecodedTrace &trace) override;
    std::string name() const override;
    std::string cacheKey() const override;
    const MachineConfig &config() const override { return cfg_; }
    AuditRules auditRules() const override;

  private:
    // The issue loop is compiled twice: kObs=false (no attached
    // sink) carries zero event/stall-emission code, so the default
    // path's throughput is untouched by instrumentation.
    template <bool kObs> SimResult runImpl(const DecodedTrace &trace);

    TomasuloConfig org_;
    MachineConfig cfg_;
};

} // namespace mfusim

#endif // MFUSIM_SIM_TOMASULO_SIM_HH
