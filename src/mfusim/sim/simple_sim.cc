/**
 * @file
 * Simple Machine implementation.
 */

#include "mfusim/sim/simple_sim.hh"

#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

SimResult
SimpleSim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kAudit>
SimResult
SimpleSim::runImpl(const DecodedTrace &trace) const
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();

    // Instruction i enters execution when instruction i-1 leaves it;
    // the two-stage pipeline otherwise always has the next
    // instruction decoded and waiting, so execution is back to back:
    // total time is simply the sum of execution latencies (every
    // latency is at least 1 cycle, so the issue stage never starves
    // the execute stage).
    ClockCycle end = 0;
    const std::size_t n = trace.size();

    // Steady state: the machine's whole timing state is `end`, so
    // every boundary of a periodic segment matches trivially and the
    // per-period cycle delta (the body's latency sum) extrapolates
    // after two confirmed periods.  Audit runs take the plain path
    // so the event stream stays complete.
    const bool steady = !kAudit && steadyStateEnabled();
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();

    for (std::size_t i = 0; i < n; ++i) {
        if (i == boundary) {
            if (tracker.beginObserve(i)) {
                tracker.sigBuffer();    // no live state beyond `end`
                if (const auto skip =
                        tracker.finishObserve(end, nullptr, 0)) {
                    i += skip->ops;
                    end += skip->delta;
                }
            }
            boundary = tracker.nextBoundary();
        }
        if constexpr (kAudit) {
            emitAudit(AuditPhase::kIssue, end, i);
            // Every cycle this op holds the execute stage beyond its
            // issue cycle is a serial-execution stall for the stream.
            emitStall(StallCause::kSerial, end + 1,
                      ClockCycle(trace.latency(i)) +
                          trace.occupancy(i) - 2,
                      i);
        }
        end += trace.latency(i);
        end += trace.occupancy(i) - 1;      // one element per cycle
        if constexpr (kAudit)
            emitAudit(AuditPhase::kComplete, end, i);
    }
    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    return result;
}

AuditRules
SimpleSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kIssue;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    rules.serialExecution = true;
    rules.checkBranchFloor = true;
    rules.wawOrdered = true;
    rules.completionConsistent = true;
    return rules;
}

} // namespace mfusim
