/**
 * @file
 * Simulator base: the decode-and-delegate convenience path.
 */

#include "mfusim/sim/simulator.hh"

#include "mfusim/core/error.hh"

namespace mfusim
{

SimResult
Simulator::run(const DynTrace &trace)
{
    return run(DecodedTrace(trace, config()));
}

SimResult
runAudited(Simulator &sim, const DecodedTrace &trace)
{
    Auditor auditor(trace, sim.auditRules(), sim.name());
    sim.attachAudit(&auditor);
    SimResult result;
    try {
        result = sim.run(trace);
    } catch (...) {
        sim.attachAudit(nullptr);
        throw;
    }
    sim.attachAudit(nullptr);
    auditor.finish();
    return result;
}

/**
 * Shared guard: a DecodedTrace bakes the machine configuration into
 * its stored latencies, so running it on a simulator configured
 * differently would silently produce wrong timings.  Only the two
 * timing parameters matter — the decode is predictor-agnostic (the
 * TraceLibrary cache shares one decode across predictor variants),
 * so the predictor axis is deliberately not compared here.
 */
void
checkDecodedConfig(const DecodedTrace &trace, const MachineConfig &cfg)
{
    if (trace.config().memLatency != cfg.memLatency ||
        trace.config().branchTime != cfg.branchTime) {
        throw ConfigError(
            "simulator configured for " + cfg.name() +
            " cannot run a trace decoded for " +
            trace.config().name());
    }
}

} // namespace mfusim
