/**
 * @file
 * Simulator base: the decode-and-delegate convenience path.
 */

#include "mfusim/sim/simulator.hh"

#include <stdexcept>

namespace mfusim
{

SimResult
Simulator::run(const DynTrace &trace)
{
    return run(DecodedTrace(trace, config()));
}

/**
 * Shared guard: a DecodedTrace bakes the machine configuration into
 * its stored latencies, so running it on a simulator configured
 * differently would silently produce wrong timings.
 */
void
checkDecodedConfig(const DecodedTrace &trace, const MachineConfig &cfg)
{
    if (!(trace.config() == cfg)) {
        throw std::invalid_argument(
            "simulator configured for " + cfg.name() +
            " cannot run a trace decoded for " +
            trace.config().name());
    }
}

} // namespace mfusim
