/**
 * @file
 * SimResult helpers.
 */

#include "mfusim/sim/simulator.hh"

namespace mfusim
{

double
SimResult::issueRate() const
{
    if (cycles == 0)
        return 0.0;
    return double(instructions) / double(cycles);
}

} // namespace mfusim
