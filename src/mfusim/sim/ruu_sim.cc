/**
 * @file
 * RUU machine implementation.
 */

#include "mfusim/sim/ruu_sim.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <limits>
#include <vector>

namespace mfusim
{

namespace
{

constexpr ClockCycle kUnknown = std::numeric_limits<ClockCycle>::max();
constexpr std::uint32_t kNoProducer = DecodedTrace::kNoProducer;

} // namespace

RuuSim::RuuSim(const RuuConfig &org, const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    assert(org_.width >= 1);
    assert(org_.ruuSize >= org_.width &&
           "each issue unit needs at least one RUU slot");
}

std::string
RuuSim::name() const
{
    return "RUU(w=" + std::to_string(org_.width) +
        ", size=" + std::to_string(org_.ruuSize) + ", " +
        busKindName(org_.busKind) + ")";
}

SimResult
RuuSim::run(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const std::size_t n = trace.size();

    // The RUU study is scalar-only, as in the paper.
    if (trace.hasVector()) {
        throw std::invalid_argument(
            "RuuSim: vector instructions are not supported "
            "(the paper's RUU study is scalar-only; use "
            "ScoreboardSim)");
    }

    // Slot banking: the restricted N-Bus organization gives each
    // issue unit a private bank of slots and busses; 1-Bus and X-Bar
    // share one pool of slots.
    const bool banked = org_.busKind == BusKind::kPerUnit;
    const unsigned num_banks = banked ? org_.width : 1;
    std::vector<unsigned> bank_cap(num_banks);
    for (unsigned b = 0; b < num_banks; ++b) {
        bank_cap[b] = banked ?
            org_.ruuSize / org_.width +
                (b < org_.ruuSize % org_.width ? 1 : 0) :
            org_.ruuSize;
    }

    // Per-cycle dispatch capacity (RUU -> functional units).
    const unsigned dispatch_cap =
        org_.busKind == BusKind::kSingle ? 1 : org_.width;
    // Per-cycle commit capacity (RUU head -> register file).
    const unsigned commit_cap = dispatch_cap;

    struct Entry
    {
        std::uint32_t idx;
        unsigned bank;
        bool dispatched;
    };

    // The RUU holds a sliding program-order window [ruu_head,
    // ruu.size()) of at most ruuSize live entries; committed entries
    // are left behind the head rather than erased (cheaper than a
    // deque, identical iteration order).
    std::vector<Entry> ruu;
    ruu.reserve(n);
    std::size_t ruu_head = 0;
    std::vector<unsigned> bank_count(num_banks, 0);
    std::vector<ClockCycle> result_time(n, kUnknown);

    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved, org_.fuCopies,
                  org_.memPorts },
                cfg_);
    // FU -> RUU writeback busses.
    ResultBusSet wb(org_.busKind, org_.width);

    // True once the producing value of operand (producer id) is
    // available at cycle t.
    const auto operand_ready = [&](std::uint32_t prod, ClockCycle t) {
        if (prod == kNoProducer)
            return true;
        const ClockCycle r = result_time[prod];
        return r != kUnknown && r <= t;
    };
    // Future cycle at which the operand becomes available, if known.
    const auto operand_hint = [&](std::uint32_t prod) -> ClockCycle {
        if (prod == kNoProducer)
            return kUnknown;
        return result_time[prod];
    };

    std::size_t next_insert = 0;        // next trace op to issue
    std::uint64_t insert_counter = 0;   // round-robin bank assignment
    ClockCycle insert_blocked_until = 0;
    ClockCycle t = 0;
    ClockCycle end = 0;

    while (next_insert < n || ruu_head < ruu.size()) {
        bool progress = false;
        ClockCycle hint = kUnknown;
        wb.advanceTo(t);

        // ---- commit: retire completed results from the head -------
        unsigned committed = 0;
        while (committed < commit_cap && ruu_head < ruu.size()) {
            const Entry &head = ruu[ruu_head];
            if (!head.dispatched)
                break;
            const ClockCycle r = result_time[head.idx];
            if (r > t) {
                hint = std::min(hint, r);
                break;
            }
            bank_count[head.bank]--;
            ++ruu_head;
            end = std::max(end, t);
            ++committed;
            progress = true;
        }

        // ---- dispatch: RUU -> functional units ---------------------
        unsigned dispatched_total = 0;
        std::vector<unsigned> dispatched_bank(num_banks, 0);
        for (std::size_t e = ruu_head; e < ruu.size(); ++e) {
            Entry &entry = ruu[e];
            if (dispatched_total >= dispatch_cap)
                break;
            if (entry.dispatched)
                continue;
            if (banked && dispatched_bank[entry.bank] >= 1)
                continue;

            const std::uint32_t idx = entry.idx;
            const std::uint32_t prodA = trace.prodA(idx);
            const std::uint32_t prodB = trace.prodB(idx);
            if (!operand_ready(prodA, t) ||
                !operand_ready(prodB, t)) {
                const ClockCycle ha = operand_hint(prodA);
                const ClockCycle hb = operand_hint(prodB);
                ClockCycle ready_at = 0;
                if (ha != kUnknown)
                    ready_at = std::max(ready_at, ha);
                if (hb != kUnknown)
                    ready_at = std::max(ready_at, hb);
                if (ready_at > t && ha != kUnknown &&
                    hb != kUnknown) {
                    // Both producers scheduled: concrete wakeup time.
                    hint = std::min(hint, ready_at);
                }
                continue;
            }
            const unsigned latency = trace.latency(idx);
            const FuClass fu = trace.fu(idx);
            if (!pool.canAccept(fu, t)) {
                hint = std::min(hint, pool.earliestAccept(fu, t));
                continue;
            }
            if (!wb.canReserve(entry.bank, t + latency)) {
                hint = std::min(hint, t + 1);
                continue;
            }

            const ClockCycle ready = pool.accept(fu, t, latency);
            wb.reserve(entry.bank, ready);
            result_time[idx] = ready;
            entry.dispatched = true;
            end = std::max(end, ready);
            ++dispatched_total;
            dispatched_bank[entry.bank]++;
            progress = true;
        }

        // ---- insert: issue units -> RUU ----------------------------
        if (t < insert_blocked_until) {
            hint = std::min(hint, insert_blocked_until);
        } else {
            unsigned inserted = 0;
            while (inserted < org_.width && next_insert < n) {
                if (trace.isBranch(next_insert)) {
                    const bool free_branch =
                        org_.branchPolicy == BranchPolicy::kOracle ||
                        (org_.branchPolicy == BranchPolicy::kBtfn &&
                         trace.btfnCorrect(next_insert));
                    if (free_branch) {
                        // Correctly predicted: one issue slot, no
                        // stall, and the front end keeps issuing.
                        end = std::max(end, t + 1);
                        ++next_insert;
                        ++inserted;
                        progress = true;
                        continue;
                    }
                    // Blocking (or mispredicted): the branch holds
                    // the issue stage until its condition operand
                    // exists, then blocks issue for the branch
                    // time.  It never occupies an RUU slot.
                    const std::uint32_t prod =
                        trace.prodA(next_insert);
                    if (!operand_ready(prod, t)) {
                        const ClockCycle h = operand_hint(prod);
                        if (h != kUnknown)
                            hint = std::min(hint, h);
                        break;
                    }
                    insert_blocked_until = t + cfg_.branchTime;
                    end = std::max(end, insert_blocked_until);
                    ++next_insert;
                    progress = true;
                    break;      // issue stops at a branch
                }

                const unsigned bank =
                    banked ? unsigned(insert_counter % org_.width) : 0;
                if (bank_count[bank] >= bank_cap[bank])
                    break;      // RUU (bank) full: stall in order

                ruu.push_back(Entry{ std::uint32_t(next_insert), bank,
                                     false });
                bank_count[bank]++;
                ++insert_counter;
                ++next_insert;
                ++inserted;
                progress = true;
            }
        }

        // ---- advance time ------------------------------------------
        if (progress || hint == kUnknown) {
            t += 1;
        } else {
            assert(hint > t && "stalled with a stale wakeup hint");
            t = hint;
        }
    }

    result.cycles = end;
    return result;
}

} // namespace mfusim
