/**
 * @file
 * RUU machine implementation.
 */

#include "mfusim/sim/ruu_sim.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{

namespace
{

constexpr ClockCycle kUnknown = std::numeric_limits<ClockCycle>::max();
constexpr std::uint32_t kNoProducer = DecodedTrace::kNoProducer;

} // namespace

RuuSim::RuuSim(const RuuConfig &org, const MachineConfig &cfg)
    : org_(org), cfg_(cfg)
{
    if (org_.width < 1)
        throw ConfigError("RuuSim: width must be >= 1");
    if (org_.ruuSize < org_.width) {
        throw ConfigError(
            "RuuSim: each issue unit needs at least one RUU slot"
            " (ruuSize " + std::to_string(org_.ruuSize) +
            " < width " + std::to_string(org_.width) + ")");
    }
    if (org_.fuCopies < 1)
        throw ConfigError("RuuSim: fuCopies must be >= 1");
    if (org_.memPorts < 1)
        throw ConfigError("RuuSim: memPorts must be >= 1");
    if (cfg_.predictor.armed() &&
        org_.branchPolicy != BranchPolicy::kBlocking) {
        throw ConfigError(
            "RuuSim: an armed predictor replaces the branch policy;"
            " combine it only with the default blocking policy");
    }
}

std::string
RuuSim::name() const
{
    return "RUU(w=" + std::to_string(org_.width) +
        ", size=" + std::to_string(org_.ruuSize) + ", " +
        busKindName(org_.busKind) + ")";
}

std::string
RuuSim::cacheKey() const
{
    return "ruu|w=" + std::to_string(org_.width) +
        "|size=" + std::to_string(org_.ruuSize) +
        "|bus=" + busKindName(org_.busKind) +
        "|bp=" + branchPolicyName(org_.branchPolicy) +
        "|fuc=" + std::to_string(org_.fuCopies) +
        "|mp=" + std::to_string(org_.memPorts) +
        "|wd=" + std::to_string(org_.watchdogCycles) +
        (cfg_.predictor.armed() ? "|pred=" + cfg_.predictor.key()
                                : std::string());
}

SimResult
RuuSim::run(const DecodedTrace &trace)
{
    return auditSink() ? runImpl<true>(trace) : runImpl<false>(trace);
}

template <bool kAudit>
SimResult
RuuSim::runImpl(const DecodedTrace &trace)
{
    checkDecodedConfig(trace, cfg_);
    SimResult result;
    result.instructions = trace.size();
    if (trace.empty())
        return result;

    const std::size_t n = trace.size();

    // The RUU study is scalar-only, as in the paper.
    if (trace.hasVector()) {
        throw SimError(
            "RuuSim: vector instructions are not supported "
            "(the paper's RUU study is scalar-only; use "
            "ScoreboardSim)");
    }

    // Slot banking: the restricted N-Bus organization gives each
    // issue unit a private bank of slots and busses; 1-Bus and X-Bar
    // share one pool of slots.
    const bool banked = org_.busKind == BusKind::kPerUnit;
    const unsigned num_banks = banked ? org_.width : 1;
    std::vector<unsigned> bank_cap(num_banks);
    for (unsigned b = 0; b < num_banks; ++b) {
        bank_cap[b] = banked ?
            org_.ruuSize / org_.width +
                (b < org_.ruuSize % org_.width ? 1 : 0) :
            org_.ruuSize;
    }

    // Per-cycle dispatch capacity (RUU -> functional units).
    const unsigned dispatch_cap =
        org_.busKind == BusKind::kSingle ? 1 : org_.width;
    // Per-cycle commit capacity (RUU head -> register file).
    const unsigned commit_cap = dispatch_cap;

    // Armed predictor: prediction outcomes precomputed in trace
    // order (timing-independent; wrong-path ops never update the
    // predictor); the static branch-policy logic below defers to
    // them.
    const bool spec = cfg_.predictor.armed();
    std::vector<std::uint8_t> predOk;
    if (spec)
        predOk = precomputePredictions(trace, cfg_.predictor);

    struct Entry
    {
        std::uint32_t idx;  //!< trace op (wrong: the op it mimics)
        unsigned bank;
        bool dispatched;
        /**
         * A wrong-path entry: synthesized past a mispredicted
         * branch.  It occupies its bank slot and contends for
         * dispatch capacity, functional units and writeback busses
         * like any entry, but its operands are garbage (treated as
         * ready), it never writes result_time (no architectural
         * effect), and it can never commit — the squash flushes it.
         */
        bool wrong = false;
    };

    // The RUU holds a sliding program-order window [ruu_head,
    // ruu.size()) of at most ruuSize live entries; committed entries
    // are left behind the head rather than erased (cheaper than a
    // deque, identical iteration order).
    std::vector<Entry> ruu;
    ruu.reserve(n);
    std::size_t ruu_head = 0;
    std::vector<unsigned> bank_count(num_banks, 0);
    std::vector<ClockCycle> result_time(n, kUnknown);

    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved, org_.fuCopies,
                  org_.memPorts },
                cfg_);
    // FU -> RUU writeback busses.
    ResultBusSet wb(org_.busKind, org_.width);

    // True once the producing value of operand (producer id) is
    // available at cycle t.
    const auto operand_ready = [&](std::uint32_t prod, ClockCycle t) {
        if (prod == kNoProducer)
            return true;
        const ClockCycle r = result_time[prod];
        return r != kUnknown && r <= t;
    };
    // Future cycle at which the operand becomes available, if known.
    const auto operand_hint = [&](std::uint32_t prod) -> ClockCycle {
        if (prod == kNoProducer)
            return kUnknown;
        return result_time[prod];
    };

    std::size_t next_insert = 0;        // next trace op to issue
    std::uint64_t insert_counter = 0;   // round-robin bank assignment
    ClockCycle insert_blocked_until = 0;
    // Wrong-path fetch mode: set while a mispredicted branch is in
    // flight.  The front end pushes synthesized wrong-path entries
    // (sources, banks and the round-robin phase are all derived from
    // a private counter so the squash restores the never-fetched
    // front-end state exactly) until the branch resolves.
    bool wrong_mode = false;
    std::size_t wrong_branch = 0;       // the mispredicted branch
    ClockCycle wrong_ts = 0;            // its insert cycle
    unsigned wrong_count = 0;           // wrong-path ops fetched
    std::uint64_t wrong_counter = 0;    // private bank round-robin
    std::size_t wrong_mark = 0;         // ruu.size() at the mispredict
    bool drain_from_squash = false;     // attribution of the redirect
    std::uint64_t mispredict_cycles = 0;
    ClockCycle t = 0;
    ClockCycle end = 0;
    // No-forward-progress watchdog: cycle of the most recent event.
    const ClockCycle watchdog = org_.watchdogCycles > 0
                                    ? org_.watchdogCycles
                                    : kDefaultWatchdogCycles;
    ClockCycle last_event = 0;
    // Diagnose and abort a tripped watchdog: name the oldest stuck
    // work and the resource or result it is waiting for.  Kept
    // out of line so the string building does not bloat the
    // scheduling loop it guards.
    const auto throw_watchdog =
        [&](ClockCycle next) __attribute__((noinline, cold)) {
        std::string why;
        if (ruu_head < ruu.size()) {
            const Entry &head = ruu[ruu_head];
            const std::uint32_t idx = head.idx;
            why = "RUU head op #" + std::to_string(idx) +
                " (" + mnemonicOf(trace.op(idx)) + ")";
            if (!head.dispatched) {
                const std::uint32_t prodA = trace.prodA(idx);
                const std::uint32_t prodB = trace.prodB(idx);
                if (!operand_ready(prodA, t)) {
                    why += " is undispatched, waiting for the"
                        " result of op #" + std::to_string(prodA);
                    const ClockCycle h = operand_hint(prodA);
                    if (h != kUnknown)
                        why += " (due at cycle " +
                            std::to_string(h) + ")";
                    else
                        why += " (not yet scheduled)";
                } else if (!operand_ready(prodB, t)) {
                    why += " is undispatched, waiting for the"
                        " result of op #" + std::to_string(prodB);
                    const ClockCycle h = operand_hint(prodB);
                    if (h != kUnknown)
                        why += " (due at cycle " +
                            std::to_string(h) + ")";
                    else
                        why += " (not yet scheduled)";
                } else if (!pool.canAccept(trace.fu(idx), t)) {
                    why += " is undispatched, waiting for a "
                        + std::string(fuClassName(trace.fu(idx))) +
                        " unit (free at cycle " +
                        std::to_string(pool.earliestAccept(
                            trace.fu(idx), t)) + ")";
                } else {
                    why += " is undispatched, waiting for a"
                        " free writeback-bus slot on bank " +
                        std::to_string(head.bank);
                }
            } else {
                why += " is dispatched, waiting for its"
                    " result at cycle " +
                    std::to_string(result_time[idx]);
            }
        } else if (t < insert_blocked_until) {
            why = "issue is blocked by a branch until cycle " +
                std::to_string(insert_blocked_until);
        } else if (next_insert < n && trace.isBranch(next_insert)) {
            why = "branch op #" + std::to_string(next_insert) +
                " is waiting for its condition (result of op #" +
                std::to_string(trace.prodA(next_insert)) + ")";
        } else {
            why = "op #" + std::to_string(next_insert) +
                " cannot be inserted (RUU bank full with no"
                " retiring entries)";
        }
        throw SimError(
            "RuuSim: no forward progress for " +
            std::to_string(next - last_event) +
            " cycles (watchdog " + std::to_string(watchdog) +
            "; cycles " + std::to_string(last_event) + ".." +
            std::to_string(next) + "): " + why);
    };

    // Steady-state fast path (see sim/steady_state.hh; audit runs
    // use the plain path).  Boundary state: the watchdog gap, the
    // branch block, the end watermark, the round-robin bank phase,
    // the live RUU entries (index relative to the insert cursor),
    // and the result times the segment can still read — producers of
    // both future inserts (link lookback) and of the live entries.
    // Non-perfect mispredict streams are aperiodic in general, so
    // the steady-state fast path stays off for them; a perfect
    // predictor never mispredicts and keeps the oracle-identical
    // schedule.
    const bool steady = !kAudit && steadyStateEnabled() &&
        !(spec && cfg_.predictor.kind != PredictorSpec::Kind::kPerfect);
    SteadyStateTracker tracker(steady ? &trace.periodicity() : nullptr,
                               n);
    std::size_t boundary = tracker.nextBoundary();

    while (next_insert < n || ruu_head < ruu.size()) {
        if (next_insert >= boundary && boundary < n) {
            if (tracker.beginObserve(next_insert)) {
                const TraceSegment &seg = tracker.segment();
                // Oldest op index any future check can read: live
                // entries reach back `span` ops, and every in-segment
                // dependence link reaches back at most seg.lookback
                // further.  The span is itself part of the signature
                // (the entry list encodes it), so matching states
                // agree on the window length.
                const std::size_t span =
                    ruu_head < ruu.size()
                        ? next_insert - ruu[ruu_head].idx
                        : 0;
                const std::size_t lw = seg.lookback + span;
                if (next_insert < lw) {
                    tracker.cancelObserve();
                } else {
                    const ClockCycle base = t;
                    auto &sig = tracker.sigBuffer();
                    sig.push_back(t - last_event);  // watchdog: exact
                    sig.push_back(insert_blocked_until > base
                                      ? insert_blocked_until - base
                                      : 0);
                    // `end` can trail `t` (inserts do not move it),
                    // so encode the exact signed difference.
                    sig.push_back(
                        std::uint64_t(end) - std::uint64_t(base));
                    if (banked)
                        sig.push_back(insert_counter % org_.width);
                    for (std::size_t e = ruu_head; e < ruu.size();
                         ++e) {
                        const Entry &entry = ruu[e];
                        sig.push_back(next_insert - entry.idx);
                        sig.push_back(entry.bank);
                        sig.push_back(entry.dispatched ? 1 : 0);
                        if (entry.dispatched) {
                            const ClockCycle r =
                                result_time[entry.idx];
                            sig.push_back(r > base ? r - base : 0);
                        }
                    }
                    sig.push_back(sig.size());  // section delimiter
                    for (std::size_t q = next_insert - lw;
                         q < next_insert; ++q) {
                        const ClockCycle r = result_time[q];
                        sig.push_back(
                            r == kUnknown
                                ? std::uint64_t(kUnknown)
                                : (r > base ? r - base : 0));
                    }
                    // Live pre-segment results can never match
                    // across boundaries (fixed cycle, advancing
                    // clock): a match certifies these are stale.
                    for (const std::uint32_t a : seg.ancients) {
                        const ClockCycle r = result_time[a];
                        sig.push_back(
                            r == kUnknown
                                ? std::uint64_t(kUnknown)
                                : (r > base ? r - base : 0));
                    }
                    pool.appendSignature(base, sig);
                    wb.appendSignature(base, sig);
                    if (const auto skip =
                            tracker.finishObserve(base, nullptr, 0)) {
                        const std::size_t oldW = next_insert;
                        next_insert += skip->ops;
                        t += skip->delta;
                        end += skip->delta;
                        last_event += skip->delta;
                        insert_blocked_until += skip->delta;
                        insert_counter +=
                            (skip->ops / seg.period) * seg.inserts;
                        for (std::size_t e = ruu_head;
                             e < ruu.size(); ++e)
                            ruu[e].idx += std::uint32_t(skip->ops);
                        pool.shiftTime(skip->delta);
                        wb.shiftTime(skip->delta);
                        // Refill the result-time window behind the
                        // landing cursor with the state shift: slot
                        // q takes the state the slot with the same
                        // cursor-relative position held at the
                        // observation (kUnknown — an undispatched
                        // entry or a branch — stays kUnknown).  When
                        // the skip is shorter than the window the
                        // ranges overlap (a long-lived entry ages
                        // across the skip), so shift out of a
                        // snapshot of the source window.
                        const std::vector<ClockCycle> src(
                            result_time.begin() + (oldW - lw),
                            result_time.begin() + oldW);
                        for (std::size_t q = next_insert - lw;
                             q < next_insert; ++q) {
                            const ClockCycle s =
                                src[q - skip->ops - (oldW - lw)];
                            result_time[q] = s == kUnknown
                                                 ? kUnknown
                                                 : s + skip->delta;
                        }
                    }
                }
            }
            boundary = tracker.nextBoundary();
        }
        bool progress = false;
        ClockCycle hint = kUnknown;
        wb.advanceTo(t);

        // ---- resolve: squash a mispredicted branch -----------------
        if (wrong_mode) {
            // The branch resolves one cycle after insert at the
            // earliest, or when its condition operand exists.
            const std::uint32_t prod = trace.prodA(wrong_branch);
            ClockCycle tr = kUnknown;
            if (prod == kNoProducer)
                tr = wrong_ts + 1;
            else if (result_time[prod] != kUnknown)
                tr = std::max(result_time[prod], wrong_ts + 1);
            if (tr != kUnknown && t >= tr) {
                // Precise squash: every entry younger than the branch
                // is wrong-path by construction; dropping them (and
                // their bank slots) restores exactly the state a
                // machine that never fetched them would hold.  FU and
                // writeback-bus reservations already made by
                // dispatched wrong-path work stay — that pollution is
                // the cost of speculation.
                for (std::size_t e = wrong_mark; e < ruu.size(); ++e)
                    bank_count[ruu[e].bank]--;
                ruu.resize(wrong_mark);
                wrong_mode = false;
                insert_blocked_until = tr + cfg_.branchTime;
                drain_from_squash = true;
                end = std::max(end, insert_blocked_until);
                ++result.squashes;
                mispredict_cycles +=
                    insert_blocked_until - (wrong_ts + 1);
                if constexpr (kAudit)
                    emitAudit(AuditPhase::kSquash, tr, wrong_branch);
                progress = true;
            } else if (tr != kUnknown) {
                hint = std::min(hint, tr);
            }
        }

        // Front-end stall attribution for this cycle: set when the
        // insert stage has ops left but could not insert anything
        // (branch hold / condition wait / full RUU bank).  Cycles
        // where the front is empty-handed because the trace ran out
        // fall into the drain bucket instead.
        [[maybe_unused]] bool front_blocked = false;
        [[maybe_unused]] StallCause front_cause = StallCause::kOther;
        [[maybe_unused]] std::uint64_t front_op = 0;

        // ---- commit: retire completed results from the head -------
        unsigned committed = 0;
        while (committed < commit_cap && ruu_head < ruu.size()) {
            const Entry &head = ruu[ruu_head];
            if (head.wrong)
                break;      // wrong-path work never commits
            if (!head.dispatched)
                break;
            const ClockCycle r = result_time[head.idx];
            if (r > t) {
                hint = std::min(hint, r);
                break;
            }
            if constexpr (kAudit)
                emitAudit(AuditPhase::kCommit, t, head.idx);
            bank_count[head.bank]--;
            ++ruu_head;
            end = std::max(end, t);
            ++committed;
            progress = true;
        }

        // ---- dispatch: RUU -> functional units ---------------------
        unsigned dispatched_total = 0;
        std::vector<unsigned> dispatched_bank(num_banks, 0);
        for (std::size_t e = ruu_head; e < ruu.size(); ++e) {
            Entry &entry = ruu[e];
            if (dispatched_total >= dispatch_cap)
                break;
            if (entry.dispatched)
                continue;
            if (banked && dispatched_bank[entry.bank] >= 1)
                continue;

            const std::uint32_t idx = entry.idx;
            if (entry.wrong) {
                // Wrong-path work: operands are garbage, so they are
                // treated as ready; it contends for the functional
                // unit and writeback bus like real work but has no
                // architectural effect — no result_time write and no
                // audit events (the mimicked trace op runs for real
                // later).
                const unsigned wlat = trace.latency(idx);
                const FuClass wfu = trace.fu(idx);
                if (!pool.canAccept(wfu, t))
                    continue;
                if (!wb.canReserve(entry.bank, t + wlat))
                    continue;
                wb.reserve(entry.bank, pool.accept(wfu, t, wlat));
                entry.dispatched = true;
                ++dispatched_total;
                dispatched_bank[entry.bank]++;
                progress = true;
                continue;
            }
            const std::uint32_t prodA = trace.prodA(idx);
            const std::uint32_t prodB = trace.prodB(idx);
            if (!operand_ready(prodA, t) ||
                !operand_ready(prodB, t)) {
                const ClockCycle ha = operand_hint(prodA);
                const ClockCycle hb = operand_hint(prodB);
                ClockCycle ready_at = 0;
                if (ha != kUnknown)
                    ready_at = std::max(ready_at, ha);
                if (hb != kUnknown)
                    ready_at = std::max(ready_at, hb);
                if (ready_at > t && ha != kUnknown &&
                    hb != kUnknown) {
                    // Both producers scheduled: concrete wakeup time.
                    hint = std::min(hint, ready_at);
                }
                continue;
            }
            const unsigned latency = trace.latency(idx);
            const FuClass fu = trace.fu(idx);
            if (!pool.canAccept(fu, t)) {
                hint = std::min(hint, pool.earliestAccept(fu, t));
                continue;
            }
            if (!wb.canReserve(entry.bank, t + latency)) {
                // Exact next event: every completion cycle up to the
                // first free slot is taken, and a no-progress pass
                // adds no reservations, so this entry cannot
                // dispatch earlier (the old conservative hint was
                // t + 1, which rescanned the RUU every cycle).
                hint = std::min(hint,
                                wb.earliestReserve(entry.bank,
                                                   t + latency) -
                                    latency);
                continue;
            }

            const ClockCycle ready = pool.accept(fu, t, latency);
            if constexpr (kAudit) {
                emitAudit(AuditPhase::kDispatch, t, idx,
                          std::int32_t(entry.bank));
                emitAudit(AuditPhase::kComplete, ready, idx,
                          std::int32_t(entry.bank));
            }
            wb.reserve(entry.bank, ready);
            result_time[idx] = ready;
            entry.dispatched = true;
            end = std::max(end, ready);
            ++dispatched_total;
            dispatched_bank[entry.bank]++;
            progress = true;
        }

        // ---- insert: issue units -> RUU ----------------------------
        if (t < insert_blocked_until) {
            if constexpr (kAudit) {
                if (next_insert < n) {
                    front_blocked = true;
                    front_cause = drain_from_squash
                                      ? StallCause::kSquashDrain
                                      : StallCause::kBranch;
                    front_op = next_insert;
                }
            }
            hint = std::min(hint, insert_blocked_until);
        } else if (wrong_mode) {
            // Wrong-path fetch: the front end keeps issuing down the
            // predicted (wrong) path, synthesizing up to `width` ops
            // per cycle shaped like the upcoming trace, until the
            // wrong-path window fills or the branch resolves.  Like
            // real branches, wrong-path branches take an issue slot
            // but no RUU entry.
            unsigned fetched = 0;
            while (fetched < org_.width &&
                   wrong_count < cfg_.predictor.wrongPathWindow) {
                const std::size_t src =
                    (wrong_branch + 1 + wrong_count) % n;
                if (!trace.isBranch(src)) {
                    const unsigned bank =
                        banked ? unsigned(wrong_counter % org_.width)
                               : 0;
                    if (bank_count[bank] >= bank_cap[bank])
                        break;  // RUU (bank) full: fetch stalls
                    ruu.push_back(Entry{ std::uint32_t(src), bank,
                                         false, true });
                    bank_count[bank]++;
                    ++wrong_counter;
                }
                if constexpr (kAudit)
                    emitAudit(AuditPhase::kWrongPath, t, wrong_branch,
                              std::int32_t(wrong_count));
                ++wrong_count;
                ++result.wrongPathOps;
                ++fetched;
                progress = true;
            }
            if constexpr (kAudit) {
                // Wrong-path fetch emits no kInsert events, so the
                // whole cycle reads as a mispredict stall in the run
                // metrics.
                front_blocked = true;
                front_cause = StallCause::kMispredict;
                front_op = wrong_branch;
            }
        } else {
            unsigned inserted = 0;
            while (inserted < org_.width && next_insert < n) {
                if (trace.isBranch(next_insert)) {
                    // An armed predictor replaces the static branch
                    // policy: its replayed outcome decides whether
                    // the branch is free.
                    const bool free_branch = spec
                        ? predOk[next_insert] != 0
                        : org_.branchPolicy == BranchPolicy::kOracle ||
                          (org_.branchPolicy == BranchPolicy::kBtfn &&
                           trace.btfnCorrect(next_insert));
                    if (free_branch) {
                        // Correctly predicted: one issue slot, no
                        // stall, and the front end keeps issuing.
                        if constexpr (kAudit)
                            emitAudit(AuditPhase::kInsert, t,
                                      next_insert);
                        end = std::max(end, t + 1);
                        ++next_insert;
                        ++inserted;
                        progress = true;
                        continue;
                    }
                    if (spec) {
                        // Mispredicted: the front end redirects down
                        // the wrong path starting next cycle.  The
                        // branch itself takes an issue slot but no
                        // RUU entry; the resolve check at the top of
                        // the loop squashes when its condition
                        // arrives.
                        if constexpr (kAudit)
                            emitAudit(AuditPhase::kInsert, t,
                                      next_insert);
                        wrong_mode = true;
                        wrong_branch = next_insert;
                        wrong_ts = t;
                        wrong_count = 0;
                        wrong_counter = insert_counter;
                        wrong_mark = ruu.size();
                        end = std::max(end, t + 1);
                        ++next_insert;
                        progress = true;
                        break;      // issue stops at the mispredict
                    }
                    // Blocking: the branch holds the issue stage
                    // until its condition operand exists, then
                    // blocks issue for the branch time.  It never
                    // occupies an RUU slot.
                    const std::uint32_t prod =
                        trace.prodA(next_insert);
                    if (!operand_ready(prod, t)) {
                        if constexpr (kAudit) {
                            if (inserted == 0) {
                                front_blocked = true;
                                front_cause = StallCause::kBranch;
                                front_op = next_insert;
                            }
                        }
                        const ClockCycle h = operand_hint(prod);
                        if (h != kUnknown)
                            hint = std::min(hint, h);
                        break;
                    }
                    if constexpr (kAudit)
                        emitAudit(AuditPhase::kInsert, t,
                                  next_insert);
                    insert_blocked_until = t + cfg_.branchTime;
                    drain_from_squash = false;
                    end = std::max(end, insert_blocked_until);
                    ++next_insert;
                    progress = true;
                    break;      // issue stops at a branch
                }

                const unsigned bank =
                    banked ? unsigned(insert_counter % org_.width) : 0;
                if (bank_count[bank] >= bank_cap[bank]) {
                    if constexpr (kAudit) {
                        if (inserted == 0) {
                            front_blocked = true;
                            front_cause = StallCause::kBufferDrain;
                            front_op = next_insert;
                        }
                    }
                    break;      // RUU (bank) full: stall in order
                }

                if constexpr (kAudit)
                    emitAudit(AuditPhase::kInsert, t, next_insert,
                              std::int32_t(bank));
                ruu.push_back(Entry{ std::uint32_t(next_insert), bank,
                                     false });
                bank_count[bank]++;
                ++insert_counter;
                ++next_insert;
                ++inserted;
                progress = true;
            }
        }

        // ---- advance time ------------------------------------------
        if (progress) {
            if constexpr (kAudit) {
                // Back-end progress with a blocked front: the issue
                // units still lost this cycle.
                if (front_blocked)
                    emitStall(front_cause, t, 1, front_op);
            }
            last_event = t;
            t += 1;
        } else {
            const ClockCycle next =
                (hint == kUnknown || hint <= t) ? t + 1 : hint;
            if (next - last_event > watchdog)
                throw_watchdog(next);
            if constexpr (kAudit) {
                if (front_blocked)
                    emitStall(front_cause, t, next - t, front_op);
            }
            t = next;
        }
    }

    result.cycles = end;
    result.steadyOpsSkipped = tracker.opsSkipped();
    if (spec)
        recordSpecRun(result.squashes, result.wrongPathOps,
                      mispredict_cycles);
    return result;
}

AuditRules
RuuSim::auditRules() const
{
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kDispatch;
    rules.frontPhase = AuditPhase::kInsert;
    rules.execPhase = AuditPhase::kDispatch;
    rules.inOrderFront = true;
    rules.frontWidth = org_.width;
    rules.checkBranchFloor = true;
    rules.completionConsistent = true;
    rules.branchPolicy = org_.branchPolicy;
    rules.busCount =
        org_.busKind == BusKind::kSingle ? 1 : org_.width;
    rules.busKind = org_.busKind;
    rules.checkFuCaps = true;
    rules.fuCopies = org_.fuCopies;
    rules.memPorts = org_.memPorts;
    rules.windowCapacity = org_.ruuSize;
    rules.dispatchWidth =
        org_.busKind == BusKind::kSingle ? 1 : org_.width;
    rules.bankedDispatch = org_.busKind == BusKind::kPerUnit;
    rules.commitWidth = rules.dispatchWidth;
    rules.inOrderCommit = true;
    rules.predictor = cfg_.predictor;
    return rules;
}

} // namespace mfusim
