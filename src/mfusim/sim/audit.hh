/**
 * @file
 * SimAudit: an opt-in cycle-level legality auditor.
 *
 * Every simulator computes a schedule — (issue, dispatch, complete)
 * cycles per op — under its organization's issue rules.  A bug in the
 * hazard logic does not crash; it silently shifts an issue rate.
 * SimAudit closes that gap: with an AuditSink attached, a simulator
 * emits one AuditEvent per pipeline event, and an Auditor re-checks
 * the *complete* schedule against an independent statement of the
 * organization's invariants (AuditRules):
 *
 *  - RAW: no op executes before its program-order producers' results
 *    are available (vector chaining adjusts availability to the
 *    producer's first element);
 *  - FU occupancy: concurrent busy intervals per functional-unit
 *    class never exceed the configured unit / memory-port counts
 *    under the configured discipline;
 *  - result busses: completion slots are exclusive per bus per cycle
 *    (per-unit, single, or crossbar-counted);
 *  - issue order and width: sequential-issue machines issue in
 *    buffer order; no machine exceeds its per-cycle issue width;
 *  - branches: nothing issues under a blocking branch's floor, and a
 *    blocking branch waits for its condition;
 *  - WAW-serial machines complete same-register writes in order;
 *  - windowed machines (RUU capacity, Tomasulo reservation stations,
 *    CDC 6600 waiting stations) never exceed their buffer sizes;
 *  - completion times are consistent with issue + latency +
 *    occupancy.
 *
 * A violation raises AuditError with a cycle-stamped dump of the ops
 * involved.  The auditor re-derives everything from the decoded
 * trace, so it shares no hazard code with the simulators — the two
 * implementations check each other.
 *
 * Cost model: emission is one predictable null-pointer test per
 * event when no sink is attached (audit-off runs are unchanged);
 * checking happens once, after the run.
 */

#ifndef MFUSIM_SIM_AUDIT_HH
#define MFUSIM_SIM_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mfusim/core/branch_policy.hh"
#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/types.hh"
#include "mfusim/funits/functional_unit.hh"
#include "mfusim/funits/memory_port.hh"
#include "mfusim/funits/result_bus.hh"

namespace mfusim
{

/** Pipeline event kinds a simulator can emit. */
enum class AuditPhase : std::uint8_t
{
    kIssue,     //!< op left the issue stage (front event of most sims)
    kDispatch,  //!< op entered its functional unit
    kComplete,  //!< op's result became available
    kInsert,    //!< op entered the RUU window (RUU front event)
    kCommit,    //!< op retired from the RUU head
    kWrongPath, //!< a wrong-path op occupied a fetch slot (op =
                //!< the mispredicted branch, unit = slot ordinal)
    kSquash,    //!< a mispredicted branch resolved and flushed its
                //!< younger ops (op = the branch)
};

/** One cycle-stamped pipeline event. */
struct AuditEvent
{
    ClockCycle cycle;       //!< when the event happened
    std::uint64_t op;       //!< trace index of the op
    std::int32_t unit;      //!< bus / slot / bank id, or -1 if none
    AuditPhase phase;
};

/** Receiver of a simulator's audit event stream. */
class AuditSink
{
  public:
    virtual ~AuditSink() = default;

    virtual void onEvent(const AuditEvent &event) = 0;
};

/**
 * The organization legality rules an Auditor enforces, stated
 * independently of the simulator implementation.  Each simulator
 * overrides Simulator::auditRules() to describe itself.
 */
struct AuditRules
{
    /** Pipeline stage at which RAW hazards must be resolved. */
    enum class RawAt : std::uint8_t
    {
        kNone,      //!< no RAW checking (rules not modeled)
        kIssue,     //!< operands must exist at issue (scoreboard)
        kDispatch,  //!< operands must exist at dispatch (CDC,
                    //!< Tomasulo, RUU)
    };

    RawAt rawAt = RawAt::kNone;

    /** The per-op front event: kIssue, or kInsert for the RUU. */
    AuditPhase frontPhase = AuditPhase::kIssue;
    /** The stage whose cycle RAW / FU checks apply to. */
    AuditPhase execPhase = AuditPhase::kIssue;

    /** Front events are nondecreasing in program order. */
    bool inOrderFront = false;
    /** At most one front event per cycle (single-issue machines). */
    bool strictSingleFront = false;
    /** If nonzero, at most this many front events per cycle. */
    unsigned frontWidth = 0;

    /** Nothing issues below a blocking branch's issue + BR floor. */
    bool checkBranchFloor = false;
    /** Op i's front event waits for op i-1's completion (Simple). */
    bool serialExecution = false;
    /** Same-register writes complete in program order. */
    bool wawOrdered = false;
    /** complete == exec + latency + occupancy - 1 for every op. */
    bool completionConsistent = false;
    /** Vector chaining: consumers may start on the first element. */
    bool vectorChaining = false;

    BranchPolicy branchPolicy = BranchPolicy::kBlocking;

    /**
     * Armed predictor: the auditor replays the prediction stream
     * (precomputePredictions) and enforces the squash-legality
     * invariants instead of the blocking-branch floor — a correctly
     * predicted branch imposes no floor; a mispredicted branch must
     * emit exactly one kSquash at its resolve cycle, younger ops'
     * front events obey resolve + branchTime, and kWrongPath events
     * stay within [branch front + 1, resolve) and the wrong-path
     * window.  Wrong-path ops are not trace ops, so they can never
     * appear in a kCommit event by construction.
     */
    PredictorSpec predictor;

    /** Result busses; 0 disables the exclusivity check. */
    unsigned busCount = 0;
    BusKind busKind = BusKind::kSingle;

    /** Check FU / memory-port occupancy against the counts below. */
    bool checkFuCaps = false;
    FuDiscipline fuDiscipline = FuDiscipline::kSegmented;
    MemDiscipline memDiscipline = MemDiscipline::kInterleaved;
    unsigned fuCopies = 1;
    unsigned memPorts = 1;

    /** RUU entries; live [insert, commit) intervals must fit. */
    unsigned windowCapacity = 0;
    /** Reservation stations per FU class (Tomasulo); 0 disables. */
    unsigned stationsPerFu = 0;
    /** Single waiting station per FU class (CDC 6600). */
    bool waitingStations = false;
    /** If nonzero, at most this many dispatch events per cycle. */
    unsigned dispatchWidth = 0;
    /** Restricted N-Bus: at most one dispatch per bank per cycle. */
    bool bankedDispatch = false;
    /** If nonzero, at most this many commit events per cycle. */
    unsigned commitWidth = 0;
    /** Commit events are nondecreasing in program order. */
    bool inOrderCommit = false;
};

/**
 * The reference checker: buffers a simulator's event stream into
 * per-op schedules and, in finish(), verifies every AuditRules
 * invariant against the decoded trace, throwing AuditError on the
 * first violation.  Single-use: one Auditor per run.
 */
class Auditor : public AuditSink
{
  public:
    Auditor(const DecodedTrace &trace, const AuditRules &rules,
            std::string label = {});

    void onEvent(const AuditEvent &event) override;

    /** Run all checks over the recorded schedule. @throws AuditError */
    void finish();

    std::uint64_t eventCount() const { return eventCount_; }

  private:
    [[noreturn]] void fail(const std::string &check, ClockCycle cycle,
                           std::uint64_t op,
                           const std::string &detail) const;

    std::string describeOp(std::uint64_t i) const;
    bool predictedFree(std::uint64_t i) const;
    /** Cycle src of op i can read producer prod's result. */
    ClockCycle availableAt(std::uint64_t i, RegId src,
                           std::uint32_t prod) const;

    void checkCompleteness();
    void checkFrontOrder();
    void checkRaw();
    void checkWawAndCompletion();
    void checkBusses();
    void checkFuOccupancy();
    void checkWindows();
    void checkDispatchCommit();
    void checkSpeculation();

    /** Resolve cycle of mispredicted branch @p i (front + preds). */
    ClockCycle resolveCycle(std::uint64_t i) const;

    const DecodedTrace &trace_;
    AuditRules rules_;
    std::string label_;
    std::uint64_t eventCount_ = 0;

    // Per-op event cycles (kNoCycle = not seen) and unit ids.
    static constexpr ClockCycle kNoCycle = ~ClockCycle(0);
    std::vector<ClockCycle> issue_, dispatch_, complete_, insert_,
        commit_;
    std::vector<std::int32_t> completeUnit_, dispatchUnit_,
        insertUnit_;

    // Speculation stream: replayed predictions (empty unless the
    // rules arm a predictor), per-op squash cycles, and the raw
    // wrong-path events for checkSpeculation().
    std::vector<std::uint8_t> predOk_;
    std::vector<ClockCycle> squash_;
    std::vector<AuditEvent> wrongPath_;

    ClockCycle front(std::uint64_t i) const;
    ClockCycle exec(std::uint64_t i) const;
};

/**
 * Process-wide "audit everything" request flag, consumed by
 * parallelPerLoopRates() (and hence every table bench) and the CLI.
 * Defaults to the MFUSIM_AUDIT environment variable (any nonempty
 * value but "0" enables).
 */
bool auditRequested();
void setAuditRequested(bool enabled);

} // namespace mfusim

#endif // MFUSIM_SIM_AUDIT_HH
