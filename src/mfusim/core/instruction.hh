/**
 * @file
 * Static instruction representation (one element of a Program).
 */

#ifndef MFUSIM_CORE_INSTRUCTION_HH
#define MFUSIM_CORE_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "mfusim/core/opcode.hh"
#include "mfusim/core/registers.hh"
#include "mfusim/core/types.hh"

namespace mfusim
{

/**
 * One static instruction as produced by the Assembler.
 *
 * Field use depends on the opcode's OperandShape:
 *  - kOneSrc / kTwoSrc:  dst <- f(srcA [, srcB])
 *  - kSrcImm:            dst <- f(srcA, imm)
 *  - kNone (constants):  dst <- imm
 *  - kLoad:              dst <- M[srcA + imm]
 *  - kStore:             M[srcA + imm] <- srcB   (no dst)
 *  - kBranchCond:        branch on srcA to static index imm
 *  - kBranchUncond:      branch to static index imm
 */
struct Instruction
{
    Op op = Op::kHalt;
    RegId dst = kNoReg;
    RegId srcA = kNoReg;
    RegId srcB = kNoReg;
    std::int64_t imm = 0;

    /** Branch target as a static Program index (branches only). */
    StaticIndex
    target() const
    {
        return static_cast<StaticIndex>(imm);
    }

    /** Disassemble into a human-readable string. */
    std::string disassemble() const;
};

} // namespace mfusim

#endif // MFUSIM_CORE_INSTRUCTION_HH
