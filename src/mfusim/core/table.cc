/**
 * @file
 * ASCII table rendering.
 */

#include "mfusim/core/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mfusim
{

void
AsciiTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
AsciiTable::addRule()
{
    rows_.emplace_back();
}

std::string
AsciiTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
AsciiTable::print(std::ostream &os) const
{
    // Column widths over header and all rows.
    std::vector<std::size_t> widths;
    const auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(int(widths[i])) << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    total = total >= 2 ? total - 2 : 0;
    const std::string rule(total, '-');

    if (!header_.empty()) {
        emit(header_);
        os << rule << '\n';
    }
    for (const auto &row : rows_) {
        if (row.empty())
            os << rule << '\n';
        else
            emit(row);
    }
}

} // namespace mfusim
