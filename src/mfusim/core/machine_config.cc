/**
 * @file
 * Machine configuration presets.
 */

#include "mfusim/core/machine_config.hh"

#include "mfusim/core/error.hh"

namespace mfusim
{

std::string
MachineConfig::name() const
{
    std::string base = "M" + std::to_string(memLatency) +
        "BR" + std::to_string(branchTime);
    if (predictor.armed())
        base += "+" + predictor.key();
    return base;
}

void
MachineConfig::validate() const
{
    constexpr unsigned kMax = 4096;
    if (memLatency < 1 || memLatency > kMax) {
        throw ConfigError(
            "MachineConfig: memLatency " +
            std::to_string(memLatency) + " outside [1, " +
            std::to_string(kMax) + "]");
    }
    if (branchTime < 1 || branchTime > kMax) {
        throw ConfigError(
            "MachineConfig: branchTime " +
            std::to_string(branchTime) + " outside [1, " +
            std::to_string(kMax) + "]");
    }
    predictor.validate();
}

MachineConfig
configM11BR5()
{
    return MachineConfig{ 11, 5, {} };
}

MachineConfig
configM11BR2()
{
    return MachineConfig{ 11, 2, {} };
}

MachineConfig
configM5BR5()
{
    return MachineConfig{ 5, 5, {} };
}

MachineConfig
configM5BR2()
{
    return MachineConfig{ 5, 2, {} };
}

const std::array<MachineConfig, 4> &
standardConfigs()
{
    static const std::array<MachineConfig, 4> configs = {
        configM11BR5(), configM11BR2(), configM5BR5(), configM5BR2(),
    };
    return configs;
}

} // namespace mfusim
