/**
 * @file
 * Machine configuration presets.
 */

#include "mfusim/core/machine_config.hh"

namespace mfusim
{

std::string
MachineConfig::name() const
{
    return "M" + std::to_string(memLatency) +
        "BR" + std::to_string(branchTime);
}

MachineConfig
configM11BR5()
{
    return MachineConfig{ 11, 5 };
}

MachineConfig
configM11BR2()
{
    return MachineConfig{ 11, 2 };
}

MachineConfig
configM5BR5()
{
    return MachineConfig{ 5, 5 };
}

MachineConfig
configM5BR2()
{
    return MachineConfig{ 5, 2 };
}

const std::array<MachineConfig, 4> &
standardConfigs()
{
    static const std::array<MachineConfig, 4> configs = {
        configM11BR5(), configM11BR2(), configM5BR5(), configM5BR2(),
    };
    return configs;
}

} // namespace mfusim
