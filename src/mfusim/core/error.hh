/**
 * @file
 * Structured error hierarchy of the simulator.
 *
 * Every failure mfusim can diagnose is one of a small set of typed
 * errors rooted at mfusim::Error, which derives from
 * std::runtime_error so generic catch sites (and pre-existing tests)
 * keep working.  Each class carries a distinct process exit code so
 * scripted sweeps can tell a malformed trace from a simulator
 * invariant violation without parsing messages:
 *
 *   | class       | exit | meaning                                  |
 *   |-------------|------|------------------------------------------|
 *   | Error       |  1   | generic mfusim failure                   |
 *   | ConfigError |  3   | invalid machine / organization config    |
 *   | TraceError  |  4   | malformed or unloadable trace            |
 *   | SimError    |  5   | simulator failure (livelock watchdog,    |
 *   |             |      | unsupported trace for the organization)  |
 *   | AuditError  |  6   | SimAudit legality-invariant violation    |
 *   | SweepError  |  7   | one or more sweep grid cells failed      |
 *   | ServeError  |  8   | serve daemon failure / bad HTTP request  |
 *
 * (Exit code 2 is reserved for CLI usage errors, 0 for success, and
 * 128+signo for a run interrupted by SIGINT/SIGTERM after flushing
 * partial output.)
 */

#ifndef MFUSIM_CORE_ERROR_HH
#define MFUSIM_CORE_ERROR_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mfusim
{

/** Root of all typed mfusim failures. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what)
    {}

    /** Process exit code the CLI maps this error class to. */
    virtual int exitCode() const { return 1; }
};

/** An invalid MachineConfig or organization configuration. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &what)
        : Error("config: " + what)
    {}

    int exitCode() const override { return 3; }
};

/** A malformed, truncated or otherwise unloadable trace. */
class TraceError : public Error
{
  public:
    explicit TraceError(const std::string &what)
        : Error("trace_io: " + what)
    {}

    int exitCode() const override { return 4; }
};

/**
 * A simulator could not make forward progress or was asked to run a
 * trace its organization does not support (e.g. vector ops on the
 * scalar-only multiple-issue machines).
 */
class SimError : public Error
{
  public:
    explicit SimError(const std::string &what) : Error(what) {}

    int exitCode() const override { return 5; }
};

/**
 * A SimAudit legality invariant failed: the simulator produced a
 * schedule that violates its own organization's issue rules.  Carries
 * the violated check, the cycle, and the offending op so the message
 * is a self-contained machine-state dump.
 */
class AuditError : public Error
{
  public:
    AuditError(const std::string &check, std::uint64_t cycle,
               std::uint64_t op, const std::string &detail)
        : Error("audit: " + check + " violated at cycle " +
                std::to_string(cycle) + " by op #" +
                std::to_string(op) + ": " + detail),
          check_(check), cycle_(cycle), op_(op)
    {}

    const std::string &check() const { return check_; }
    std::uint64_t cycle() const { return cycle_; }
    std::uint64_t opIndex() const { return op_; }

    int exitCode() const override { return 6; }

  private:
    std::string check_;
    std::uint64_t cycle_;
    std::uint64_t op_;
};

/**
 * One or more cells of a parallel sweep grid failed.  Unlike a plain
 * rethrow of the first worker exception, a SweepError aggregates
 * every failure with its cell coordinate, so a 500-cell overnight
 * sweep reports all bad cells at once.
 */
class SweepError : public Error
{
  public:
    struct Failure
    {
        std::size_t cell;       //!< grid index handed to the body
        std::string message;    //!< what() of the cell's exception
    };

    SweepError(std::vector<Failure> failures, std::size_t cells)
        : Error(format(failures, cells)), failures_(std::move(failures))
    {}

    const std::vector<Failure> &failures() const { return failures_; }

    int exitCode() const override { return 7; }

  private:
    static std::string format(const std::vector<Failure> &failures,
                              std::size_t cells);

    std::vector<Failure> failures_;
};

/**
 * A failure in the `mfusim serve` daemon, carrying the HTTP status
 * the request should be answered with.  Handler code throws these
 * for every client-visible failure (malformed JSON -> 400, body too
 * large -> 413, queue overflow -> 429, deadline expiry -> 503, ...);
 * the dispatch layer converts them into JSON error responses.
 * Server-level failures (bind/listen errors) use status 0 and abort
 * startup with exit code 8.
 */
class ServeError : public Error
{
  public:
    ServeError(int httpStatus, const std::string &what)
        : Error("serve: " + what), status_(httpStatus)
    {}

    /** HTTP status to answer with; 0 = not request-scoped. */
    int httpStatus() const { return status_; }

    int exitCode() const override { return 8; }

  private:
    int status_;
};

} // namespace mfusim

#endif // MFUSIM_CORE_ERROR_HH
