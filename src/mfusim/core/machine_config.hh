/**
 * @file
 * Machine parameter configurations (memory latency x branch time).
 *
 * The paper varies two orthogonal machine parameters on top of every
 * issue organization:
 *
 *  - memory access time: 11 cycles ("slow memory", the CRAY-1 main
 *    memory path) or 5 cycles ("fast memory", standing in for a cache
 *    or the CRAY-1S trick of staging scalar data through vector
 *    registers);
 *  - branch execution time: 5 cycles ("slow branch", the CRAY-1S
 *    behaviour where a branch blocks the issue stage for 4 extra
 *    cycles) or 2 cycles ("fast branch").
 *
 * The cross product yields the four configurations M11BR5, M11BR2,
 * M5BR5 and M5BR2 that appear in every table of the paper.
 */

#ifndef MFUSIM_CORE_MACHINE_CONFIG_HH
#define MFUSIM_CORE_MACHINE_CONFIG_HH

#include <array>
#include <string>

#include "mfusim/core/types.hh"
#include "mfusim/spec/predictor.hh"

namespace mfusim
{

/**
 * The two machine parameters the paper sweeps in every experiment.
 *
 * A MachineConfig does not say anything about the issue organization;
 * that is chosen by instantiating a particular simulator.
 */
struct MachineConfig
{
    /**
     * Cycles from issuing a load until the destination register is
     * usable by a dependent instruction (11 slow / 5 fast).
     */
    unsigned memLatency = 11;

    /**
     * Cycles a branch occupies the issue stage once its condition
     * register is available (5 slow / 2 fast).  No instruction that
     * follows a branch in program order may issue earlier than
     * branch-issue-time + branchTime.
     */
    unsigned branchTime = 5;

    /**
     * Branch-predictor axis (disarmed by default).  When armed, the
     * speculative simulators fetch down the predicted path and
     * squash on mispredicts instead of blocking the front end; the
     * paper-mode configurations all leave this at kNone.
     */
    PredictorSpec predictor;

    /**
     * Short name in the paper's notation, e.g. "M11BR5"; an armed
     * predictor appends its key ("M11BR5+2bit:512:w8").
     */
    std::string name() const;

    /**
     * Reject a nonsensical parameterization: both latencies must be
     * in [1, 4096] (zero breaks every completion formula; the upper
     * bound catches garbage from unchecked arithmetic or parsing).
     *
     * @throws ConfigError naming the offending field and value.
     */
    void validate() const;

    bool
    operator==(const MachineConfig &other) const
    {
        return memLatency == other.memLatency &&
            branchTime == other.branchTime &&
            predictor == other.predictor;
    }
};

/** Slow memory, slow branch: the CRAY-1S-like baseline. */
MachineConfig configM11BR5();
/** Slow memory, fast branch. */
MachineConfig configM11BR2();
/** Fast memory, slow branch. */
MachineConfig configM5BR5();
/** Fast memory, fast branch. */
MachineConfig configM5BR2();

/**
 * The four configurations in the order the paper's tables use:
 * M11BR5, M11BR2, M5BR5, M5BR2.
 */
const std::array<MachineConfig, 4> &standardConfigs();

} // namespace mfusim

#endif // MFUSIM_CORE_MACHINE_CONFIG_HH
