/**
 * @file
 * Register name formatting.
 */

#include "mfusim/core/registers.hh"

namespace mfusim
{

std::string
regName(RegId r)
{
    if (r == kNoReg)
        return "--";
    if (!isValidReg(r))
        return "R?" + std::to_string(r);

    if (r == kVlReg)
        return "VL";
    static const char prefixes[] = { 'A', 'S', 'B', 'T', 'V' };
    const char prefix = prefixes[static_cast<unsigned>(classOf(r))];
    return std::string(1, prefix) + std::to_string(indexOf(r));
}

} // namespace mfusim
