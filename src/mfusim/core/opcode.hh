/**
 * @file
 * The CRAY-1-like scalar instruction set and its static properties.
 *
 * The paper's base architecture has "an instruction set very similar
 * to the CRAY-1S instruction set, consisting of 1-parcel (16 bits) and
 * 2-parcel (32 bits) instructions", executed on functional units with
 * CRAY-1 performance characteristics.  This header defines:
 *
 *  - Op: the opcodes mfusim's compiler/assembler emits,
 *  - FuClass: the hardware functional units of the base machine,
 *  - OpTraits: static metadata (functional unit, latency, parcel
 *    count, operand shape) for each opcode.
 *
 * Latencies follow the CRAY-1 Hardware Reference Manual: address add
 * 2, address multiply 6, scalar (integer) add 3, scalar logical 1,
 * scalar shift 2, floating add 6, floating multiply 7, reciprocal
 * approximation 14.  Memory and branch latencies are configuration
 * parameters (MachineConfig), so latencyOf() takes the config.
 */

#ifndef MFUSIM_CORE_OPCODE_HH
#define MFUSIM_CORE_OPCODE_HH

#include <cstdint>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/types.hh"

namespace mfusim
{

/**
 * Opcodes of the base architecture.
 *
 * Naming: leading letter gives the destination register file (A =
 * address, S = scalar, B/T = save files); "F" prefixes floating-point
 * operations on S registers.
 */
enum class Op : std::uint8_t
{
    // --- address (A-register) integer operations ------------------
    kAConst,    //!< Ai = imm                       (transfer path)
    kAAdd,      //!< Ai = Aj + Ak                   (address add unit)
    kAAddI,     //!< Ai = Aj + imm                  (address add unit)
    kASub,      //!< Ai = Aj - Ak                   (address add unit)
    kAMul,      //!< Ai = Aj * Ak                   (address multiply)
    kAMovS,     //!< Ai = Sj                        (transfer path)
    kAMovB,     //!< Ai = Bjk                       (transfer path)
    kBMovA,     //!< Bjk = Ai                       (transfer path)

    // --- scalar (S-register) integer/logical operations -----------
    kSConst,    //!< Si = imm                       (transfer path)
    kSAdd,      //!< Si = Sj + Sk   (integer)       (scalar add unit)
    kSSub,      //!< Si = Sj - Sk   (integer)       (scalar add unit)
    kSAnd,      //!< Si = Sj & Sk                   (scalar logical)
    kSOr,       //!< Si = Sj | Sk                   (scalar logical)
    kSXor,      //!< Si = Sj ^ Sk                   (scalar logical)
    kSShL,      //!< Si = Sj << imm                 (scalar shift)
    kSShR,      //!< Si = Sj >> imm (logical)       (scalar shift)
    kSMovS,     //!< Si = Sj                        (scalar logical)
    kSMovA,     //!< Si = Aj                        (transfer path)
    kSMovT,     //!< Si = Tjk                       (transfer path)
    kTMovS,     //!< Tjk = Si                       (transfer path)

    // --- scalar floating-point operations -------------------------
    kFAdd,      //!< Si = Sj +f Sk                  (floating add)
    kFSub,      //!< Si = Sj -f Sk                  (floating add)
    kFMul,      //!< Si = Sj *f Sk                  (floating multiply)
    kFRecip,    //!< Si = 1.0 / Sj                  (recip. approx.)
    kSFix,      //!< Si = int64(double(Sj))         (floating add)
    kSFloat,    //!< Si = double(int64(Sj))         (floating add)

    // --- memory references (base register + displacement) ---------
    kLoadA,     //!< Ai = M[Ah + imm]               (memory)
    kLoadS,     //!< Si = M[Ah + imm]               (memory)
    kStoreA,    //!< M[Ah + imm] = Ai               (memory)
    kStoreS,    //!< M[Ah + imm] = Si               (memory)

    // --- vector unit (extension; CRAY-1 vector instructions) ------
    kVSetLen,   //!< VL = Aj                        (transfer path)
    kVLoad,     //!< Vi = M[Aj + k*imm], k < VL     (memory)
    kVStore,    //!< M[Aj + k*imm] = Vj, k < VL     (memory)
    kVFAdd,     //!< Vi = Vj +f Vk  elementwise     (floating add)
    kVFSub,     //!< Vi = Vj -f Vk                  (floating add)
    kVFMul,     //!< Vi = Vj *f Vk                  (floating multiply)
    kVFAddSV,   //!< Vi = Sj +f Vk  (scalar-vector) (floating add)
    kVFMulSV,   //!< Vi = Sj *f Vk                  (floating multiply)

    // --- control transfers (no branch prediction in the paper) ----
    kBrAZ,      //!< branch if A0 == 0
    kBrANZ,     //!< branch if A0 != 0
    kBrAP,      //!< branch if A0 >= 0 (plus)
    kBrAM,      //!< branch if A0 < 0  (minus)
    kBrSZ,      //!< branch if S0 == 0
    kBrSNZ,     //!< branch if S0 != 0
    kBrSP,      //!< branch if S0 >= 0 (plus)
    kBrSM,      //!< branch if S0 < 0  (minus)
    kJump,      //!< unconditional branch
    kHalt,      //!< stop the program (never enters a trace)

    kNumOps
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::kNumOps);

/**
 * The hardware functional units of the base machine.
 *
 * There is exactly one unit of each class; whether a unit is
 * segmented (pipelined, accepting one operation per cycle) or
 * non-segmented (busy for its whole latency) is a property of the
 * simulated machine organization, not of this enum.
 */
enum class FuClass : std::uint8_t
{
    kTransfer,      //!< register-to-register / immediate data paths
    kAddrAdd,       //!< address add unit (2 cycles)
    kAddrMul,       //!< address multiply unit (6 cycles)
    kScalarAdd,     //!< scalar integer add unit (3 cycles)
    kScalarLogical, //!< scalar logical unit (1 cycle)
    kScalarShift,   //!< scalar shift unit (2 cycles)
    kFpAdd,         //!< floating-point add unit (6 cycles)
    kFpMul,         //!< floating-point multiply unit (7 cycles)
    kRecip,         //!< reciprocal approximation unit (14 cycles)
    kMemory,        //!< the memory "functional unit" (11 / 5 cycles)
    kBranch,        //!< branch resolution (handled by the issue stage)
    kNumClasses
};

constexpr unsigned kNumFuClasses =
    static_cast<unsigned>(FuClass::kNumClasses);

/** Short name of a functional-unit class, e.g. "FpAdd". */
const char *fuClassName(FuClass fu);

/** How an instruction's register operand fields are interpreted. */
enum class OperandShape : std::uint8_t
{
    kNone,          //!< no register operands (kAConst dst only, kJump)
    kOneSrc,        //!< dst <- f(srcA)
    kTwoSrc,        //!< dst <- f(srcA, srcB)
    kSrcImm,        //!< dst <- f(srcA, imm)
    kLoad,          //!< dst <- M[srcA + imm]
    kStore,         //!< M[srcA + imm] <- srcB
    kBranchCond,    //!< branch on srcA (A0 or S0), target = imm
    kBranchUncond,  //!< branch, target = imm
};

/** Static properties of an opcode. */
struct OpTraits
{
    const char *mnemonic;   //!< assembler mnemonic
    FuClass fu;             //!< functional unit that executes it
    std::uint8_t latency;   //!< fixed latency; 0 = config-dependent
    std::uint8_t parcels;   //!< instruction size: 1 or 2 parcels
    OperandShape shape;     //!< operand field interpretation
};

/** Look up the static traits of @p op. */
const OpTraits &traitsOf(Op op);

/** True for conditional and unconditional branches. */
bool isBranch(Op op);

/** True for loads and stores. */
bool isMemory(Op op);

/** True for stores (memory reference producing no register result). */
bool isStore(Op op);

/** True for loads. */
bool isLoad(Op op);

/**
 * True for vector-unit instructions (the extension ops operating on
 * V registers; kVSetLen counts as vector too).
 */
bool isVector(Op op);

/**
 * True if the instruction produces a register result and therefore
 * needs a result bus slot at its completion cycle.  Stores, branches
 * and kHalt do not.
 */
bool producesResult(Op op);

/**
 * Execution latency of @p op under configuration @p cfg: the number
 * of cycles from issue until the result is usable by a dependent
 * instruction (for branches: until the target stream may issue).
 */
unsigned latencyOf(Op op, const MachineConfig &cfg);

/** Mnemonic of @p op, e.g. "fadd". */
const char *mnemonicOf(Op op);

} // namespace mfusim

#endif // MFUSIM_CORE_OPCODE_HH
