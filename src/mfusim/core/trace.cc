/**
 * @file
 * Dynamic trace statistics.
 */

#include "mfusim/core/trace.hh"

#include "mfusim/core/branch_policy.hh"

namespace mfusim
{

TraceStats
DynTrace::stats() const
{
    TraceStats stats;
    stats.totalOps = ops_.size();
    for (const DynOp &op : ops_) {
        const OpTraits &traits = traitsOf(op.op);
        stats.perFu[static_cast<unsigned>(traits.fu)]++;
        stats.parcels += traits.parcels;
        if (isVector(op.op)) {
            stats.vectorOps++;
            stats.vectorElements += op.vl;
            stats.vectorElementsPerFu[static_cast<unsigned>(
                traits.fu)] += op.vl;
            stats.vectorOpsPerFu[static_cast<unsigned>(traits.fu)]++;
        }
        if (isBranch(op.op)) {
            stats.branches++;
            if (op.taken)
                stats.takenBranches++;
            if (btfnCorrect(op.backward, op.taken))
                stats.btfnCorrectBranches++;
        } else if (isLoad(op.op)) {
            stats.loads++;
        } else if (isStore(op.op)) {
            stats.stores++;
        }
    }
    return stats;
}

} // namespace mfusim
