/**
 * @file
 * Fundamental scalar types shared by every mfusim component.
 *
 * mfusim reproduces Pleszkun & Sohi, "The Performance Potential of
 * Multiple Functional Unit Processors" (UW-Madison CS TR #752 / ISCA
 * 1988).  All timing in the library is expressed in integral clock
 * cycles of a single global clock, exactly as in the paper: "All
 * operations are measured in clock units and the clock speed is the
 * same irrespective of the hardware organization."
 */

#ifndef MFUSIM_CORE_TYPES_HH
#define MFUSIM_CORE_TYPES_HH

#include <cstdint>

namespace mfusim
{

/** A point in time, or a duration, measured in processor clock cycles. */
using ClockCycle = std::uint64_t;

/**
 * Identifier of an architectural register.
 *
 * The register space is flat; see registers.hh for the layout of the
 * CRAY-1-like register files (A, S, B and T) inside it.
 */
using RegId = std::uint16_t;

/** Sentinel meaning "no register" (unused operand slot). */
constexpr RegId kNoReg = 0xffff;

/** Index of an instruction within a static Program. */
using StaticIndex = std::uint32_t;

/** Index of an instruction within a dynamic trace. */
using DynIndex = std::uint64_t;

} // namespace mfusim

#endif // MFUSIM_CORE_TYPES_HH
