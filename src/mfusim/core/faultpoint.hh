/**
 * @file
 * Deterministic, seeded fault injection for chaos testing.
 *
 * Robustness claims ("the daemon recovers from a torn cache write",
 * "a short socket read does not corrupt a response") are only worth
 * anything if the failure can be provoked on demand, repeatably, in
 * CI.  This module provides *named fault points*: code sites that ask
 * `faultAt("persist.write")` before doing something that can fail in
 * production, and normally get `false` at the cost of one relaxed
 * atomic load and a predicted branch.
 *
 * Faults are armed from a spec string (the `MFUSIM_FAULTS`
 * environment variable for the daemon), a comma-separated list of
 * entries:
 *
 *     MFUSIM_FAULTS="persist.write:every=7,http.read:short,worker.die:once"
 *
 * Each entry names a point plus optional arguments:
 *
 *   once        fire on the first evaluation only (alias times=1)
 *   every=N     fire on every Nth evaluation (N >= 1)
 *   after=N     skip the first N evaluations
 *   times=N     stop after N fires
 *   prob=P      fire with probability P per evaluation, drawn from a
 *               seeded LCG — deterministic for a given seed
 *   <word>      any other bare word is the *mode*, interpreted by the
 *               site ("short" = 1-byte socket I/O, "fail" = hard
 *               error, "torn" = half-written journal record)
 *
 * A standalone `seed=N` entry seeds the LCG (default 1), so `prob=`
 * schedules replay exactly.  Triggers compose: `persist.write:
 * after=10:every=3:times=2` fires on evaluations 13 and 16 only.
 * Unknown point names are a ConfigError — a typo must not silently
 * disarm a chaos run.
 *
 * Cost discipline: like the audit/obs hot paths, the disarmed check
 * is branch-predicted dead weight only (no fault point sits inside a
 * simulator issue loop — they guard I/O and thread-lifecycle sites).
 * Building with -DMFUSIM_NO_FAULT_INJECTION compiles every
 * `faultAt()` to a constant false, removing even the load.
 */

#ifndef MFUSIM_CORE_FAULTPOINT_HH
#define MFUSIM_CORE_FAULTPOINT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mfusim
{

/** Cumulative telemetry for one armed fault point. */
struct FaultPointStats
{
    std::string point;              //!< the armed point name
    std::string mode;               //!< site-interpreted mode word
    std::uint64_t evaluations = 0;  //!< times the site asked
    std::uint64_t fires = 0;        //!< times the fault fired
};

/**
 * The process-wide fault-point table.  configure() is meant to run
 * once at startup (or between test cases); shouldFire()/mode() are
 * thread-safe against each other.
 */
class FaultRegistry
{
  public:
    static FaultRegistry &instance();

    FaultRegistry() = default;
    FaultRegistry(const FaultRegistry &) = delete;
    FaultRegistry &operator=(const FaultRegistry &) = delete;

    /**
     * Parse @p spec and arm the listed points; an empty spec
     * disarms everything.  @throws ConfigError on grammar errors or
     * unknown point names.
     */
    void configure(const std::string &spec);

    /** configure() from $MFUSIM_FAULTS (absent/empty = disarmed). */
    void configureFromEnv();

    /** True when any point is armed. */
    bool armed() const;

    /** The spec configure() was last given ("" when disarmed). */
    std::string spec() const;

    /**
     * Evaluate @p point: count the evaluation and report whether the
     * fault fires now.  Unarmed points return false without
     * counting.  Prefer the faultAt() wrapper, which short-circuits
     * the whole call when nothing is armed.
     */
    bool shouldFire(const std::string &point);

    /** The mode word armed for @p point ("" when none/unarmed). */
    std::string mode(const std::string &point) const;

    /** Per-point telemetry for armed points, in spec order. */
    std::vector<FaultPointStats> stats() const;

    /**
     * Observe every fire: @p listener is invoked with the point name
     * right after shouldFire() decides to fire, outside the registry
     * lock (so the listener may re-enter the registry).  One listener
     * slot; null clears it.  The serve tier uses this to mark fires
     * on the request-trace timeline — the listener must therefore be
     * cheap and must not throw.
     */
    void setFireListener(std::function<void(const std::string &)>
                             listener);

    /** Disarm and zero all state (tests). */
    void reset();

  private:
    struct Rule;
    class Impl;
    Impl &impl() const;
};

/**
 * Every point name a spec may arm, with a one-line meaning.  Sites
 * and specs must agree on these strings; configure() rejects
 * anything else.
 */
struct FaultPointInfo
{
    const char *point;
    const char *meaning;
};
const std::vector<FaultPointInfo> &knownFaultPoints();

namespace detail
{
/** Fast-path arm flag; maintained by FaultRegistry::configure(). */
extern std::atomic<bool> faultsArmed;
} // namespace detail

#if defined(MFUSIM_NO_FAULT_INJECTION)

inline bool
faultAt(const char *)
{
    return false;
}

inline std::string
faultMode(const char *)
{
    return {};
}

#else

/**
 * The site-facing check: false at the cost of one relaxed load when
 * nothing is armed; otherwise one registry evaluation.
 */
inline bool
faultAt(const char *point)
{
    if (!detail::faultsArmed.load(std::memory_order_relaxed))
        return false;
    return FaultRegistry::instance().shouldFire(point);
}

/** The armed mode word for @p point; call only after faultAt(). */
inline std::string
faultMode(const char *point)
{
    return FaultRegistry::instance().mode(point);
}

#endif // MFUSIM_NO_FAULT_INJECTION

} // namespace mfusim

#endif // MFUSIM_CORE_FAULTPOINT_HH
