/**
 * @file
 * The CRAY-1-like architectural register files.
 *
 * The base architecture of the paper uses the CRAY-1S register
 * structure:
 *
 *  - 8 address registers   A0..A7  (24-bit in the real machine),
 *  - 8 scalar registers    S0..S7  (64-bit),
 *  - 64 address-save registers B0..B63,
 *  - 64 scalar-save registers   T0..T63.
 *
 * mfusim maps all of them into one flat RegId space so that hazard
 * scoreboards are simple dense arrays.  A0 plays a special role: it is
 * the register on which conditional branch decisions are made (the
 * paper: "the register upon which the branch decision is made").  S0
 * plays the same role for scalar-conditioned branches.
 */

#ifndef MFUSIM_CORE_REGISTERS_HH
#define MFUSIM_CORE_REGISTERS_HH

#include <cassert>
#include <string>

#include "mfusim/core/types.hh"

namespace mfusim
{

/** The CRAY-1 register files (plus the vector file and VL). */
enum class RegClass : std::uint8_t { A, S, B, T, V, VL };

constexpr unsigned kNumARegs = 8;
constexpr unsigned kNumSRegs = 8;
constexpr unsigned kNumBRegs = 64;
constexpr unsigned kNumTRegs = 64;
constexpr unsigned kNumVRegs = 8;
/** Elements per vector register (CRAY-1: 64). */
constexpr unsigned kVectorLength = 64;

constexpr RegId kABase = 0;
constexpr RegId kSBase = kABase + kNumARegs;
constexpr RegId kBBase = kSBase + kNumSRegs;
constexpr RegId kTBase = kBBase + kNumBRegs;
constexpr RegId kVBase = kTBase + kNumTRegs;
/** The vector-length register (a single architectural register). */
constexpr RegId kVlReg = kVBase + kNumVRegs;

/** Total number of architectural registers (size for scoreboards). */
constexpr unsigned kNumRegs = kNumARegs + kNumSRegs + kNumBRegs +
    kNumTRegs + kNumVRegs + 1;

/** Flat id of address register A<i>. */
constexpr RegId
regA(unsigned i)
{
    return static_cast<RegId>(kABase + i);
}

/** Flat id of scalar register S<i>. */
constexpr RegId
regS(unsigned i)
{
    return static_cast<RegId>(kSBase + i);
}

/** Flat id of address-save register B<i>. */
constexpr RegId
regB(unsigned i)
{
    return static_cast<RegId>(kBBase + i);
}

/** Flat id of scalar-save register T<i>. */
constexpr RegId
regT(unsigned i)
{
    return static_cast<RegId>(kTBase + i);
}

/** Flat id of vector register V<i>. */
constexpr RegId
regV(unsigned i)
{
    return static_cast<RegId>(kVBase + i);
}

/** Which register file a flat id belongs to. */
constexpr RegClass
classOf(RegId r)
{
    if (r < kSBase)
        return RegClass::A;
    if (r < kBBase)
        return RegClass::S;
    if (r < kTBase)
        return RegClass::B;
    if (r < kVBase)
        return RegClass::T;
    if (r < kVlReg)
        return RegClass::V;
    return RegClass::VL;
}

/** Index of a flat id within its register file. */
constexpr unsigned
indexOf(RegId r)
{
    switch (classOf(r)) {
      case RegClass::A:
        return r - kABase;
      case RegClass::S:
        return r - kSBase;
      case RegClass::B:
        return r - kBBase;
      case RegClass::T:
        return r - kTBase;
      case RegClass::V:
        return r - kVBase;
      default:
        return 0;       // VL
    }
}

/** True if @p r names a real architectural register. */
constexpr bool
isValidReg(RegId r)
{
    return r < kNumRegs;
}

/** Human-readable register name, e.g. "A0", "S3", "B17", "T63". */
std::string regName(RegId r);

/** Convenience constants for the most frequently used registers. */
constexpr RegId A0 = regA(0);
constexpr RegId A1 = regA(1);
constexpr RegId A2 = regA(2);
constexpr RegId A3 = regA(3);
constexpr RegId A4 = regA(4);
constexpr RegId A5 = regA(5);
constexpr RegId A6 = regA(6);
constexpr RegId A7 = regA(7);

constexpr RegId S0 = regS(0);
constexpr RegId S1 = regS(1);
constexpr RegId S2 = regS(2);
constexpr RegId S3 = regS(3);
constexpr RegId S4 = regS(4);
constexpr RegId S5 = regS(5);
constexpr RegId S6 = regS(6);
constexpr RegId S7 = regS(7);

} // namespace mfusim

#endif // MFUSIM_CORE_REGISTERS_HH
