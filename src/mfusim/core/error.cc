/**
 * @file
 * Structured error hierarchy: aggregate message formatting.
 */

#include "mfusim/core/error.hh"

namespace mfusim
{

std::string
SweepError::format(const std::vector<Failure> &failures,
                   std::size_t cells)
{
    std::string text = "sweep: " + std::to_string(failures.size()) +
        " of " + std::to_string(cells) + " cells failed";
    for (const Failure &failure : failures) {
        text += "\n  cell " + std::to_string(failure.cell) + ": " +
            failure.message;
    }
    return text;
}

} // namespace mfusim
