/**
 * @file
 * Dynamic instruction traces.
 *
 * All of the paper's simulations are trace driven: "Instruction traces
 * were generated for each of the benchmark programs and then used to
 * drive the simulations."  A DynTrace is the executed instruction
 * stream of one benchmark run, in execution order, with branch
 * outcomes recorded.  Timing simulators and the dataflow analyzers
 * consume DynTraces; the functional Interpreter produces them.
 */

#ifndef MFUSIM_CORE_TRACE_HH
#define MFUSIM_CORE_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mfusim/core/opcode.hh"
#include "mfusim/core/registers.hh"
#include "mfusim/core/types.hh"

namespace mfusim
{

/**
 * One executed instruction in a dynamic trace.
 *
 * Operand fields follow the conventions of Instruction; the
 * displacement / immediate is dropped because it never affects
 * timing.  For branches, `taken` records the resolved outcome so
 * instruction-buffer models know whether the instructions that follow
 * the branch in the trace are its fall-through path or its target.
 */
struct DynOp
{
    Op op = Op::kHalt;
    RegId dst = kNoReg;
    RegId srcA = kNoReg;
    RegId srcB = kNoReg;
    StaticIndex staticIdx = 0;  //!< index of the static instruction
    bool taken = false;         //!< branch outcome (branches only)
    bool backward = false;      //!< branch target precedes the branch
    /** Vector length at execution (vector ops only; 0 = scalar). */
    std::uint8_t vl = 0;
};

/**
 * Cycles an instruction holds its (pipelined) execution resource:
 * one per element for vector compute/memory ops, otherwise 1.
 * kVSetLen records the new VL in its vl field but is an ordinary
 * 1-cycle transfer.
 */
inline unsigned
vectorOccupancy(const DynOp &op)
{
    if (!isVector(op.op) || op.op == Op::kVSetLen)
        return 1;
    return op.vl > 0 ? op.vl : 1;
}

/** Aggregate composition statistics of a trace. */
struct TraceStats
{
    std::uint64_t totalOps = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    /** Branches a static backward-taken predictor gets right. */
    std::uint64_t btfnCorrectBranches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t parcels = 0;
    std::uint64_t vectorOps = 0;        //!< vector-unit instructions
    std::uint64_t vectorElements = 0;   //!< total elements processed
    /** Dynamic op count per functional-unit class. */
    std::array<std::uint64_t, kNumFuClasses> perFu{};
    /** Vector elements streamed through each unit class. */
    std::array<std::uint64_t, kNumFuClasses> vectorElementsPerFu{};
    /** Vector instructions per unit class. */
    std::array<std::uint64_t, kNumFuClasses> vectorOpsPerFu{};

    /** Fraction of dynamic instructions that reference memory. */
    double
    memoryFraction() const
    {
        return totalOps == 0 ?
            0.0 : double(loads + stores) / double(totalOps);
    }

    /** Accuracy of the static backward-taken/forward-not-taken
     *  predictor on this trace. */
    double
    btfnAccuracy() const
    {
        return branches == 0 ?
            0.0 : double(btfnCorrectBranches) / double(branches);
    }
};

/**
 * A dynamic instruction trace: the executed instruction stream of one
 * benchmark, plus identification metadata.
 */
class DynTrace
{
  public:
    DynTrace() = default;
    explicit DynTrace(std::string name) : name_(std::move(name)) {}

    /** Append one executed instruction. */
    void
    append(const DynOp &op)
    {
        ops_.push_back(op);
    }

    void
    reserve(std::size_t n)
    {
        ops_.reserve(n);
    }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    const DynOp &operator[](DynIndex i) const { return ops_[i]; }

    const std::vector<DynOp> &ops() const { return ops_; }

    /** Compute composition statistics over the whole trace. */
    TraceStats stats() const;

  private:
    std::string name_;
    std::vector<DynOp> ops_;
};

} // namespace mfusim

#endif // MFUSIM_CORE_TRACE_HH
