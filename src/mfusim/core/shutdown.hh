/**
 * @file
 * Cooperative SIGINT/SIGTERM shutdown for long-running commands.
 *
 * A naked Ctrl-C during a sweep kills the process wherever it
 * happens to be — possibly halfway through writing a metrics or
 * trace file, leaving a truncated artifact that looks valid enough
 * to mislead.  Long-running entry points (the sweep-driving CLI
 * commands and the serve daemon) instead install a handler ONCE via
 * installShutdownHandler(); the handler only records the signal and
 * writes one byte into a self-pipe, both async-signal-safe.  Work
 * loops poll shutdownRequested() at cell granularity and drain,
 * letting the caller flush partial output and exit with the
 * conventional 128+signo code; poll()-based servers add
 * shutdownFd() to their fd set so a signal wakes a blocked loop
 * immediately.
 *
 * Short interactive commands do not install the handler, so Ctrl-C
 * keeps its default kill behaviour for them.
 */

#ifndef MFUSIM_CORE_SHUTDOWN_HH
#define MFUSIM_CORE_SHUTDOWN_HH

namespace mfusim
{

/**
 * Install the SIGINT/SIGTERM handler.  Idempotent: only the first
 * call changes signal dispositions, later calls are no-ops.  Safe to
 * call from any thread before worker threads start.
 */
void installShutdownHandler();

/** True once a SIGINT or SIGTERM has been received. */
bool shutdownRequested();

/**
 * The signal that triggered shutdown (SIGINT or SIGTERM), or 0 when
 * none has arrived.  The CLI exits with 128 + this value after
 * flushing partial output.
 */
int shutdownSignal();

/**
 * Read end of the shutdown self-pipe, or -1 before
 * installShutdownHandler().  Becomes readable (one byte, never
 * consumed by this module) when a shutdown signal arrives; poll()
 * loops add it to their fd set to wake instantly.  Do not read or
 * close it.
 */
int shutdownFd();

/**
 * Reset the shutdown flag (testing only — the pipe is left alone, so
 * an fd-based waiter may still see it readable).
 */
void resetShutdownForTests();

} // namespace mfusim

#endif // MFUSIM_CORE_SHUTDOWN_HH
