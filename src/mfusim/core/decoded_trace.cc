/**
 * @file
 * Trace pre-decode implementation.
 */

#include "mfusim/core/decoded_trace.hh"

#include <array>
#include <cassert>
#include <limits>

#include "mfusim/core/branch_policy.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/registers.hh"

namespace mfusim
{

DecodedTrace::DecodedTrace(const DynTrace &trace,
                           const MachineConfig &cfg)
    : name_(trace.name()), cfg_(cfg)
{
    cfg_.validate();
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();
    if (n >= kNoProducer) {
        throw TraceError(
            "trace \"" + name_ + "\" has " + std::to_string(n) +
            " ops, too long for 32-bit producer links (max " +
            std::to_string(kNoProducer - 1) + ")");
    }

    op_.reserve(n);
    fu_.reserve(n);
    flags_.reserve(n);
    latency_.reserve(n);
    occupancy_.reserve(n);
    dst_.reserve(n);
    srcA_.reserve(n);
    srcB_.reserve(n);
    staticIdx_.reserve(n);
    prodA_.reserve(n);
    prodB_.reserve(n);
    prevWriter_.reserve(n);

    std::array<std::uint32_t, kNumRegs> lastWriter;
    lastWriter.fill(kNoProducer);

    stats_.totalOps = n;
    for (std::size_t i = 0; i < n; ++i) {
        const DynOp &dyn = ops[i];
        const OpTraits &traits = traitsOf(dyn.op);
        const unsigned fu_idx = unsigned(traits.fu);
        const unsigned latency = latencyOf(dyn.op, cfg);
        const unsigned occupancy = vectorOccupancy(dyn);
        assert(latency <= std::numeric_limits<std::uint16_t>::max());
        assert(occupancy <= std::numeric_limits<std::uint16_t>::max());

        std::uint8_t flags = 0;
        if (mfusim::isBranch(dyn.op))
            flags |= kIsBranch;
        if (mfusim::isVector(dyn.op))
            flags |= kIsVector;
        if (traits.fu == FuClass::kMemory)
            flags |= kIsMemory;
        if (traits.fu == FuClass::kTransfer)
            flags |= kIsTransfer;
        if (mfusim::producesResult(dyn.op))
            flags |= kProducesResult;
        if (dyn.taken)
            flags |= kTaken;
        if (mfusim::btfnCorrect(dyn.backward, dyn.taken))
            flags |= kBtfnCorrect;

        op_.push_back(dyn.op);
        fu_.push_back(std::uint8_t(fu_idx));
        flags_.push_back(flags);
        latency_.push_back(std::uint16_t(latency));
        occupancy_.push_back(std::uint16_t(occupancy));
        dst_.push_back(dyn.dst);
        srcA_.push_back(dyn.srcA);
        srcB_.push_back(dyn.srcB);
        staticIdx_.push_back(std::uint32_t(dyn.staticIdx));

        prodA_.push_back(dyn.srcA == kNoReg ? kNoProducer
                                            : lastWriter[dyn.srcA]);
        prodB_.push_back(dyn.srcB == kNoReg ? kNoProducer
                                            : lastWriter[dyn.srcB]);
        prevWriter_.push_back(dyn.dst == kNoReg ? kNoProducer
                                                : lastWriter[dyn.dst]);
        if (dyn.dst != kNoReg)
            lastWriter[dyn.dst] = std::uint32_t(i);

        // Composition statistics, fused into the decode pass
        // (field-for-field the same accounting as DynTrace::stats()).
        stats_.perFu[fu_idx]++;
        stats_.parcels += traits.parcels;
        if (flags & kIsVector) {
            hasVector_ = true;
            stats_.vectorOps++;
            stats_.vectorElements += dyn.vl;
            stats_.vectorElementsPerFu[fu_idx] += dyn.vl;
            stats_.vectorOpsPerFu[fu_idx]++;
        }
        if (flags & kIsBranch) {
            stats_.branches++;
            if (dyn.taken)
                stats_.takenBranches++;
            if (flags & kBtfnCorrect)
                stats_.btfnCorrectBranches++;
        } else if (mfusim::isLoad(dyn.op)) {
            stats_.loads++;
        } else if (mfusim::isStore(dyn.op)) {
            stats_.stores++;
        }
    }
}

const std::vector<RegId> &
DecodedTrace::writtenRegs() const
{
    std::call_once(writtenOnce_, [&] {
        std::array<bool, kNumRegs> seen{};
        for (const RegId dst : dst_) {
            if (dst != kNoReg && !seen[dst]) {
                seen[dst] = true;
                written_.push_back(dst);
            }
        }
    });
    return written_;
}

} // namespace mfusim
