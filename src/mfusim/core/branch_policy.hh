/**
 * @file
 * Branch handling policies (extension beyond the paper).
 *
 * The paper deliberately models no speculation: "we have not
 * incorporated any type of guessing or branch prediction to get an
 * early start on the execution of a likely branch target path.
 * Execution of the branch target is not started until the branch
 * outcome is known."  mfusim additionally implements two policies to
 * quantify what that assumption costs (bench/ablation_speculation):
 *
 *  - kBlocking: the paper's model.  A branch issues once its
 *    condition register is available and blocks all later issue for
 *    the configured branch time.
 *  - kBtfn: static backward-taken / forward-not-taken prediction.
 *    A correctly predicted branch costs only its issue slot; a
 *    mispredicted branch blocks later issue until it resolves
 *    (condition available) plus the branch time (refetch).
 *  - kOracle: perfect prediction; every branch costs only its issue
 *    slot.  An upper bound on any prediction scheme.
 *
 * Idealization (documented in DESIGN.md): wrong-path instructions
 * consume no functional-unit or bus resources, and speculation depth
 * is unbounded.  The policies therefore bracket, rather than model, a real
 * speculative front end.
 */

#ifndef MFUSIM_CORE_BRANCH_POLICY_HH
#define MFUSIM_CORE_BRANCH_POLICY_HH

#include <cstdint>

namespace mfusim
{

/** How the issue stage treats branches. */
enum class BranchPolicy : std::uint8_t
{
    kBlocking,  //!< the paper's model: wait for outcome, then block
    kBtfn,      //!< static backward-taken/forward-not-taken predictor
    kOracle,    //!< perfect prediction (bound)
};

/** Display name: "blocking", "btfn", "oracle". */
const char *branchPolicyName(BranchPolicy policy);

/**
 * True if the BTFN predictor gets this branch right.
 *
 * @param backward the branch target precedes the branch
 * @param taken    the resolved outcome
 */
constexpr bool
btfnCorrect(bool backward, bool taken)
{
    return backward == taken;
}

} // namespace mfusim

#endif // MFUSIM_CORE_BRANCH_POLICY_HH
