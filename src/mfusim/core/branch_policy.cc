/**
 * @file
 * Branch policy names.
 */

#include "mfusim/core/branch_policy.hh"

namespace mfusim
{

const char *
branchPolicyName(BranchPolicy policy)
{
    switch (policy) {
      case BranchPolicy::kBlocking:
        return "blocking";
      case BranchPolicy::kBtfn:
        return "btfn";
      default:
        return "oracle";
    }
}

} // namespace mfusim
