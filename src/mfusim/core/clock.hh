/**
 * @file
 * Monotonic wall-clock helpers for the serving tier.
 *
 * Request-lifecycle tracing (obs/req_trace.hh) stamps every phase
 * boundary of every request, so the clock read is on the reactor's
 * hot path.  monoNanos() reads CLOCK_MONOTONIC, which Linux serves
 * from the vDSO — roughly 20 ns, no syscall.  An RDTSC fast path was
 * considered and rejected: spans mix stamps taken on the reactor and
 * worker threads, and CLOCK_MONOTONIC is the only clock that
 * guarantees reads ordered by happens-before are non-decreasing
 * across cores — the phase-sum identity (every phase duration is
 * non-negative and the phases sum exactly to the request total)
 * depends on that.
 *
 * The process-start anchor gives /metrics and /healthz a cheap
 * uptime without any extra state in the service layer.
 */

#ifndef MFUSIM_CORE_CLOCK_HH
#define MFUSIM_CORE_CLOCK_HH

#include <cstdint>
#include <ctime>

namespace mfusim
{

/** Nanoseconds on CLOCK_MONOTONIC (vDSO-fast, cross-thread safe). */
inline std::uint64_t
monoNanos()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return std::uint64_t(ts.tv_sec) * 1000000000ull +
        std::uint64_t(ts.tv_nsec);
}

/**
 * monoNanos() captured when the process (strictly: this translation
 * unit's static initializers) started.  Stable for the process
 * lifetime.
 */
std::uint64_t processStartNanos();

/** Seconds since processStartNanos(). */
double processUptimeSeconds();

} // namespace mfusim

#endif // MFUSIM_CORE_CLOCK_HH
