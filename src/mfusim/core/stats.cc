/**
 * @file
 * Statistics helpers.
 */

#include "mfusim/core/stats.hh"

#include <cassert>
#include <cmath>

namespace mfusim
{

double
harmonicMean(std::span<const double> rates)
{
    if (rates.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double r : rates) {
        assert(r > 0.0 && "harmonic mean requires positive rates");
        inv_sum += 1.0 / r;
    }
    return double(rates.size()) / inv_sum;
}

double
arithmeticMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

double
geometricMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0 && "geometric mean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

} // namespace mfusim
