/**
 * @file
 * Statistics helpers used throughout the paper's evaluation.
 *
 * The paper reports "the harmonic mean of the individual loop issue
 * rates (number of instructions issued per clock cycle)" for each
 * loop class, citing Worlton's argument that the harmonic mean is the
 * right way to aggregate rates.
 */

#ifndef MFUSIM_CORE_STATS_HH
#define MFUSIM_CORE_STATS_HH

#include <span>
#include <vector>

namespace mfusim
{

/**
 * Harmonic mean of a set of rates: n / sum(1/x_i).
 *
 * Returns 0 for an empty input; every element must be > 0.
 */
double harmonicMean(std::span<const double> rates);

/** Arithmetic mean; returns 0 for an empty input. */
double arithmeticMean(std::span<const double> values);

/** Geometric mean; returns 0 for an empty input. */
double geometricMean(std::span<const double> values);

} // namespace mfusim

#endif // MFUSIM_CORE_STATS_HH
