/**
 * @file
 * Dynamic trace serialization.
 *
 * A simple line-oriented text format so traces can be archived,
 * diffed, or fed to external tools — the workflow the paper's group
 * used, where trace generation and timing simulation were separate
 * programs:
 *
 *   mfusim-trace v1
 *   name LL5
 *   ops 3996
 *   <mnemonic> <dst> <srcA> <srcB> <staticIdx> <T|N|-> <B|F|->
 *   ...
 *
 * Registers print as names ("S1", "A0", "--"); the last two fields
 * are branch outcome (Taken / Not-taken / not-a-branch) and target
 * direction (Backward / Forward / not-a-branch).
 */

#ifndef MFUSIM_CORE_TRACE_IO_HH
#define MFUSIM_CORE_TRACE_IO_HH

#include <iosfwd>

#include "mfusim/core/trace.hh"

namespace mfusim
{

/** Write @p trace to @p os in the mfusim-trace v1 format. */
void saveTrace(std::ostream &os, const DynTrace &trace);

/**
 * Parse a trace from @p is.
 *
 * The input is treated as untrusted: numeric fields are parsed with
 * explicit range checks, the header op count is capped before any
 * allocation, and branch-outcome fields are validated strictly
 * (T|N and B|F on branches, "- -" elsewhere).
 *
 * @throws TraceError (a std::runtime_error) on any malformed input —
 *         bad header, unknown mnemonic or register, out-of-range
 *         numeric field, oversized or mismatched op count.
 */
DynTrace loadTrace(std::istream &is);

} // namespace mfusim

#endif // MFUSIM_CORE_TRACE_IO_HH
