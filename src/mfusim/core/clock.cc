/**
 * @file
 * Process-start anchor for uptime reporting.
 */

#include "mfusim/core/clock.hh"

namespace mfusim
{

namespace
{

/** Captured at static-init time, before main() runs. */
const std::uint64_t g_processStartNs = monoNanos();

} // namespace

std::uint64_t
processStartNanos()
{
    return g_processStartNs;
}

double
processUptimeSeconds()
{
    return double(monoNanos() - g_processStartNs) * 1e-9;
}

} // namespace mfusim
