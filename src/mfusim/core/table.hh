/**
 * @file
 * Minimal ASCII table formatter for the benchmark harness.
 *
 * Every bench binary prints its reproduction of one paper table as a
 * fixed-width ASCII table: measured value, the paper's published
 * value, and their ratio, side by side.
 */

#ifndef MFUSIM_CORE_TABLE_HH
#define MFUSIM_CORE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mfusim
{

/**
 * A table of strings with per-column width auto-sizing.
 *
 * Build it row by row (addRow / cell helpers) and render with print().
 * The first row added via setHeader() is underlined in the output.
 */
class AsciiTable
{
  public:
    /** Set the header row (printed first, underlined). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; it may be shorter than the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule between row groups. */
    void addRule();

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 2);

    /** Render the table. */
    void print(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    // Empty vector encodes a horizontal rule.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mfusim

#endif // MFUSIM_CORE_TABLE_HH
