/**
 * @file
 * Pre-decoded dynamic traces: structure-of-arrays opcode traits.
 *
 * Every timing simulator walks its trace many times per experiment
 * (cycle loops revisit unissued instructions), and every visit used
 * to re-resolve the same static facts through traitsOf()/latencyOf():
 * functional-unit class, effective latency under the machine
 * configuration, vector occupancy, branch/store/result flags.  A
 * DecodedTrace resolves all of that exactly once per (trace, machine
 * configuration) pair and stores it in tightly packed parallel
 * arrays, so the simulators' hot loops reduce to integer loads.
 *
 * The decode additionally precomputes the program-order dependence
 * links (last earlier writer of each operand and of the destination)
 * that MultiIssueSim and RuuSim previously rebuilt on every run, and
 * the whole-trace composition statistics the dataflow resource limit
 * needs.
 *
 * Contract: decode once, run many.  A DecodedTrace is immutable
 * after construction and therefore safe to share across concurrent
 * simulator runs (see TraceLibrary::decoded() for the process-wide
 * cache).  Simulators verify that the decoded configuration matches
 * their own, because the stored latencies embed memLatency and
 * branchTime.
 */

#ifndef MFUSIM_CORE_DECODED_TRACE_HH
#define MFUSIM_CORE_DECODED_TRACE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/opcode.hh"
#include "mfusim/core/trace.hh"
#include "mfusim/core/types.hh"

namespace mfusim
{

struct TracePeriodicity;

/**
 * One dynamic trace with all per-op static properties resolved for
 * one machine configuration, in parallel arrays indexed by trace
 * position.
 */
class DecodedTrace
{
  public:
    /** No earlier writer of the operand (or unused operand slot). */
    static constexpr std::uint32_t kNoProducer = 0xffffffffu;

    // Per-op property bits returned by flags().
    static constexpr std::uint8_t kIsBranch = 1u << 0;
    static constexpr std::uint8_t kIsVector = 1u << 1;
    static constexpr std::uint8_t kIsMemory = 1u << 2;
    static constexpr std::uint8_t kIsTransfer = 1u << 3;
    static constexpr std::uint8_t kProducesResult = 1u << 4;
    static constexpr std::uint8_t kTaken = 1u << 5;
    static constexpr std::uint8_t kBtfnCorrect = 1u << 6;

    /** Decode @p trace under @p cfg (one pass over the ops). */
    DecodedTrace(const DynTrace &trace, const MachineConfig &cfg);

    const std::string &name() const { return name_; }
    const MachineConfig &config() const { return cfg_; }

    std::size_t size() const { return op_.size(); }
    bool empty() const { return op_.empty(); }

    /** True if any op is a vector-unit instruction. */
    bool hasVector() const { return hasVector_; }

    /** Composition statistics (same values as DynTrace::stats()). */
    const TraceStats &stats() const { return stats_; }

    /**
     * Periodic-structure analysis of this trace (see
     * dataflow/period_detector.hh), computed lazily on first use and
     * cached for the life of the trace.  Thread safe; the steady-
     * state fast path of every simulator starts here.
     */
    const TracePeriodicity &periodicity() const;

    /**
     * The distinct destination registers this trace ever writes, in
     * first-write order.  Computed lazily and cached: the steady-
     * state fast path scans this list at every iteration boundary
     * instead of all kNumRegs (or all ops) per run.  Thread safe.
     */
    const std::vector<RegId> &writtenRegs() const;

    // ---- per-op decoded fields -----------------------------------

    Op op(std::size_t i) const { return op_[i]; }
    FuClass fu(std::size_t i) const { return FuClass(fu_[i]); }

    /** Effective latency: latencyOf(op, config()). */
    unsigned latency(std::size_t i) const { return latency_[i]; }

    /** vectorOccupancy(): unit-holding cycles (1 for scalar ops). */
    unsigned occupancy(std::size_t i) const { return occupancy_[i]; }

    std::uint8_t flags(std::size_t i) const { return flags_[i]; }
    bool isBranch(std::size_t i) const { return flags_[i] & kIsBranch; }
    bool isVector(std::size_t i) const { return flags_[i] & kIsVector; }
    bool isMemory(std::size_t i) const { return flags_[i] & kIsMemory; }
    bool
    isTransfer(std::size_t i) const
    {
        return flags_[i] & kIsTransfer;
    }
    bool
    producesResult(std::size_t i) const
    {
        return flags_[i] & kProducesResult;
    }
    bool taken(std::size_t i) const { return flags_[i] & kTaken; }
    /** The static BTFN predictor gets this branch right. */
    bool
    btfnCorrect(std::size_t i) const
    {
        return flags_[i] & kBtfnCorrect;
    }

    RegId dst(std::size_t i) const { return dst_[i]; }
    RegId srcA(std::size_t i) const { return srcA_[i]; }
    RegId srcB(std::size_t i) const { return srcB_[i]; }

    /** Static instruction index (branch-predictor table hashing). */
    std::uint32_t
    staticIdx(std::size_t i) const
    {
        return staticIdx_[i];
    }

    // ---- program-order dependence links --------------------------

    /** Index of the last earlier writer of srcA, or kNoProducer. */
    std::uint32_t prodA(std::size_t i) const { return prodA_[i]; }
    /** Index of the last earlier writer of srcB, or kNoProducer. */
    std::uint32_t prodB(std::size_t i) const { return prodB_[i]; }
    /** Index of the last earlier writer of dst, or kNoProducer. */
    std::uint32_t
    prevWriter(std::size_t i) const
    {
        return prevWriter_[i];
    }

  private:
    std::string name_;
    MachineConfig cfg_;
    TraceStats stats_;
    bool hasVector_ = false;

    std::vector<Op> op_;
    std::vector<std::uint8_t> fu_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint16_t> latency_;
    std::vector<std::uint16_t> occupancy_;
    std::vector<RegId> dst_;
    std::vector<RegId> srcA_;
    std::vector<RegId> srcB_;
    std::vector<std::uint32_t> staticIdx_;
    std::vector<std::uint32_t> prodA_;
    std::vector<std::uint32_t> prodB_;
    std::vector<std::uint32_t> prevWriter_;

    // Lazy periodicity cache (built in period_detector.cc, where
    // TracePeriodicity is complete; shared_ptr type-erases the
    // deleter so this header needs only the forward declaration).
    // once_flag makes the trace non-copyable, which matches the
    // decode-once-share-everywhere contract.
    mutable std::once_flag periodicityOnce_;
    mutable std::shared_ptr<const TracePeriodicity> periodicity_;

    mutable std::once_flag writtenOnce_;
    mutable std::vector<RegId> written_;
};

} // namespace mfusim

#endif // MFUSIM_CORE_DECODED_TRACE_HH
