/**
 * @file
 * Static opcode metadata tables.
 */

#include "mfusim/core/opcode.hh"

#include <cassert>

namespace mfusim
{

namespace
{

/**
 * The traits table, indexed by Op.  Latency 0 means "depends on the
 * machine configuration" (memory references and branches).
 *
 * Parcel counts follow the CRAY-1S encoding rules: register-register
 * operations are 1 parcel; instructions carrying a 22-bit constant
 * (immediates, memory displacements, branch addresses) are 2 parcels.
 */
const OpTraits opTraitsTable[kNumOps] = {
    // mnemonic   fu                       lat par shape
    { "aconst",   FuClass::kTransfer,       1, 2, OperandShape::kNone },
    { "aadd",     FuClass::kAddrAdd,        2, 1, OperandShape::kTwoSrc },
    { "aaddi",    FuClass::kAddrAdd,        2, 1, OperandShape::kSrcImm },
    { "asub",     FuClass::kAddrAdd,        2, 1, OperandShape::kTwoSrc },
    { "amul",     FuClass::kAddrMul,        6, 1, OperandShape::kTwoSrc },
    { "amovs",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },
    { "amovb",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },
    { "bmova",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },

    { "sconst",   FuClass::kTransfer,       1, 2, OperandShape::kNone },
    { "sadd",     FuClass::kScalarAdd,      3, 1, OperandShape::kTwoSrc },
    { "ssub",     FuClass::kScalarAdd,      3, 1, OperandShape::kTwoSrc },
    { "sand",     FuClass::kScalarLogical,  1, 1, OperandShape::kTwoSrc },
    { "sor",      FuClass::kScalarLogical,  1, 1, OperandShape::kTwoSrc },
    { "sxor",     FuClass::kScalarLogical,  1, 1, OperandShape::kTwoSrc },
    { "sshl",     FuClass::kScalarShift,    2, 1, OperandShape::kSrcImm },
    { "sshr",     FuClass::kScalarShift,    2, 1, OperandShape::kSrcImm },
    { "smovs",    FuClass::kScalarLogical,  1, 1, OperandShape::kOneSrc },
    { "smova",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },
    { "smovt",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },
    { "tmovs",    FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },

    { "fadd",     FuClass::kFpAdd,          6, 1, OperandShape::kTwoSrc },
    { "fsub",     FuClass::kFpAdd,          6, 1, OperandShape::kTwoSrc },
    { "fmul",     FuClass::kFpMul,          7, 1, OperandShape::kTwoSrc },
    { "frecip",   FuClass::kRecip,         14, 1, OperandShape::kOneSrc },
    { "sfix",     FuClass::kFpAdd,          6, 1, OperandShape::kOneSrc },
    { "sfloat",   FuClass::kFpAdd,          6, 1, OperandShape::kOneSrc },

    { "loada",    FuClass::kMemory,         0, 2, OperandShape::kLoad },
    { "loads",    FuClass::kMemory,         0, 2, OperandShape::kLoad },
    { "storea",   FuClass::kMemory,         0, 2, OperandShape::kStore },
    { "stores",   FuClass::kMemory,         0, 2, OperandShape::kStore },

    { "vsetlen",  FuClass::kTransfer,       1, 1, OperandShape::kOneSrc },
    { "vload",    FuClass::kMemory,         0, 1, OperandShape::kLoad },
    { "vstore",   FuClass::kMemory,         0, 1, OperandShape::kStore },
    { "vfadd",    FuClass::kFpAdd,          6, 1, OperandShape::kTwoSrc },
    { "vfsub",    FuClass::kFpAdd,          6, 1, OperandShape::kTwoSrc },
    { "vfmul",    FuClass::kFpMul,          7, 1, OperandShape::kTwoSrc },
    { "vfaddsv",  FuClass::kFpAdd,          6, 1, OperandShape::kTwoSrc },
    { "vfmulsv",  FuClass::kFpMul,          7, 1, OperandShape::kTwoSrc },

    { "braz",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "branz",    FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "brap",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "bram",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "brsz",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "brsnz",    FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "brsp",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "brsm",     FuClass::kBranch,         0, 2, OperandShape::kBranchCond },
    { "jump",     FuClass::kBranch,         0, 2,
      OperandShape::kBranchUncond },
    { "halt",     FuClass::kBranch,         0, 1, OperandShape::kNone },
};

const char *fuClassNames[kNumFuClasses] = {
    "Transfer", "AddrAdd", "AddrMul", "ScalarAdd", "ScalarLogical",
    "ScalarShift", "FpAdd", "FpMul", "Recip", "Memory", "Branch",
};

} // namespace

const OpTraits &
traitsOf(Op op)
{
    const auto idx = static_cast<unsigned>(op);
    assert(idx < kNumOps);
    return opTraitsTable[idx];
}

const char *
fuClassName(FuClass fu)
{
    const auto idx = static_cast<unsigned>(fu);
    assert(idx < kNumFuClasses);
    return fuClassNames[idx];
}

bool
isBranch(Op op)
{
    return traitsOf(op).fu == FuClass::kBranch && op != Op::kHalt;
}

bool
isMemory(Op op)
{
    return traitsOf(op).fu == FuClass::kMemory;
}

bool
isStore(Op op)
{
    return traitsOf(op).shape == OperandShape::kStore;
}

bool
isLoad(Op op)
{
    return traitsOf(op).shape == OperandShape::kLoad;
}

bool
isVector(Op op)
{
    switch (op) {
      case Op::kVSetLen:
      case Op::kVLoad:
      case Op::kVStore:
      case Op::kVFAdd:
      case Op::kVFSub:
      case Op::kVFMul:
      case Op::kVFAddSV:
      case Op::kVFMulSV:
        return true;
      default:
        return false;
    }
}

bool
producesResult(Op op)
{
    return !isBranch(op) && !isStore(op) && op != Op::kHalt;
}

unsigned
latencyOf(Op op, const MachineConfig &cfg)
{
    const OpTraits &traits = traitsOf(op);
    if (traits.fu == FuClass::kMemory)
        return cfg.memLatency;
    if (traits.fu == FuClass::kBranch)
        return cfg.branchTime;
    return traits.latency;
}

const char *
mnemonicOf(Op op)
{
    return traitsOf(op).mnemonic;
}

} // namespace mfusim
