/**
 * @file
 * Shutdown handler implementation (self-pipe + atomic flag).
 */

#include "mfusim/core/shutdown.hh"

#include <atomic>
#include <csignal>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

namespace mfusim
{

namespace
{

std::atomic<int> g_signal{ 0 };
std::atomic<int> g_pipe_write{ -1 };
int g_pipe_read = -1;
std::once_flag g_install_once;

extern "C" void
shutdownSignalHandler(int signo)
{
    // Async-signal-safe only: one store, one write.
    g_signal.store(signo, std::memory_order_relaxed);
    const int fd = g_pipe_write.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 1;
        // A full pipe just means a wake-up is already pending.
        (void)!write(fd, &byte, 1);
    }
}

} // namespace

void
installShutdownHandler()
{
    std::call_once(g_install_once, [] {
        int fds[2];
        if (pipe(fds) == 0) {
            fcntl(fds[0], F_SETFL, O_NONBLOCK);
            fcntl(fds[1], F_SETFL, O_NONBLOCK);
            fcntl(fds[0], F_SETFD, FD_CLOEXEC);
            fcntl(fds[1], F_SETFD, FD_CLOEXEC);
            g_pipe_read = fds[0];
            g_pipe_write.store(fds[1], std::memory_order_relaxed);
        }
        struct sigaction action = {};
        action.sa_handler = shutdownSignalHandler;
        sigemptyset(&action.sa_mask);
        // No SA_RESTART: a signal must interrupt blocking accept()/
        // read() calls so their loops notice the flag.
        action.sa_flags = 0;
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);
    });
}

bool
shutdownRequested()
{
    return g_signal.load(std::memory_order_relaxed) != 0;
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

int
shutdownFd()
{
    return g_pipe_read;
}

void
resetShutdownForTests()
{
    g_signal.store(0, std::memory_order_relaxed);
    // Drain any pending wake-up bytes so fd waiters re-arm.
    if (g_pipe_read >= 0) {
        char buf[16];
        while (read(g_pipe_read, buf, sizeof(buf)) > 0) {
        }
    }
}

} // namespace mfusim
