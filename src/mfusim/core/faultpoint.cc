/**
 * @file
 * FaultRegistry: spec parsing and deterministic trigger evaluation.
 */

#include "mfusim/core/faultpoint.hh"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "mfusim/core/error.hh"

namespace mfusim
{

namespace detail
{
std::atomic<bool> faultsArmed{ false };
} // namespace detail

const std::vector<FaultPointInfo> &
knownFaultPoints()
{
    static const std::vector<FaultPointInfo> points = {
        { "persist.write",
          "journal append write fails (mode 'torn': half a record "
          "reaches disk, as after a crash mid-write)" },
        { "persist.fsync", "journal fsync fails" },
        { "persist.load",
          "allocation failure while warm-loading the cache journal" },
        { "persist.compact", "journal compaction rewrite fails" },
        { "http.read",
          "socket read misbehaves (mode 'short': 1 byte per read; "
          "mode 'fail': hard error)" },
        { "http.write",
          "socket write misbehaves (mode 'short': 1 byte per write; "
          "mode 'fail': hard error)" },
        { "worker.die", "a serving worker thread dies mid-request" },
        { "worker.overrun",
          "request handling overruns its deadline and answers 503" },
    };
    return points;
}

/** One armed point: trigger parameters + counters. */
struct FaultRegistry::Rule
{
    std::uint64_t every = 0;    //!< fire on every Nth eligible eval
    std::uint64_t after = 0;    //!< skip the first N evals
    std::uint64_t times = 0;    //!< max fires; 0 = unlimited
    double prob = -1.0;         //!< per-eval probability; <0 = off
    std::string mode;           //!< site-interpreted word
    std::size_t order = 0;      //!< position in the spec (stats())

    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

class FaultRegistry::Impl
{
  public:
    mutable std::mutex mutex;
    std::unordered_map<std::string, Rule> rules;
    std::string spec;
    std::uint64_t lcg = 1;
    std::function<void(const std::string &)> fireListener;

    /** Deterministic uniform draw in [0, 1). */
    double
    nextUniform()
    {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return double(lcg >> 11) * (1.0 / 9007199254740992.0);
    }
};

FaultRegistry &
FaultRegistry::instance()
{
    static FaultRegistry registry;
    return registry;
}

FaultRegistry::Impl &
FaultRegistry::impl() const
{
    static Impl impl;
    return impl;
}

namespace
{

bool
isKnownPoint(const std::string &name)
{
    for (const FaultPointInfo &info : knownFaultPoints())
        if (name == info.point)
            return true;
    return false;
}

std::uint64_t
parseCount(const std::string &entry, const std::string &value)
{
    if (value.empty())
        throw ConfigError("fault spec '" + entry +
                          "': missing number");
    std::uint64_t n = 0;
    for (const char c : value) {
        if (c < '0' || c > '9')
            throw ConfigError("fault spec '" + entry + "': '" +
                              value + "' is not a number");
        n = n * 10 + std::uint64_t(c - '0');
    }
    return n;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t end = s.find(sep, begin);
        out.push_back(s.substr(begin, end - begin));
        if (end == std::string::npos)
            return out;
        begin = end + 1;
    }
}

} // namespace

void
FaultRegistry::configure(const std::string &spec)
{
    std::unordered_map<std::string, Rule> rules;
    std::uint64_t seed = 1;
    std::size_t order = 0;

    for (const std::string &entry : split(spec, ',')) {
        if (entry.empty())
            continue;
        if (entry.rfind("seed=", 0) == 0) {
            seed = parseCount(entry, entry.substr(5));
            continue;
        }
        const std::vector<std::string> parts = split(entry, ':');
        const std::string &point = parts[0];
        if (!isKnownPoint(point)) {
            std::string known;
            for (const FaultPointInfo &info : knownFaultPoints())
                known += std::string(known.empty() ? "" : ", ") +
                    info.point;
            throw ConfigError("unknown fault point '" + point +
                              "' (known: " + known + ")");
        }
        Rule rule;
        rule.order = order++;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::string &arg = parts[i];
            if (arg == "once") {
                rule.times = 1;
            } else if (arg.rfind("every=", 0) == 0) {
                rule.every = parseCount(entry, arg.substr(6));
                if (rule.every == 0)
                    throw ConfigError("fault spec '" + entry +
                                      "': every=0 is meaningless");
            } else if (arg.rfind("after=", 0) == 0) {
                rule.after = parseCount(entry, arg.substr(6));
            } else if (arg.rfind("times=", 0) == 0) {
                rule.times = parseCount(entry, arg.substr(6));
            } else if (arg.rfind("prob=", 0) == 0) {
                char *end = nullptr;
                rule.prob =
                    std::strtod(arg.c_str() + 5, &end);
                if (end == nullptr || *end != '\0' ||
                    rule.prob < 0.0 || rule.prob > 1.0)
                    throw ConfigError("fault spec '" + entry +
                                      "': prob must be in [0, 1]");
            } else if (!arg.empty() &&
                       arg.find('=') == std::string::npos) {
                rule.mode = arg;
            } else {
                throw ConfigError("fault spec '" + entry +
                                  "': unrecognized argument '" +
                                  arg + "'");
            }
        }
        if (rules.count(point))
            throw ConfigError("fault point '" + point +
                              "' listed twice");
        rules.emplace(point, std::move(rule));
    }

    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rules = std::move(rules);
    state.spec = spec;
    state.lcg = seed;
    detail::faultsArmed.store(!state.rules.empty(),
                              std::memory_order_relaxed);
}

void
FaultRegistry::configureFromEnv()
{
    const char *spec = std::getenv("MFUSIM_FAULTS");
    configure(spec == nullptr ? "" : spec);
}

bool
FaultRegistry::armed() const
{
    return detail::faultsArmed.load(std::memory_order_relaxed);
}

std::string
FaultRegistry::spec() const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.spec;
}

bool
FaultRegistry::shouldFire(const std::string &point)
{
    Impl &state = impl();
    std::function<void(const std::string &)> listener;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        const auto it = state.rules.find(point);
        if (it == state.rules.end())
            return false;
        Rule &rule = it->second;
        ++rule.evaluations;
        if (rule.evaluations <= rule.after)
            return false;
        if (rule.times != 0 && rule.fires >= rule.times)
            return false;
        if (rule.every > 1 &&
            (rule.evaluations - rule.after) % rule.every != 0)
            return false;
        if (rule.prob >= 0.0 && state.nextUniform() >= rule.prob)
            return false;
        ++rule.fires;
        listener = state.fireListener;  // copy: invoke outside lock
    }
    if (listener)
        listener(point);
    return true;
}

void
FaultRegistry::setFireListener(
    std::function<void(const std::string &)> listener)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.fireListener = std::move(listener);
}

std::string
FaultRegistry::mode(const std::string &point) const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.rules.find(point);
    return it == state.rules.end() ? std::string() : it->second.mode;
}

std::vector<FaultPointStats>
FaultRegistry::stats() const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::vector<FaultPointStats> out(state.rules.size());
    for (const auto &[point, rule] : state.rules)
        out[rule.order] = FaultPointStats{ point, rule.mode,
                                           rule.evaluations,
                                           rule.fires };
    return out;
}

void
FaultRegistry::reset()
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rules.clear();
    state.spec.clear();
    state.lcg = 1;
    detail::faultsArmed.store(false, std::memory_order_relaxed);
}

} // namespace mfusim
