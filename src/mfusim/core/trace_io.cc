/**
 * @file
 * Trace serialization implementation.
 */

#include "mfusim/core/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "mfusim/core/registers.hh"

namespace mfusim
{

namespace
{

std::string
fmtReg(RegId r)
{
    return regName(r);
}

RegId
parseReg(const std::string &text)
{
    if (text == "--")
        return kNoReg;
    if (text == "VL")
        return kVlReg;
    if (text.size() < 2)
        throw std::runtime_error("trace_io: bad register '" + text +
                                 "'");
    const unsigned index = unsigned(std::stoul(text.substr(1)));
    switch (text[0]) {
      case 'A':
        if (index < kNumARegs)
            return regA(index);
        break;
      case 'S':
        if (index < kNumSRegs)
            return regS(index);
        break;
      case 'B':
        if (index < kNumBRegs)
            return regB(index);
        break;
      case 'T':
        if (index < kNumTRegs)
            return regT(index);
        break;
      case 'V':
        if (index < kNumVRegs)
            return regV(index);
        break;
      default:
        break;
    }
    throw std::runtime_error("trace_io: bad register '" + text + "'");
}

Op
parseOp(const std::string &mnemonic)
{
    static const std::unordered_map<std::string, Op> table = [] {
        std::unordered_map<std::string, Op> map;
        for (unsigned i = 0; i < kNumOps; ++i) {
            const Op op = static_cast<Op>(i);
            map.emplace(mnemonicOf(op), op);
        }
        return map;
    }();
    const auto it = table.find(mnemonic);
    if (it == table.end()) {
        throw std::runtime_error("trace_io: unknown mnemonic '" +
                                 mnemonic + "'");
    }
    return it->second;
}

} // namespace

void
saveTrace(std::ostream &os, const DynTrace &trace)
{
    os << "mfusim-trace v1\n";
    os << "name " << trace.name() << '\n';
    os << "ops " << trace.size() << '\n';
    for (const DynOp &op : trace.ops()) {
        os << mnemonicOf(op.op) << ' ' << fmtReg(op.dst) << ' '
           << fmtReg(op.srcA) << ' ' << fmtReg(op.srcB) << ' '
           << op.staticIdx << ' ';
        if (isBranch(op.op)) {
            os << (op.taken ? 'T' : 'N') << ' '
               << (op.backward ? 'B' : 'F');
        } else {
            os << "- -";
        }
        os << ' ' << unsigned(op.vl) << '\n';
    }
}

DynTrace
loadTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "mfusim-trace v1")
        throw std::runtime_error("trace_io: bad header");

    if (!std::getline(is, line) || line.rfind("name ", 0) != 0)
        throw std::runtime_error("trace_io: missing name line");
    DynTrace trace(line.substr(5));

    if (!std::getline(is, line) || line.rfind("ops ", 0) != 0)
        throw std::runtime_error("trace_io: missing ops line");
    const std::uint64_t expected = std::stoull(line.substr(4));
    trace.reserve(expected);

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string mnemonic, dst, src_a, src_b, taken, backward;
        StaticIndex static_idx = 0;
        unsigned vl = 0;
        if (!(fields >> mnemonic >> dst >> src_a >> src_b >>
              static_idx >> taken >> backward)) {
            throw std::runtime_error("trace_io: malformed line '" +
                                     line + "'");
        }
        fields >> vl;   // optional (absent in pre-vector files)
        DynOp op;
        op.op = parseOp(mnemonic);
        op.dst = parseReg(dst);
        op.srcA = parseReg(src_a);
        op.srcB = parseReg(src_b);
        op.staticIdx = static_idx;
        op.taken = taken == "T";
        op.backward = backward == "B";
        op.vl = std::uint8_t(vl);
        trace.append(op);
    }

    if (trace.size() != expected) {
        throw std::runtime_error(
            "trace_io: op count mismatch (header says " +
            std::to_string(expected) + ", file has " +
            std::to_string(trace.size()) + ")");
    }
    return trace;
}

} // namespace mfusim
