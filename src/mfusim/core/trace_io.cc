/**
 * @file
 * Trace serialization implementation.
 *
 * loadTrace() treats its input as hostile: every numeric field is
 * parsed with explicit range checks (never bare std::stoul, whose
 * exceptions would escape untyped and whose silent wraparound on
 * out-of-range values would corrupt the trace), the header op count
 * is bounded before any allocation, and every failure path throws
 * TraceError.
 */

#include "mfusim/core/trace_io.hh"

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "mfusim/core/error.hh"
#include "mfusim/core/registers.hh"

namespace mfusim
{

namespace
{

/**
 * Refuse header op counts above this before reserving memory: a
 * corrupted count must not turn into a multi-gigabyte allocation.
 * The real Livermore traces are ~10^3..10^5 ops.
 */
constexpr std::uint64_t kMaxTraceOps = std::uint64_t(1) << 28;

std::string
fmtReg(RegId r)
{
    return regName(r);
}

/** Strict all-digits decimal parse; throws TraceError on anything
 *  else (including overflow past @p max). */
std::uint64_t
parseCount(const std::string &text, std::uint64_t max,
           const char *what)
{
    if (text.empty())
        throw TraceError(std::string("empty ") + what);
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') {
            throw TraceError(std::string("bad ") + what + " '" +
                             text + "'");
        }
        value = value * 10 + std::uint64_t(c - '0');
        if (value > max) {
            throw TraceError(std::string(what) + " " + text +
                             " exceeds the maximum of " +
                             std::to_string(max));
        }
    }
    return value;
}

RegId
parseReg(const std::string &text)
{
    if (text == "--")
        return kNoReg;
    if (text == "VL")
        return kVlReg;
    if (text.size() < 2)
        throw TraceError("bad register '" + text + "'");
    const unsigned index = unsigned(
        parseCount(text.substr(1), kNumRegs, "register index"));
    switch (text[0]) {
      case 'A':
        if (index < kNumARegs)
            return regA(index);
        break;
      case 'S':
        if (index < kNumSRegs)
            return regS(index);
        break;
      case 'B':
        if (index < kNumBRegs)
            return regB(index);
        break;
      case 'T':
        if (index < kNumTRegs)
            return regT(index);
        break;
      case 'V':
        if (index < kNumVRegs)
            return regV(index);
        break;
      default:
        break;
    }
    throw TraceError("bad register '" + text + "'");
}

Op
parseOp(const std::string &mnemonic)
{
    static const std::unordered_map<std::string, Op> table = [] {
        std::unordered_map<std::string, Op> map;
        for (unsigned i = 0; i < kNumOps; ++i) {
            const Op op = static_cast<Op>(i);
            map.emplace(mnemonicOf(op), op);
        }
        return map;
    }();
    const auto it = table.find(mnemonic);
    if (it == table.end())
        throw TraceError("unknown mnemonic '" + mnemonic + "'");
    return it->second;
}

} // namespace

void
saveTrace(std::ostream &os, const DynTrace &trace)
{
    os << "mfusim-trace v1\n";
    os << "name " << trace.name() << '\n';
    os << "ops " << trace.size() << '\n';
    for (const DynOp &op : trace.ops()) {
        os << mnemonicOf(op.op) << ' ' << fmtReg(op.dst) << ' '
           << fmtReg(op.srcA) << ' ' << fmtReg(op.srcB) << ' '
           << op.staticIdx << ' ';
        if (isBranch(op.op)) {
            os << (op.taken ? 'T' : 'N') << ' '
               << (op.backward ? 'B' : 'F');
        } else {
            os << "- -";
        }
        os << ' ' << unsigned(op.vl) << '\n';
    }
}

DynTrace
loadTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "mfusim-trace v1")
        throw TraceError("bad header");

    if (!std::getline(is, line) || line.rfind("name ", 0) != 0)
        throw TraceError("missing name line");
    DynTrace trace(line.substr(5));

    if (!std::getline(is, line) || line.rfind("ops ", 0) != 0)
        throw TraceError("missing ops line");
    const std::uint64_t expected =
        parseCount(line.substr(4), kMaxTraceOps, "op count");
    trace.reserve(expected);

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (trace.size() == expected) {
            throw TraceError(
                "more ops than the header's count of " +
                std::to_string(expected) + " (first excess line: '" +
                line + "')");
        }
        std::istringstream fields(line);
        std::string mnemonic, dst, src_a, src_b, static_idx, taken,
            backward;
        if (!(fields >> mnemonic >> dst >> src_a >> src_b >>
              static_idx >> taken >> backward)) {
            throw TraceError("malformed line '" + line + "'");
        }
        std::string vl_field;
        fields >> vl_field;     // optional (absent pre-vector)
        DynOp op;
        op.op = parseOp(mnemonic);
        op.dst = parseReg(dst);
        op.srcA = parseReg(src_a);
        op.srcB = parseReg(src_b);
        op.staticIdx = StaticIndex(parseCount(
            static_idx, std::uint32_t(-1), "static index"));
        if (isBranch(op.op)) {
            if ((taken != "T" && taken != "N") ||
                (backward != "B" && backward != "F")) {
                throw TraceError(
                    "branch op needs T|N and B|F outcome fields,"
                    " got '" + taken + " " + backward + "' in '" +
                    line + "'");
            }
        } else if (taken != "-" || backward != "-") {
            throw TraceError(
                "non-branch op must use '- -' outcome fields,"
                " got '" + taken + " " + backward + "' in '" + line +
                "'");
        }
        op.taken = taken == "T";
        op.backward = backward == "B";
        op.vl = vl_field.empty()
                    ? std::uint8_t(0)
                    : std::uint8_t(
                          parseCount(vl_field, 255, "vector length"));
        trace.append(op);
    }

    if (trace.size() != expected) {
        throw TraceError(
            "op count mismatch (header says " +
            std::to_string(expected) + ", file has " +
            std::to_string(trace.size()) + ")");
    }
    return trace;
}

} // namespace mfusim
