/**
 * @file
 * Instruction disassembly.
 */

#include "mfusim/core/instruction.hh"

namespace mfusim
{

std::string
Instruction::disassemble() const
{
    const OpTraits &traits = traitsOf(op);
    std::string text = traits.mnemonic;

    const auto pad = [&text]() { text += ' '; };

    switch (traits.shape) {
      case OperandShape::kNone:
        if (op == Op::kAConst || op == Op::kSConst) {
            pad();
            text += regName(dst) + ", " + std::to_string(imm);
        }
        break;
      case OperandShape::kOneSrc:
        pad();
        text += regName(dst) + ", " + regName(srcA);
        break;
      case OperandShape::kTwoSrc:
        pad();
        text += regName(dst) + ", " + regName(srcA) + ", " + regName(srcB);
        break;
      case OperandShape::kSrcImm:
        pad();
        text += regName(dst) + ", " + regName(srcA) + ", " +
            std::to_string(imm);
        break;
      case OperandShape::kLoad:
        pad();
        text += regName(dst) + ", " + std::to_string(imm) + "(" +
            regName(srcA) + ")";
        break;
      case OperandShape::kStore:
        pad();
        text += regName(srcB) + ", " + std::to_string(imm) + "(" +
            regName(srcA) + ")";
        break;
      case OperandShape::kBranchCond:
        pad();
        text += regName(srcA) + ", @" + std::to_string(imm);
        break;
      case OperandShape::kBranchUncond:
        pad();
        text += "@" + std::to_string(imm);
        break;
    }
    return text;
}

} // namespace mfusim
