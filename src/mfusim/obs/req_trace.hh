/**
 * @file
 * Request-lifecycle tracing for the serve tier: spans, per-phase
 * histograms, and an always-on flight recorder.
 *
 * Every HTTP request owns one RequestSpan — a trivially-copyable
 * record of monotonic-clock stamps at each phase boundary (bytes
 * received, headers parsed, dispatched, handler start/done,
 * serialized, first byte written, last byte written).  The reactor
 * thread finalizes and publishes the span when the response's last
 * byte leaves the socket (or at teardown for aborted requests), so
 * there is exactly one writer for all rings and histograms.
 *
 * The phase taxonomy is the telescoping decomposition of the stamp
 * sequence: each phase is the delta between consecutive stamps, so
 * the phases sum to the request total *exactly* — an accounting
 * identity in the spirit of the simulator's cycle attribution
 * (Pleszkun & Sohi decompose issue-slot loss the same way), verified
 * by tests and by tools/check_obs_json.py on every exported span.
 *
 * Three consumers:
 *  - per-phase and per-endpoint latency histograms (log2 buckets,
 *    nanosecond recording, rendered as Prometheus _seconds families);
 *  - the flight recorder: per-worker seqlock ring buffers
 *    (overwrite-oldest) exported as Chrome/Perfetto trace JSON via
 *    /v1/trace?last=N or a SIGUSR2 dump;
 *  - a rate-capped slow-request structured log (--slow-request-ms).
 *
 * Disarmed cost is one branch in the server (the tracer pointer is
 * null); armed cost is a handful of vDSO clock reads per request
 * plus ~100 ns of ring/histogram bookkeeping on the reactor.
 */

#ifndef MFUSIM_OBS_REQ_TRACE_HH
#define MFUSIM_OBS_REQ_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "mfusim/obs/metrics.hh"

namespace mfusim
{

/**
 * Stamp indices of a request span, in lifecycle order.  Phase i
 * (i >= 1) is the interval [ts[i-1], ts[i]].
 */
enum ReqStamp : unsigned
{
    kStampRecv = 0,       //!< first byte of the request read
    kStampParsed,         //!< request line + headers parsed
    kStampDispatch,       //!< routed (queued to a worker or fast-path)
    kStampStart,          //!< handler compute started
    kStampDone,           //!< handler compute finished
    kStampSerialized,     //!< response head serialized
    kStampFirstWrite,     //!< first response byte on the socket
    kStampLastWrite,      //!< last response byte on the socket
    kNumStamps
};

/** One traced request.  Trivially copyable — ring slots copy words. */
struct RequestSpan
{
    static constexpr std::uint8_t kFlagFastpath = 1;
    static constexpr std::uint8_t kFlagCacheHit = 2;
    static constexpr std::uint8_t kFlagPipelined = 4;
    static constexpr std::uint8_t kFlagAborted = 8;
    static constexpr std::uint8_t kFlagAudited = 16;

    std::uint64_t seq = 0;              //!< publish order, 1-based
    std::uint64_t ts[kNumStamps] = {};  //!< monoNanos() stamps
    std::uint64_t cacheNs = 0;          //!< result-cache probe time
    std::int32_t fd = -1;
    std::uint32_t gen = 0;
    std::uint16_t status = 0;
    std::uint8_t worker = 0;            //!< 0 = reactor (fast path)
    std::uint8_t flags = 0;
    char endpoint[14] = {};             //!< short name, NUL-padded

    void setEndpoint(std::string_view name)
    {
        const std::size_t n =
            name.size() < sizeof(endpoint) - 1 ? name.size()
                                               : sizeof(endpoint) - 1;
        std::memset(endpoint, 0, sizeof(endpoint));
        std::memcpy(endpoint, name.data(), n);
    }
    std::uint64_t totalNs() const
    {
        return ts[kStampLastWrite] - ts[kStampRecv];
    }
    std::uint64_t phaseNs(unsigned phase) const
    {
        return ts[phase + 1] - ts[phase];
    }
};

static_assert(std::is_trivially_copyable_v<RequestSpan>,
              "ring slots copy spans word-wise");

/** kNumStamps - 1 phases; phaseName(i) names [ts[i], ts[i+1]]. */
constexpr unsigned kNumReqPhases = kNumStamps - 1;
const char *reqPhaseName(unsigned phase);

/** Maps a request path to its short endpoint name ("simulate", ...). */
std::string_view endpointForPath(std::string_view path);

/**
 * Fixed-capacity overwrite-oldest span ring.  Single writer (the
 * reactor); any thread may snapshot concurrently.  Slots are
 * seqlocks: an odd sequence number marks a write in progress, and
 * the payload is copied as relaxed atomic words, so a snapshot
 * during overwrite retries (bounded) or skips the slot — readers
 * never block the writer.
 */
class SpanRing
{
  public:
    explicit SpanRing(std::size_t capacity);

    void push(const RequestSpan &span);
    /** Every stable slot, unsorted; torn slots are skipped. */
    void snapshot(std::vector<RequestSpan> &out) const;
    std::uint64_t pushed() const
    {
        return pushed_.load(std::memory_order_relaxed);
    }
    std::size_t capacity() const { return capacity_; }

  private:
    static constexpr std::size_t kWords =
        (sizeof(RequestSpan) + 7) / 8;
    struct Slot
    {
        std::atomic<std::uint64_t> seq{ 0 };
        std::atomic<std::uint64_t> words[kWords];
    };

    std::size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::uint64_t next_ = 0;                //!< writer-only cursor
    std::atomic<std::uint64_t> pushed_{ 0 };
};

/** A fault-injection fire, marked on the trace timeline. */
struct FaultMark
{
    std::uint64_t ns = 0;       //!< monoNanos() at fire time
    char point[24] = {};        //!< fault point name, truncated
};

struct ReqTraceOptions
{
    std::size_t ringCapacity = 2048;    //!< spans per ring
    std::uint32_t workers = 0;          //!< worker count (ring 1..W)
    std::uint64_t slowRequestNs = 0;    //!< 0 = slow log disabled
};

/**
 * The serve tier's tracing hub: owns one SpanRing per track (ring 0
 * is the reactor fast path, ring 1..workers the worker threads), the
 * phase/endpoint histograms, and the fault-mark ring.
 *
 * publish() must be called from the reactor thread only; everything
 * else is safe from any thread.
 */
class RequestTracer
{
  public:
    explicit RequestTracer(const ReqTraceOptions &options);
    ~RequestTracer();

    RequestTracer(const RequestTracer &) = delete;
    RequestTracer &operator=(const RequestTracer &) = delete;

    std::uint32_t workers() const { return options_.workers; }

    /**
     * Finalize and record @p span: assign the publish sequence
     * number, clamp unset/retrograde stamps so every phase delta is
     * non-negative and the phase-sum identity holds exactly, feed
     * the histograms and push into the span's worker ring.  Reactor
     * thread only.  Returns true if the span crossed the slow-log
     * threshold and won its rate-limit token (caller prints).
     */
    bool publish(RequestSpan &span);

    /** Record a fault-injection fire (any thread, rare). */
    void recordFault(std::string_view point);

    /** The last @p lastN published spans, oldest first (0 = all). */
    std::vector<RequestSpan> snapshot(std::size_t lastN) const;
    std::vector<FaultMark> faultMarks() const;

    /** Merge the tracing histograms + counters into @p out. */
    void appendMetrics(MetricsRegistry &out) const;

    /**
     * Export the flight recorder as Chrome/Perfetto trace-event JSON
     * (schema "mfusim-serve-trace-v1"): one track for the reactor,
     * one per worker, an async lane per in-flight request with the
     * full phase breakdown in args, and fault fires as instant
     * events.  @p lastN = 0 exports every retained span.
     */
    void writeServeTrace(std::ostream &os, std::size_t lastN) const;

  private:
    Histogram *endpointHistogram(const char *endpoint);
    bool takeSlowToken(std::uint64_t nowNs);

    ReqTraceOptions options_;
    std::vector<std::unique_ptr<SpanRing>> rings_;
    std::uint64_t nextSeq_ = 0;             //!< reactor-only

    mutable std::mutex metricsMutex_;
    MetricsRegistry metrics_;
    Histogram *phase_[kNumReqPhases];
    Histogram *total_;
    std::vector<std::pair<std::string, Histogram *>> endpoints_;
    Counter *published_;
    Counter *slowLogged_;

    // Slow-log token bucket (reactor-only state).
    std::uint64_t slowWindowStartNs_ = 0;
    std::uint32_t slowWindowCount_ = 0;

    mutable std::mutex faultMutex_;
    std::vector<FaultMark> faults_;         //!< bounded, oldest dropped
    std::size_t faultDropped_ = 0;
};

/**
 * Global armed flag, mirrored from the tracer's lifetime by the
 * server: lets the service layer (cache probe timing, audit flag)
 * skip its annotation clock reads when tracing is off without a
 * reference to the tracer.
 */
bool reqTraceArmed();
void setReqTraceArmed(bool armed);

/**
 * Handler-side span annotations.  The worker (or the reactor, on
 * the fast path) resets this thread-local before invoking the
 * handler; the service layer fills it in; the caller folds it into
 * the span afterwards.  Thread-locality makes it race-free without
 * threading a context object through every handler signature.
 */
struct SpanAnnotations
{
    bool cacheHit = false;
    bool audited = false;
    std::uint64_t cacheNs = 0;
};

SpanAnnotations &spanAnnotations();

/**
 * One-line structured slow-request log record
 * ("slow-request endpoint=... total_ms=... phases_us ...").
 */
std::string formatSlowLine(const RequestSpan &span);

} // namespace mfusim

#endif // MFUSIM_OBS_REQ_TRACE_HH
