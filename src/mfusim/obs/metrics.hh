/**
 * @file
 * MetricsRegistry: named counters, gauges, fixed-bucket histograms
 * and bounded time-series samplers for simulator telemetry.
 *
 * The registry is the common currency of the observability layer:
 * run_metrics.cc populates one from a recorded pipeline schedule,
 * the sweep runner merges per-cell registries into grid aggregates,
 * bench/stall_breakdown prints from one, and the CLI serializes one
 * to JSON (schema "mfusim-metrics-v1") or CSV.
 *
 * Design constraints, in order:
 *  - deterministic output: entries serialize in insertion order and
 *    merge() is commutative on values, so parallel sweeps that merge
 *    in index order reproduce bit-identical files;
 *  - bounded memory: histograms have a fixed bucket count with an
 *    explicit overflow bucket, and TimeSeries halves itself by
 *    doubling its sampling stride when full (SimpleScalar-style), so
 *    a billion-cycle run costs the same as a thousand-cycle one;
 *  - fail-fast misuse: looking a name up as the wrong kind throws
 *    Error rather than silently aliasing.
 */

#ifndef MFUSIM_OBS_METRICS_HH
#define MFUSIM_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "mfusim/core/types.hh"

namespace mfusim
{

/** A monotone event count. */
class Counter
{
  public:
    void add(std::uint64_t n) { value_ += n; }
    void increment() { ++value_; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time scalar (rates, percentages, wall seconds). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double v) { value_ += v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A fixed-width-bucket histogram over non-negative integers.
 * Values at or above bucketWidth * bucketCount land in a dedicated
 * overflow bucket; exact count/sum/min/max are kept alongside so no
 * precision is lost for the scalar statistics.
 *
 * makeLog2() builds the variant the serve tier records latencies
 * into: bucket i counts values whose bit width is i (bucket 0 holds
 * exactly 0, bucket i holds [2^(i-1), 2^i - 1]), so 30 buckets span
 * 1 ns to ~1 s with one bit_width() per record and no division.  An
 * optional unitScale converts raw recorded units to display units at
 * export time (record nanoseconds, render seconds) — recording stays
 * pure integer arithmetic on the hot path.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucketWidth, std::size_t bucketCount);

    /** Log2-bucket histogram; see the class comment. */
    static Histogram makeLog2(std::size_t bucketCount,
                              double unitScale = 1.0);

    void record(std::uint64_t value, std::uint64_t weight = 1);
    /** Merge @p other in; bucket geometry must match (throws). */
    void merge(const Histogram &other);

    std::uint64_t bucketWidth() const { return width_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::uint64_t overflow() const { return overflow_; }
    bool isLog2() const { return log2_; }
    double unitScale() const { return unitScale_; }
    /** Inclusive upper edge of bucket @p i, in raw recorded units. */
    std::uint64_t bucketUpperEdge(std::size_t i) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    bool log2_ = false;
    double unitScale_ = 1.0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * A bounded sampler of (cycle, value) points.  Records every point
 * until the capacity is reached, then compacts by dropping every
 * other retained point and doubling the recording stride — the
 * retained points stay evenly spaced over the whole run regardless
 * of its length.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::size_t capacity = 512);

    void record(ClockCycle cycle, double value);

    struct Point
    {
        ClockCycle cycle;
        double value;
    };

    const std::vector<Point> &points() const { return points_; }
    std::uint64_t stride() const { return stride_; }

  private:
    std::size_t capacity_;
    std::uint64_t stride_ = 1;
    std::uint64_t pending_ = 0;     //!< points skipped since last keep
    std::vector<Point> points_;
};

/**
 * A named, insertion-ordered collection of metrics, plus free-form
 * string labels (sim name, config, trace id).  Accessors create on
 * first use and return stable references — entries are heap-held so
 * a reference survives later insertions.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::uint64_t bucketWidth,
                         std::size_t bucketCount);
    /** Create-or-find a Histogram::makeLog2 histogram. */
    Histogram &histogramLog2(const std::string &name,
                             std::size_t bucketCount,
                             double unitScale = 1.0);
    TimeSeries &series(const std::string &name,
                       std::size_t capacity = 512);

    /** The counter's value, or 0 if absent.  Throws on kind clash. */
    std::uint64_t counterValue(const std::string &name) const;
    /** The gauge's value, or 0.0 if absent.  Throws on kind clash. */
    double gaugeValue(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    void setLabel(const std::string &key, const std::string &value);
    const std::map<std::string, std::string> &labels() const
    {
        return labels_;
    }

    /**
     * Fold @p other into this registry: counters and gauges sum,
     * histograms merge bucket-wise.  Time series are skipped — their
     * cycle axes restart per run, so they do not aggregate.
     * Entries new to this registry are created in @p other's order,
     * so index-ordered merging is deterministic.
     */
    void merge(const MetricsRegistry &other);

    /** Serialize as "mfusim-metrics-v1" JSON. */
    void writeJson(std::ostream &os) const;
    /** Serialize as flat name,kind,value CSV (scalar stats only). */
    void writeCsv(std::ostream &os) const;

    /**
     * Serialize in the Prometheus text exposition format (version
     * 0.0.4), the `GET /metrics` payload of `mfusim serve`.
     *
     * Mapping:
     *  - names are prefixed "mfusim_" and sanitized to the metric-
     *    name alphabet [a-zA-Z0-9_:] (every other byte becomes '_');
     *  - counters render with the conventional "_total" suffix;
     *  - histograms render as cumulative "_bucket" samples with
     *    le="<upper edge>" plus the "+Inf" bucket, "_sum" and
     *    "_count", matching the native Prometheus histogram type;
     *  - registry labels() are attached to every sample, with label
     *    names sanitized like metric names and values escaped;
     *  - a name with a trailing `{key=value,...}` block — e.g.
     *    "http.phase_seconds{phase=parse}" — renders as the base
     *    family with those labels merged in, so one registry can hold
     *    many labeled series of a single Prometheus family (the TYPE
     *    line is emitted once per family, at its first appearance);
     *  - log2 histograms with a unitScale render their bucket edges
     *    and _sum in scaled (display) units;
     *  - time series are per-run artifacts with their own cycle axis
     *    and have no Prometheus equivalent, so they are skipped.
     *
     * Every family is preceded by its "# TYPE" line.  Output order is
     * insertion order, so the format is deterministic and golden-file
     * testable.
     */
    void writePrometheus(std::ostream &os) const;

  private:
    enum class Kind : std::uint8_t
    {
        kCounter,
        kGauge,
        kHistogram,
        kSeries
    };

    struct Entry
    {
        std::string name;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<TimeSeries> series;
    };

    Entry *find(const std::string &name);
    const Entry *find(const std::string &name) const;
    Entry &create(const std::string &name, Kind kind);
    [[noreturn]] void kindClash(const Entry &entry, Kind wanted) const;

    std::vector<std::unique_ptr<Entry>> entries_;
    std::map<std::string, std::string> labels_;
};

/**
 * RAII wall-clock phase timer: on destruction adds the elapsed
 * seconds to a gauge (conventionally "profile.<phase>_seconds").
 * Used by the CLI to stamp decode / period-detect / simulate phase
 * times into metrics output and by run_bench.sh's self-profile.
 */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(Gauge &gauge);
    ~ScopedPhaseTimer();

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    Gauge &gauge_;
    std::uint64_t startNs_;
};

/** writePrometheus() into a string (serve /metrics handler). */
std::string renderPrometheus(const MetricsRegistry &metrics);

} // namespace mfusim

#endif // MFUSIM_OBS_METRICS_HH
