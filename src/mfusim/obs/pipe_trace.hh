/**
 * @file
 * PipeTraceRecorder: per-op pipeline schedules from the audit event
 * stream, exported as Chrome/Perfetto trace-event JSON or an ASCII
 * pipeview.
 *
 * The recorder is a passive ObsSink: it stores each op's phase
 * cycles (issue / dispatch / complete, plus insert / commit for the
 * RUU) and every attributed stall sample, nothing else.  Exporters
 * then lay the schedule out on tracks:
 *
 *   - one track per issue slot (multi-issue machines tag issue
 *     events with their slot; single-issue machines use slot 0),
 *   - one track per functional-unit class showing [exec, complete)
 *     busy intervals,
 *   - one track per result bus / CDB showing completion slots,
 *   - one stall track with the attributed front-end waits, and
 *   - a counter track with the in-flight op count over time.
 *
 * Cycle N maps to timestamp N µs, so Perfetto's time axis reads
 * directly in cycles.
 */

#ifndef MFUSIM_OBS_PIPE_TRACE_HH
#define MFUSIM_OBS_PIPE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/types.hh"
#include "mfusim/obs/obs_sink.hh"

namespace mfusim
{

/** Records a full per-op pipeline schedule from the event stream. */
class PipeTraceRecorder : public ObsSink
{
  public:
    /** Phase not reached by this op (e.g. dispatch on SimpleSim). */
    static constexpr ClockCycle kNoCycle = ~ClockCycle(0);

    void onEvent(const AuditEvent &event) override;
    void onStall(const StallSample &sample) override;

    /** Ops seen so far (grows with the largest op index observed). */
    std::size_t opCount() const { return issue_.size(); }

    ClockCycle issue(std::size_t i) const { return issue_[i]; }
    ClockCycle dispatch(std::size_t i) const { return dispatch_[i]; }
    ClockCycle complete(std::size_t i) const { return complete_[i]; }
    ClockCycle insert(std::size_t i) const { return insert_[i]; }
    ClockCycle commit(std::size_t i) const { return commit_[i]; }

    std::int32_t issueUnit(std::size_t i) const { return issueUnit_[i]; }
    std::int32_t
    completeUnit(std::size_t i) const
    {
        return completeUnit_[i];
    }

    /**
     * The op's front-event cycle: insert for windowed machines,
     * otherwise issue.  kNoCycle if the op never entered the front.
     */
    ClockCycle front(std::size_t i) const;

    /**
     * The op's execution-start cycle: dispatch where the machine
     * distinguishes it, otherwise the front event.
     */
    ClockCycle exec(std::size_t i) const;

    const std::vector<StallSample> &stalls() const { return stalls_; }

  private:
    void ensure(std::size_t op);

    std::vector<ClockCycle> issue_, dispatch_, complete_, insert_,
        commit_;
    std::vector<std::int32_t> issueUnit_, completeUnit_;
    std::vector<StallSample> stalls_;
};

/**
 * Write the recorded schedule as Chrome trace-event JSON (the format
 * Perfetto, chrome://tracing and speedscope load).  @p trace supplies
 * mnemonics and FU classes for track assignment; @p label names the
 * process (conventionally "<sim> <config> <trace>").
 */
void writeChromeTrace(std::ostream &os,
                      const PipeTraceRecorder &recorder,
                      const DecodedTrace &trace,
                      const std::string &label);

/**
 * Write a compact ASCII pipeview: one row per op, one column per
 * cycle.  Markers: I issue/insert, D dispatch, C complete, R retire
 * (commit), '=' executing, '.' waiting in the front end / window.
 * Shows the first @p maxOps ops and at most @p maxCols cycle columns
 * (both clamped), noting any truncation.
 */
void writePipeview(std::ostream &os, const PipeTraceRecorder &recorder,
                   const DecodedTrace &trace, std::size_t maxOps = 48,
                   std::size_t maxCols = 120);

} // namespace mfusim

#endif // MFUSIM_OBS_PIPE_TRACE_HH
