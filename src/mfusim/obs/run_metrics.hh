/**
 * @file
 * Turning one recorded run into a populated MetricsRegistry.
 *
 * populateRunMetrics() derives every standard metric from a
 * PipeTraceRecorder's schedule plus the SimResult, under a strict
 * per-cycle accounting model for the issue stage:
 *
 *     cycles.total = cycles.front_active
 *                  + sum over causes of cycles.stall.<cause>
 *                  + cycles.drain
 *
 * front_active counts the distinct cycles with at least one front
 * event (issue, or insert for windowed machines); the stall counters
 * sum the simulator's attributed StallSamples (which by construction
 * never overlap each other or a front-active cycle); drain is the
 * remainder — cycles where the front end had nothing left to do and
 * the machine was emptying its pipeline.  A negative remainder means
 * a simulator double-charged a wait and is reported as an Error, so
 * the identity is self-checking.  tools/check_obs_json.py re-verifies
 * it on every exported file, and tests/test_obs.cc asserts it for
 * all six simulators.
 */

#ifndef MFUSIM_OBS_RUN_METRICS_HH
#define MFUSIM_OBS_RUN_METRICS_HH

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/obs/metrics.hh"
#include "mfusim/obs/pipe_trace.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/**
 * Populate @p metrics from one simulated run: per-cycle stall
 * attribution (the identity above), per-FU busy cycles and
 * utilization, result-bus completion pressure, in-flight / window
 * occupancy distributions and time series, steady-state telemetry,
 * and the issue rate.  Labels "sim" and "trace" are set from
 * @p sim and @p trace; callers add further labels (config, loop id)
 * as they see fit.
 */
void populateRunMetrics(MetricsRegistry &metrics,
                        const DecodedTrace &trace,
                        const PipeTraceRecorder &recorder,
                        const SimResult &result,
                        const Simulator &sim);

/**
 * Fold a scoreboard-family StallBreakdown into the same
 * "cycles.stall.<cause>" counters populateRunMetrics() uses
 * (structural -> fu_busy, resultBus -> bus_busy).  Lets
 * bench/stall_breakdown and fast-path runs share the registry
 * vocabulary without recording a schedule.
 */
void addStallBreakdown(MetricsRegistry &metrics,
                       const StallBreakdown &stalls);

} // namespace mfusim

#endif // MFUSIM_OBS_RUN_METRICS_HH
