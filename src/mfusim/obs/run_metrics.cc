/**
 * @file
 * Standard metric derivation from one recorded run.
 */

#include "mfusim/obs/run_metrics.hh"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/dataflow/period_detector.hh"

namespace mfusim
{

namespace
{

constexpr ClockCycle kNoCycle = PipeTraceRecorder::kNoCycle;

std::string
stallCounterName(StallCause cause)
{
    return std::string("cycles.stall.") + stallCauseName(cause);
}

/**
 * Build the per-cycle occupancy profile of [in, out) intervals and
 * feed it into a histogram + time series.  Intervals are clipped to
 * [0, total); @p total bounds the profile length.
 */
void
recordOccupancy(MetricsRegistry &metrics, const std::string &name,
                const std::vector<std::pair<ClockCycle, ClockCycle>>
                    &intervals,
                ClockCycle total)
{
    if (total == 0 || intervals.empty())
        return;
    std::vector<std::int32_t> delta(std::size_t(total) + 1, 0);
    for (const auto &[in, out] : intervals) {
        if (in >= total)
            continue;
        ++delta[std::size_t(in)];
        --delta[std::size_t(std::min(out, total))];
    }
    Histogram &hist = metrics.histogram(name, 1, 64);
    TimeSeries &ts = metrics.series(name + ".series");
    std::int64_t occ = 0;
    for (ClockCycle c = 0; c < total; ++c) {
        occ += delta[std::size_t(c)];
        hist.record(std::uint64_t(occ));
        ts.record(c, double(occ));
    }
}

} // namespace

void
populateRunMetrics(MetricsRegistry &metrics, const DecodedTrace &trace,
                   const PipeTraceRecorder &recorder,
                   const SimResult &result, const Simulator &sim)
{
    const std::size_t n = std::min(recorder.opCount(), trace.size());
    const ClockCycle total = result.cycles;

    metrics.setLabel("sim", sim.name());
    metrics.setLabel("trace", trace.name());

    metrics.counter("ops.total").add(trace.size());
    metrics.counter("cycles.total").add(total);
    metrics.gauge("issue_rate").add(result.issueRate());

    // ---- event counts per pipeline phase -------------------------
    std::uint64_t nIssue = 0, nDispatch = 0, nComplete = 0,
                  nInsert = 0, nCommit = 0;
    for (std::size_t i = 0; i < n; ++i) {
        nIssue += recorder.issue(i) != kNoCycle;
        nDispatch += recorder.dispatch(i) != kNoCycle;
        nComplete += recorder.complete(i) != kNoCycle;
        nInsert += recorder.insert(i) != kNoCycle;
        nCommit += recorder.commit(i) != kNoCycle;
    }
    metrics.counter("events.issue").add(nIssue);
    metrics.counter("events.dispatch").add(nDispatch);
    metrics.counter("events.complete").add(nComplete);
    metrics.counter("events.insert").add(nInsert);
    metrics.counter("events.commit").add(nCommit);

    if (total == 0)
        return;

    // ---- the per-cycle accounting identity -----------------------
    // A cycle is front-active if at least one op had its front event
    // (issue / insert) then.  Events stamped exactly at `total` (an
    // op completing on the final cycle boundary) fall outside the
    // counted range by definition.
    std::vector<std::uint8_t> frontActive(std::size_t(total), 0);
    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle front = recorder.front(i);
        if (front != kNoCycle && front < total)
            frontActive[std::size_t(front)] = 1;
    }
    std::uint64_t activeCycles = 0;
    for (const std::uint8_t a : frontActive)
        activeCycles += a;
    metrics.counter("cycles.front_active").add(activeCycles);

    std::uint64_t stallCycles = 0;
    std::array<std::uint64_t, kNumStallCauses> byCause{};
    for (const StallSample &s : recorder.stalls()) {
        if (s.from >= total)
            continue;
        const std::uint64_t charge =
            std::min<std::uint64_t>(s.cycles, total - s.from);
        byCause[unsigned(s.cause)] += charge;
        stallCycles += charge;
    }
    for (unsigned c = 0; c < kNumStallCauses; ++c) {
        if (byCause[c])
            metrics.counter(stallCounterName(StallCause(c)))
                .add(byCause[c]);
    }

    if (activeCycles + stallCycles > total) {
        throw Error("populateRunMetrics: stall attribution overlaps "
                    "issue cycles for " + sim.name() + " on " +
                    trace.name() + ": " +
                    std::to_string(activeCycles) + " active + " +
                    std::to_string(stallCycles) + " stalled > " +
                    std::to_string(total) + " total");
    }
    metrics.counter("cycles.drain")
        .add(total - activeCycles - stallCycles);

    // ---- per-FU busy cycles and utilization ----------------------
    std::array<std::uint64_t, kNumFuClasses> fuBusy{};
    std::vector<std::pair<ClockCycle, ClockCycle>> inflight;
    inflight.reserve(n);
    std::uint64_t completions = 0;
    std::vector<std::uint32_t> perCycleCompletes(std::size_t(total) + 1,
                                                 0);
    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle exec = recorder.exec(i);
        const ClockCycle complete = recorder.complete(i);
        if (exec != kNoCycle && complete != kNoCycle &&
            complete > exec)
            fuBusy[unsigned(trace.fu(i))] += complete - exec;
        const ClockCycle front = recorder.front(i);
        if (front != kNoCycle && complete != kNoCycle)
            inflight.emplace_back(front, complete);
        if (complete != kNoCycle && trace.producesResult(i)) {
            ++completions;
            if (complete <= total)
                ++perCycleCompletes[std::size_t(
                    std::min(complete, total))];
        }
    }
    for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
        if (!fuBusy[fu])
            continue;
        const std::string base =
            std::string("fu.") + fuClassName(FuClass(fu));
        metrics.counter(base + ".busy_cycles").add(fuBusy[fu]);
        metrics.gauge(base + ".utilization")
            .add(double(fuBusy[fu]) / double(total));
    }

    // ---- result-bus pressure -------------------------------------
    metrics.counter("bus.completions").add(completions);
    Histogram &busHist =
        metrics.histogram("bus.completions_per_cycle", 1, 9);
    for (ClockCycle c = 1; c <= total; ++c)
        busHist.record(perCycleCompletes[std::size_t(c)]);

    // ---- occupancy profiles --------------------------------------
    recordOccupancy(metrics, "occupancy.inflight", inflight, total);
    if (nInsert) {
        std::vector<std::pair<ClockCycle, ClockCycle>> window;
        window.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const ClockCycle in = recorder.insert(i);
            if (in == kNoCycle)
                continue;
            ClockCycle out = recorder.commit(i);
            if (out == kNoCycle)
                out = recorder.complete(i);
            if (out == kNoCycle)
                out = in + 1;
            window.emplace_back(in, out);
        }
        recordOccupancy(metrics, "occupancy.window", window, total);
    }

    // ---- front-to-dispatch wait decomposition --------------------
    // For machines that park ops past the front end (CDC, Tomasulo,
    // RUU), split each op's front->dispatch gap into operand waiting
    // (a producer completed inside the gap) and everything else
    // (unit / slot contention).  Purely diagnostic: these overlap
    // each other across ops and are NOT part of the cycle identity.
    std::uint64_t overlapRaw = 0, overlapStructural = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle front = recorder.front(i);
        const ClockCycle dispatch = recorder.dispatch(i);
        if (front == kNoCycle || dispatch == kNoCycle ||
            dispatch <= front)
            continue;
        const std::uint64_t wait = dispatch - front;
        ClockCycle rawUntil = 0;
        for (const std::uint32_t prod :
             { trace.prodA(i), trace.prodB(i) }) {
            if (prod == DecodedTrace::kNoProducer ||
                prod >= recorder.opCount())
                continue;
            const ClockCycle done = recorder.complete(prod);
            if (done != kNoCycle)
                rawUntil = std::max(rawUntil, done);
        }
        const std::uint64_t rawPart = rawUntil > front
            ? std::min<std::uint64_t>(wait, rawUntil - front)
            : 0;
        overlapRaw += rawPart;
        overlapStructural += wait - rawPart;
    }
    if (overlapRaw)
        metrics.counter("overlap.raw_wait_cycles").add(overlapRaw);
    if (overlapStructural)
        metrics.counter("overlap.structural_wait_cycles")
            .add(overlapStructural);

    // ---- steady-state telemetry ----------------------------------
    const TracePeriodicity &periodicity = trace.periodicity();
    metrics.gauge("steady.segments")
        .add(double(periodicity.segments.size()));
    if (!trace.empty())
        metrics.gauge("steady.coverage_pct")
            .add(100.0 * double(periodicity.coveredOps) /
                 double(trace.size()));
    metrics.counter("steady.ops_skipped").add(result.steadyOpsSkipped);
}

void
addStallBreakdown(MetricsRegistry &metrics,
                  const StallBreakdown &stalls)
{
    metrics.counter("cycles.stall.raw").add(stalls.raw);
    metrics.counter("cycles.stall.waw").add(stalls.waw);
    metrics.counter("cycles.stall.fu_busy").add(stalls.structural);
    metrics.counter("cycles.stall.bus_busy").add(stalls.resultBus);
    metrics.counter("cycles.stall.branch").add(stalls.branch);
}

} // namespace mfusim
