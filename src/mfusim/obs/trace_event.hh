/**
 * @file
 * Shared Chrome / Perfetto trace-event JSON emitters.
 *
 * Two exporters speak this format: the simulator pipeline tracer
 * (obs/pipe_trace.cc, one slice per op per pipeline stage) and the
 * serve-tier request tracer (obs/req_trace.cc, one track per worker
 * with per-request lifecycle spans).  Both must stay loadable by
 * Perfetto and validatable by tools/check_obs_json.py, so the event
 * syntax lives here once.
 *
 * The emitters are streaming: callers own the surrounding
 * `{"traceEvents": [ ... ]}` envelope and thread a `first` flag
 * through every call so separators land only between events.  The
 * timestamp is taken pre-formatted (the pipeline exporter emits
 * integer cycles, the request exporter fractional microseconds) —
 * formatting is the one thing the two disagree on.
 */

#ifndef MFUSIM_OBS_TRACE_EVENT_HH
#define MFUSIM_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

namespace mfusim
{
namespace trace_event
{

/**
 * Emit one trace event.  @p ts and @p dur are pre-formatted numbers;
 * @p dur is only written for complete ("X") events.  @p args is the
 * raw key-value body of the "args" object (no braces), empty to omit.
 * @p extra is raw JSON spliced after "tid" — async events use it for
 * `"cat": ..., "id": ...`, which the plain slice path never needs.
 */
inline void
event(std::ostream &os, bool &first, const std::string &name,
      const char *ph, std::int64_t tid, const std::string &ts,
      const std::string &dur = "", const std::string &args = "",
      const std::string &extra = "")
{
    os << (first ? "" : ",") << "\n  {\"name\": \"" << name
       << "\", \"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << tid;
    if (!extra.empty())
        os << ", " << extra;
    os << ", \"ts\": " << ts;
    if (*ph == 'X')
        os << ", \"dur\": " << dur;
    if (!args.empty())
        os << ", \"args\": {" << args << "}";
    os << "}";
    first = false;
}

/** Metadata pair naming a track and pinning its sort order. */
inline void
threadName(std::ostream &os, bool &first, std::int64_t tid,
           const std::string &name, std::int64_t sortIndex)
{
    os << (first ? "" : ",") << "\n  {\"name\": \"thread_name\", "
       << "\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"name\": \"" << name << "\"}},"
       << "\n  {\"name\": \"thread_sort_index\", \"ph\": \"M\", "
       << "\"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"sort_index\": " << sortIndex << "}}";
    first = false;
}

/** Metadata event naming the (single) process. */
inline void
processName(std::ostream &os, bool &first, const std::string &name)
{
    os << (first ? "" : ",")
       << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1"
       << ", \"args\": {\"name\": \"" << name << "\"}}";
    first = false;
}

/** Nanoseconds -> fractional microseconds ("12.345"), Perfetto's unit. */
inline std::string
microsFromNanos(std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

} // namespace trace_event
} // namespace mfusim

#endif // MFUSIM_OBS_TRACE_EVENT_HH
