/**
 * @file
 * RequestTracer implementation: seqlock span rings, phase/endpoint
 * histograms, the Perfetto exporter and the slow-request formatter.
 */

#include "mfusim/obs/req_trace.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "mfusim/core/clock.hh"
#include "mfusim/obs/trace_event.hh"

namespace mfusim
{

// ------------------------------------------------------------------- names

const char *
reqPhaseName(unsigned phase)
{
    static const char *const names[kNumReqPhases] = {
        "parse",        // recv -> headers parsed
        "dispatch",     // parsed -> routed
        "queue",        // routed -> handler start (worker queue wait)
        "compute",      // handler start -> handler done
        "serialize",    // handler done -> response head serialized
        "write_first",  // serialized -> first byte on the wire
        "write_drain",  // first byte -> last byte on the wire
    };
    assert(phase < kNumReqPhases);
    return names[phase];
}

std::string_view
endpointForPath(std::string_view path)
{
    if (path == "/v1/simulate")
        return "simulate";
    if (path == "/v1/sweep")
        return "sweep";
    if (path == "/healthz")
        return "healthz";
    if (path == "/metrics")
        return "metrics";
    if (path == "/v1/trace")
        return "trace";
    return "other";
}

// ---------------------------------------------------------------- SpanRing

SpanRing::SpanRing(std::size_t capacity)
    : capacity_(capacity ? capacity : 1),
      slots_(new Slot[capacity_])
{
}

void
SpanRing::push(const RequestSpan &span)
{
    Slot &slot = slots_[next_ % capacity_];
    ++next_;

    std::uint64_t words[kWords] = {};
    std::memcpy(words, &span, sizeof(span));

    // Seqlock write: odd sequence marks the slot torn.  The release
    // fence orders the odd store before the payload stores; the
    // final release store publishes the payload to readers that
    // observe the even sequence.
    const std::uint64_t s = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i)
        slot.words[i].store(words[i], std::memory_order_relaxed);
    slot.seq.store(s + 2, std::memory_order_release);

    pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
}

void
SpanRing::snapshot(std::vector<RequestSpan> &out) const
{
    for (std::size_t i = 0; i < capacity_; ++i) {
        const Slot &slot = slots_[i];
        // Bounded retries: the writer laps rarely (one push per
        // completed request); a persistently torn slot is dropped
        // rather than stalling the snapshot.
        for (int attempt = 0; attempt < 4; ++attempt) {
            const std::uint64_t s1 =
                slot.seq.load(std::memory_order_acquire);
            if (s1 == 0 || (s1 & 1))
                break;      // never written, or mid-write: retry
            std::uint64_t words[kWords];
            for (std::size_t w = 0; w < kWords; ++w)
                words[w] =
                    slot.words[w].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            const std::uint64_t s2 =
                slot.seq.load(std::memory_order_relaxed);
            if (s1 != s2)
                continue;   // overwritten under us
            RequestSpan span;
            std::memcpy(&span, words, sizeof(span));
            out.push_back(span);
            break;
        }
    }
}

// ----------------------------------------------------------- RequestTracer

namespace
{

/** Global armed flag; see reqTraceArmed() in the header. */
std::atomic<bool> g_reqTraceArmed{ false };

// 36 log2 buckets span 1 ns .. ~34 s before the overflow bucket —
// ample for request latencies — at 36 counters per histogram.
constexpr std::size_t kLatencyBuckets = 36;
constexpr double kNanosToSeconds = 1e-9;

// Slow-log rate cap: at most kSlowLogBurst lines per window so a
// latency storm cannot turn the log into its own bottleneck.
constexpr std::uint64_t kSlowLogWindowNs = 1000000000ull;
constexpr std::uint32_t kSlowLogBurst = 10;

// Retained fault marks; old fires age out like ring spans do.
constexpr std::size_t kMaxFaultMarks = 256;

const char *const kEndpointNames[] = {
    "simulate", "sweep", "healthz", "metrics", "trace", "other",
};

} // namespace

bool
reqTraceArmed()
{
    return g_reqTraceArmed.load(std::memory_order_relaxed);
}

void
setReqTraceArmed(bool armed)
{
    g_reqTraceArmed.store(armed, std::memory_order_relaxed);
}

SpanAnnotations &
spanAnnotations()
{
    thread_local SpanAnnotations annotations;
    return annotations;
}

RequestTracer::RequestTracer(const ReqTraceOptions &options)
    : options_(options)
{
    rings_.reserve(options_.workers + 1);
    for (std::uint32_t i = 0; i <= options_.workers; ++i)
        rings_.push_back(
            std::make_unique<SpanRing>(options_.ringCapacity));

    for (unsigned i = 0; i < kNumReqPhases; ++i)
        phase_[i] = &metrics_.histogramLog2(
            std::string("http.phase_seconds{phase=") +
                reqPhaseName(i) + "}",
            kLatencyBuckets, kNanosToSeconds);
    total_ = &metrics_.histogramLog2(
        "http.phase_seconds{phase=total}", kLatencyBuckets,
        kNanosToSeconds);
    for (const char *name : kEndpointNames)
        endpoints_.emplace_back(
            name, &metrics_.histogramLog2(
                      std::string("http.request_seconds{endpoint=") +
                          name + "}",
                      kLatencyBuckets, kNanosToSeconds));
    published_ = &metrics_.counter("http.trace.spans_published");
    slowLogged_ = &metrics_.counter("http.trace.slow_requests");

    setReqTraceArmed(true);
}

RequestTracer::~RequestTracer()
{
    setReqTraceArmed(false);
}

Histogram *
RequestTracer::endpointHistogram(const char *endpoint)
{
    for (auto &[name, histogram] : endpoints_)
        if (name == endpoint)
            return histogram;
    return endpoints_.back().second;    // "other"
}

bool
RequestTracer::takeSlowToken(std::uint64_t nowNs)
{
    if (nowNs - slowWindowStartNs_ >= kSlowLogWindowNs) {
        slowWindowStartNs_ = nowNs;
        slowWindowCount_ = 0;
    }
    if (slowWindowCount_ >= kSlowLogBurst)
        return false;
    ++slowWindowCount_;
    return true;
}

bool
RequestTracer::publish(RequestSpan &span)
{
    span.seq = ++nextSeq_;

    // Clamp unset (zero) or retrograde stamps to their predecessor:
    // every phase delta becomes non-negative and the telescoping
    // phase-sum identity holds exactly even for aborted requests.
    for (unsigned i = 1; i < kNumStamps; ++i)
        if (span.ts[i] < span.ts[i - 1])
            span.ts[i] = span.ts[i - 1];

    const std::uint8_t ring =
        span.worker < rings_.size() ? span.worker : 0;
    rings_[ring]->push(span);

    const std::uint64_t total = span.totalNs();
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        for (unsigned i = 0; i < kNumReqPhases; ++i)
            phase_[i]->record(span.phaseNs(i));
        total_->record(total);
        endpointHistogram(span.endpoint)->record(total);
        published_->increment();
    }

    if (options_.slowRequestNs == 0 || total < options_.slowRequestNs)
        return false;
    if (!takeSlowToken(span.ts[kStampLastWrite]))
        return false;
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        slowLogged_->increment();
    }
    return true;
}

void
RequestTracer::recordFault(std::string_view point)
{
    FaultMark mark;
    mark.ns = monoNanos();
    const std::size_t n = point.size() < sizeof(mark.point) - 1
        ? point.size()
        : sizeof(mark.point) - 1;
    std::memcpy(mark.point, point.data(), n);

    std::lock_guard<std::mutex> lock(faultMutex_);
    if (faults_.size() >= kMaxFaultMarks) {
        faults_.erase(faults_.begin());
        ++faultDropped_;
    }
    faults_.push_back(mark);
}

std::vector<RequestSpan>
RequestTracer::snapshot(std::size_t lastN) const
{
    std::vector<RequestSpan> spans;
    spans.reserve(rings_.size() * options_.ringCapacity);
    for (const auto &ring : rings_)
        ring->snapshot(spans);
    std::sort(spans.begin(), spans.end(),
              [](const RequestSpan &a, const RequestSpan &b) {
                  return a.seq < b.seq;
              });
    if (lastN && spans.size() > lastN)
        spans.erase(spans.begin(),
                    spans.end() - std::ptrdiff_t(lastN));
    return spans;
}

std::vector<FaultMark>
RequestTracer::faultMarks() const
{
    std::lock_guard<std::mutex> lock(faultMutex_);
    return faults_;
}

void
RequestTracer::appendMetrics(MetricsRegistry &out) const
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    out.merge(metrics_);
}

// ---------------------------------------------------------------- exporter

namespace
{

std::string
spanArgs(const RequestSpan &span)
{
    std::string out;
    out.reserve(256);
    const auto kv = [&](const char *key, std::uint64_t value) {
        if (!out.empty())
            out += ", ";
        out += '"';
        out += key;
        out += "\": ";
        out += std::to_string(value);
    };
    kv("seq", span.seq);
    kv("status", span.status);
    kv("fd", std::uint64_t(std::uint32_t(span.fd)));
    kv("gen", span.gen);
    kv("worker", span.worker);
    kv("fastpath", (span.flags & RequestSpan::kFlagFastpath) != 0);
    kv("cache_hit", (span.flags & RequestSpan::kFlagCacheHit) != 0);
    kv("pipelined", (span.flags & RequestSpan::kFlagPipelined) != 0);
    kv("aborted", (span.flags & RequestSpan::kFlagAborted) != 0);
    kv("audited", (span.flags & RequestSpan::kFlagAudited) != 0);
    kv("cache_ns", span.cacheNs);
    kv("total_ns", span.totalNs());
    out += ", \"phase_ns\": {";
    for (unsigned i = 0; i < kNumReqPhases; ++i) {
        if (i)
            out += ", ";
        out += '"';
        out += reqPhaseName(i);
        out += "\": ";
        out += std::to_string(span.phaseNs(i));
    }
    out += "}";
    return out;
}

} // namespace

void
RequestTracer::writeServeTrace(std::ostream &os,
                               std::size_t lastN) const
{
    const std::vector<RequestSpan> spans = snapshot(lastN);
    const std::vector<FaultMark> faults = faultMarks();

    // Normalize timestamps to the oldest retained event so traces
    // open near t=0 regardless of process uptime.
    std::uint64_t base = ~std::uint64_t(0);
    for (const RequestSpan &span : spans)
        base = std::min(base, span.ts[kStampRecv]);
    for (const FaultMark &mark : faults)
        base = std::min(base, mark.ns);
    if (base == ~std::uint64_t(0))
        base = 0;
    const auto rel = [&](std::uint64_t ns) {
        return trace_event::microsFromNanos(ns - base);
    };

    os << "{\n\"schema\": \"mfusim-serve-trace-v1\",\n"
       << "\"traceEvents\": [";
    bool first = true;
    trace_event::processName(os, first, "mfusim serve");
    trace_event::threadName(os, first, 1, "reactor", 1);
    for (std::uint32_t w = 1; w <= options_.workers; ++w)
        trace_event::threadName(os, first, 1 + std::int64_t(w),
                                "worker " + std::to_string(w),
                                1 + std::int64_t(w));

    for (const RequestSpan &span : spans) {
        const std::string name(span.endpoint);
        const std::string idTag =
            "\"cat\": \"request\", \"id\": " +
            std::to_string(span.seq);
        const std::string seqArg =
            "\"seq\": " + std::to_string(span.seq);

        // Request lifecycle as an async pair: Perfetto lays
        // concurrent ids out in parallel lanes, so a pipelined
        // burst reads as a ladder.  The "e" event carries the full
        // phase breakdown (check_obs_json.py re-verifies the
        // phase-sum identity from these args alone).
        trace_event::event(os, first, name, "b", 1,
                           rel(span.ts[kStampRecv]), "", "", idTag);

        // Handler occupancy on the executing track — the reactor
        // (tid 1) for fast-path answers, the worker's track
        // otherwise.  Tracks never self-overlap: workers compute
        // serially and the reactor is a single thread.
        const std::int64_t tid =
            span.worker == 0 ? 1 : 1 + std::int64_t(span.worker);
        const std::uint64_t computeNs = span.phaseNs(3);
        trace_event::event(
            os, first, name, "X", tid, rel(span.ts[kStampStart]),
            trace_event::microsFromNanos(computeNs), seqArg);
        if (span.cacheNs) {
            // Cache probe nests inside the compute slice (clamped
            // so the nesting is well-formed even if the annotation
            // outlived the handler by a few ns).
            const std::uint64_t probeNs =
                std::min(span.cacheNs, computeNs);
            trace_event::event(
                os, first, "cache probe", "X", tid,
                rel(span.ts[kStampStart]),
                trace_event::microsFromNanos(probeNs), seqArg);
        }

        trace_event::event(os, first, name, "e", 1,
                           rel(span.ts[kStampLastWrite]), "",
                           spanArgs(span), idTag);
    }

    for (const FaultMark &mark : faults)
        trace_event::event(os, first,
                           std::string("fault ") + mark.point, "i", 1,
                           rel(mark.ns), "", "", "\"s\": \"t\"");

    os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

// ----------------------------------------------------------------- slow log

std::string
formatSlowLine(const RequestSpan &span)
{
    char buf[512];
    int n = std::snprintf(
        buf, sizeof(buf),
        "slow-request seq=%llu endpoint=%s status=%u fd=%d gen=%u "
        "worker=%u fastpath=%u cache_hit=%u pipelined=%u aborted=%u "
        "total_ms=%.3f",
        static_cast<unsigned long long>(span.seq), span.endpoint,
        unsigned(span.status), span.fd, span.gen,
        unsigned(span.worker),
        unsigned((span.flags & RequestSpan::kFlagFastpath) != 0),
        unsigned((span.flags & RequestSpan::kFlagCacheHit) != 0),
        unsigned((span.flags & RequestSpan::kFlagPipelined) != 0),
        unsigned((span.flags & RequestSpan::kFlagAborted) != 0),
        double(span.totalNs()) * 1e-6);
    std::string out(buf, n > 0 ? std::size_t(n) : 0);
    for (unsigned i = 0; i < kNumReqPhases; ++i) {
        n = std::snprintf(buf, sizeof(buf), " %s_us=%.1f",
                          reqPhaseName(i),
                          double(span.phaseNs(i)) * 1e-3);
        out.append(buf, n > 0 ? std::size_t(n) : 0);
    }
    n = std::snprintf(buf, sizeof(buf), " cache_us=%.1f",
                      double(span.cacheNs) * 1e-3);
    out.append(buf, n > 0 ? std::size_t(n) : 0);
    return out;
}

} // namespace mfusim
