/**
 * @file
 * Observability extension of the SimAudit event stream.
 *
 * The AuditSink protocol carries the *schedule* — one cycle-stamped
 * event per pipeline phase per op.  That is enough to re-derive
 * legality (sim/audit.hh) but not to explain a rate: when the issue
 * stage sat idle, only the simulator knows which hazard was binding
 * at that moment.  An ObsSink therefore extends AuditSink with
 * StallSample callbacks: every simulator, at the exact points where
 * it resolves a wait, reports the cycles lost and the cause, using
 * the same attribution the single-issue machines have always used
 * for SimResult::stalls (binding hazard in check order).
 *
 * The cause taxonomy mirrors the paper's conflict classes:
 *
 *   | cause        | paper conflict class                          |
 *   |--------------|-----------------------------------------------|
 *   | kRaw         | data-dependency conflict (operand not ready)  |
 *   | kWaw         | register reservation (WAW-serial completion)  |
 *   | kFuBusy      | functional-unit conflict                      |
 *   | kBusBusy     | result-bus / CDB completion-slot conflict     |
 *   | kBranch      | control: condition wait + branch issue floor  |
 *   | kBufferDrain | issue buffer / RUU window / station pool full |
 *   | kSerial      | Simple machine's one-op-at-a-time execution   |
 *
 * Emission cost matches emitAudit: one predictable null test per
 * sample when no ObsSink is attached.  Attaching any sink disables
 * the steady-state fast path, so an instrumented run is always
 * cycle-exact (and its scalar counters are bit-identical to the
 * extrapolated fast-path run — asserted in tests).
 */

#ifndef MFUSIM_OBS_OBS_SINK_HH
#define MFUSIM_OBS_OBS_SINK_HH

#include <cstdint>
#include <vector>

#include "mfusim/core/types.hh"
#include "mfusim/sim/audit.hh"

namespace mfusim
{

/** Why an issue stage lost cycles (see the file comment). */
enum class StallCause : std::uint8_t
{
    kRaw,           //!< source operand not yet available
    kWaw,           //!< destination register still reserved
    kFuBusy,        //!< functional unit / memory port busy
    kBusBusy,       //!< no free result-bus / CDB completion slot
    kBranch,        //!< branch condition wait + branch issue floor
    kBufferDrain,   //!< issue buffer / RUU window / stations full
    kSerial,        //!< serial execution (Simple machine)
    kMispredict,    //!< front end fetching the wrong path
    kSquashDrain,   //!< post-squash refetch (branchTime redirect)
    kOther,         //!< unclassifiable (should not occur)
    kNumCauses
};

constexpr unsigned kNumStallCauses =
    static_cast<unsigned>(StallCause::kNumCauses);

/** Stable metric-name spelling of a cause, e.g. "fu_busy". */
inline const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::kRaw:         return "raw";
      case StallCause::kWaw:         return "waw";
      case StallCause::kFuBusy:      return "fu_busy";
      case StallCause::kBusBusy:     return "bus_busy";
      case StallCause::kBranch:      return "branch";
      case StallCause::kBufferDrain: return "buffer_drain";
      case StallCause::kSerial:      return "serial";
      case StallCause::kMispredict:  return "mispredict";
      case StallCause::kSquashDrain: return "squash_drain";
      default:                       return "other";
    }
}

/**
 * One attributed front-end stall: the issue stage lost @p cycles
 * consecutive cycles starting at @p from because op @p op was blocked
 * by @p cause.  Samples from one run never overlap each other or an
 * issue cycle, so their lengths sum into an exclusive per-cycle
 * accounting (see obs/run_metrics.hh).
 */
struct StallSample
{
    ClockCycle from;        //!< first stalled cycle
    ClockCycle cycles;      //!< consecutive cycles lost (>= 1)
    std::uint64_t op;       //!< trace index of the blocked op
    StallCause cause;
};

/** An AuditSink that also receives stall attribution samples. */
class ObsSink : public AuditSink
{
  public:
    virtual void onStall(const StallSample &sample) { (void)sample; }
};

/**
 * Fan a simulator's event stream out to several sinks (e.g. an
 * Auditor and a PipeTraceRecorder in the same run).  Stall samples
 * reach only the children that are ObsSinks.  The caller owns the
 * children and must keep them alive across the run.
 */
class FanoutSink : public ObsSink
{
  public:
    void
    add(AuditSink *sink)
    {
        if (!sink)
            return;
        sinks_.push_back(sink);
        if (auto *obs = dynamic_cast<ObsSink *>(sink))
            obsSinks_.push_back(obs);
    }

    void
    onEvent(const AuditEvent &event) override
    {
        for (AuditSink *sink : sinks_)
            sink->onEvent(event);
    }

    void
    onStall(const StallSample &sample) override
    {
        for (ObsSink *sink : obsSinks_)
            sink->onStall(sample);
    }

  private:
    std::vector<AuditSink *> sinks_;
    std::vector<ObsSink *> obsSinks_;
};

} // namespace mfusim

#endif // MFUSIM_OBS_OBS_SINK_HH
