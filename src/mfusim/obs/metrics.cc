/**
 * @file
 * MetricsRegistry implementation: storage, merging, JSON/CSV export.
 */

#include "mfusim/obs/metrics.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>

#include "mfusim/core/error.hh"

namespace mfusim
{

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::uint64_t bucketWidth, std::size_t bucketCount)
    : width_(bucketWidth), buckets_(bucketCount, 0)
{
    if (bucketWidth == 0 || bucketCount == 0)
        throw Error("Histogram: bucketWidth and bucketCount must be "
                    "nonzero");
}

Histogram
Histogram::makeLog2(std::size_t bucketCount, double unitScale)
{
    Histogram h(1, bucketCount);
    h.log2_ = true;
    h.unitScale_ = unitScale;
    return h;
}

std::uint64_t
Histogram::bucketUpperEdge(std::size_t i) const
{
    if (!log2_)
        return width_ * std::uint64_t(i + 1);
    // Bucket i counts values with bit_width == i: [2^(i-1), 2^i - 1].
    return i == 0 ? 0 : (std::uint64_t(1) << i) - 1;
}

void
Histogram::record(std::uint64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    const std::uint64_t idx =
        log2_ ? std::uint64_t(std::bit_width(value)) : value / width_;
    if (idx < buckets_.size())
        buckets_[idx] += weight;
    else
        overflow_ += weight;
    count_ += weight;
    sum_ += value * weight;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.width_ != width_ ||
        other.buckets_.size() != buckets_.size() ||
        other.log2_ != log2_ || other.unitScale_ != unitScale_)
        throw Error("Histogram::merge: bucket geometry mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ && other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

// ---------------------------------------------------------------- TimeSeries

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity)
{
}

void
TimeSeries::record(ClockCycle cycle, double value)
{
    if (pending_ + 1 < stride_) {
        ++pending_;
        return;
    }
    pending_ = 0;
    if (points_.size() >= capacity_) {
        // Keep every other point and double the stride: retained
        // points stay evenly spaced over the run so far.
        std::size_t w = 0;
        for (std::size_t r = 0; r < points_.size(); r += 2)
            points_[w++] = points_[r];
        points_.resize(w);
        stride_ *= 2;
    }
    points_.push_back(Point{ cycle, value });
}

// ---------------------------------------------------------------- Registry

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name)
{
    for (auto &entry : entries_)
        if (entry->name == name)
            return entry.get();
    return nullptr;
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry->name == name)
            return entry.get();
    return nullptr;
}

MetricsRegistry::Entry &
MetricsRegistry::create(const std::string &name, Kind kind)
{
    entries_.push_back(std::make_unique<Entry>());
    Entry &entry = *entries_.back();
    entry.name = name;
    entry.kind = kind;
    return entry;
}

void
MetricsRegistry::kindClash(const Entry &entry, Kind wanted) const
{
    static const char *const names[] = { "counter", "gauge",
                                         "histogram", "series" };
    throw Error("MetricsRegistry: '" + entry.name + "' is a " +
                names[unsigned(entry.kind)] + ", requested as " +
                names[unsigned(wanted)]);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    if (Entry *entry = find(name)) {
        if (entry->kind != Kind::kCounter)
            kindClash(*entry, Kind::kCounter);
        return *entry->counter;
    }
    Entry &entry = create(name, Kind::kCounter);
    entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    if (Entry *entry = find(name)) {
        if (entry->kind != Kind::kGauge)
            kindClash(*entry, Kind::kGauge);
        return *entry->gauge;
    }
    Entry &entry = create(name, Kind::kGauge);
    entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::uint64_t bucketWidth,
                           std::size_t bucketCount)
{
    if (Entry *entry = find(name)) {
        if (entry->kind != Kind::kHistogram)
            kindClash(*entry, Kind::kHistogram);
        return *entry->histogram;
    }
    Entry &entry = create(name, Kind::kHistogram);
    entry.histogram =
        std::make_unique<Histogram>(bucketWidth, bucketCount);
    return *entry.histogram;
}

Histogram &
MetricsRegistry::histogramLog2(const std::string &name,
                               std::size_t bucketCount,
                               double unitScale)
{
    if (Entry *entry = find(name)) {
        if (entry->kind != Kind::kHistogram)
            kindClash(*entry, Kind::kHistogram);
        return *entry->histogram;
    }
    Entry &entry = create(name, Kind::kHistogram);
    entry.histogram = std::make_unique<Histogram>(
        Histogram::makeLog2(bucketCount, unitScale));
    return *entry.histogram;
}

TimeSeries &
MetricsRegistry::series(const std::string &name, std::size_t capacity)
{
    if (Entry *entry = find(name)) {
        if (entry->kind != Kind::kSeries)
            kindClash(*entry, Kind::kSeries);
        return *entry->series;
    }
    Entry &entry = create(name, Kind::kSeries);
    entry.series = std::make_unique<TimeSeries>(capacity);
    return *entry.series;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const Entry *entry = find(name);
    if (!entry)
        return 0;
    if (entry->kind != Kind::kCounter)
        kindClash(*entry, Kind::kCounter);
    return entry->counter->value();
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const Entry *entry = find(name);
    if (!entry)
        return 0.0;
    if (entry->kind != Kind::kGauge)
        kindClash(*entry, Kind::kGauge);
    return entry->gauge->value();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const Entry *entry = find(name);
    if (!entry)
        return nullptr;
    if (entry->kind != Kind::kHistogram)
        kindClash(*entry, Kind::kHistogram);
    return entry->histogram.get();
}

void
MetricsRegistry::setLabel(const std::string &key,
                          const std::string &value)
{
    labels_[key] = value;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &src : other.entries_) {
        switch (src->kind) {
          case Kind::kCounter:
            counter(src->name).add(src->counter->value());
            break;
          case Kind::kGauge:
            gauge(src->name).add(src->gauge->value());
            break;
          case Kind::kHistogram: {
            Histogram &dst = src->histogram->isLog2()
                ? histogramLog2(src->name,
                                src->histogram->bucketCount(),
                                src->histogram->unitScale())
                : histogram(src->name, src->histogram->bucketWidth(),
                            src->histogram->bucketCount());
            dst.merge(*src->histogram);
            break;
          }
          case Kind::kSeries:
            // Time series are per-run artifacts: their cycle axes
            // restart at 0 in every run, so concatenating them
            // would produce a non-monotonic, meaningless series.
            // Merged registries carry counters, gauges and
            // histograms only.
            break;
        }
    }
    for (const auto &[key, value] : other.labels_)
        labels_.emplace(key, value);    // first writer wins
}

// ------------------------------------------------------------------- export

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"mfusim-metrics-v1\",\n";

    os << "  \"labels\": {";
    bool first = true;
    for (const auto &[key, value] : labels_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(key)
           << "\": \"" << jsonEscape(value) << "\"";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"counters\": {";
    first = true;
    for (const auto &entry : entries_) {
        if (entry->kind != Kind::kCounter)
            continue;
        os << (first ? "" : ",") << "\n    \""
           << jsonEscape(entry->name)
           << "\": " << entry->counter->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto &entry : entries_) {
        if (entry->kind != Kind::kGauge)
            continue;
        os << (first ? "" : ",") << "\n    \""
           << jsonEscape(entry->name)
           << "\": " << jsonNumber(entry->gauge->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto &entry : entries_) {
        if (entry->kind != Kind::kHistogram)
            continue;
        const Histogram &h = *entry->histogram;
        os << (first ? "" : ",") << "\n    \""
           << jsonEscape(entry->name) << "\": {\"bucket_width\": "
           << h.bucketWidth();
        if (h.isLog2())
            os << ", \"log2\": true, \"unit_scale\": "
               << jsonNumber(h.unitScale());
        os << ", \"count\": " << h.count()
           << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
           << ", \"max\": " << h.max()
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bucketCount(); ++i)
            os << (i ? ", " : "") << h.bucket(i);
        os << "], \"overflow\": " << h.overflow() << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"series\": {";
    first = true;
    for (const auto &entry : entries_) {
        if (entry->kind != Kind::kSeries)
            continue;
        const TimeSeries &ts = *entry->series;
        os << (first ? "" : ",") << "\n    \""
           << jsonEscape(entry->name) << "\": {\"stride\": "
           << ts.stride() << ", \"points\": [";
        bool firstPoint = true;
        for (const auto &p : ts.points()) {
            os << (firstPoint ? "" : ", ") << "[" << p.cycle << ", "
               << jsonNumber(p.value) << "]";
            firstPoint = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    // CSV flattens to scalar statistics: histograms export their
    // moments, series their last value.  Labels ride along as
    // pseudo-metrics so a spreadsheet join keeps the context.
    os << "name,kind,value\n";
    for (const auto &[key, value] : labels_)
        os << "label." << key << ",label," << value << "\n";
    for (const auto &entry : entries_) {
        switch (entry->kind) {
          case Kind::kCounter:
            os << entry->name << ",counter,"
               << entry->counter->value() << "\n";
            break;
          case Kind::kGauge:
            os << entry->name << ",gauge,"
               << jsonNumber(entry->gauge->value()) << "\n";
            break;
          case Kind::kHistogram: {
            const Histogram &h = *entry->histogram;
            os << entry->name << ".count,histogram," << h.count()
               << "\n"
               << entry->name << ".mean,histogram,"
               << jsonNumber(h.mean()) << "\n"
               << entry->name << ".min,histogram," << h.min() << "\n"
               << entry->name << ".max,histogram," << h.max() << "\n";
            break;
          }
          case Kind::kSeries: {
            const auto &points = entry->series->points();
            os << entry->name << ".samples,series," << points.size()
               << "\n";
            break;
          }
        }
    }
}

// -------------------------------------------------------------- prometheus

namespace
{

/** "http.latency ms" -> "mfusim_http_latency_ms". */
std::string
promName(const std::string &name)
{
    std::string out = "mfusim_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/** Label-name alphabet is the metric alphabet minus ':'. */
std::string
promLabelName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out = "_" + out;
    return out;
}

std::string
promLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out += c;
        }
    }
    return out;
}

/** The shared {key="value",...} suffix, or "" without labels. */
std::string
promLabels(const std::map<std::string, std::string> &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ",";
        out += promLabelName(key) + "=\"" + promLabelValue(value) +
            "\"";
        first = false;
    }
    out += "}";
    return out;
}

/** Like promLabels() but with one extra (histogram "le") label. */
std::string
promLabelsWith(const std::map<std::string, std::string> &labels,
               const std::string &extraKey,
               const std::string &extraValue)
{
    std::string out = "{";
    for (const auto &[key, value] : labels)
        out += promLabelName(key) + "=\"" + promLabelValue(value) +
            "\",";
    out += extraKey + "=\"" + extraValue + "\"}";
    return out;
}

/**
 * Split a registry name with a trailing embedded-label block
 * ("http.phase_seconds{phase=parse}") into the base family name and
 * its label pairs.  Names without a block pass through untouched.
 */
struct NameParts
{
    std::string base;
    std::map<std::string, std::string> labels;
};

NameParts
splitEmbedded(const std::string &name)
{
    NameParts parts;
    const std::size_t open = name.find('{');
    if (open == std::string::npos || name.back() != '}') {
        parts.base = name;
        return parts;
    }
    parts.base = name.substr(0, open);
    const std::string body =
        name.substr(open + 1, name.size() - open - 2);
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string pair = body.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos)
            parts.labels[pair.substr(0, eq)] = pair.substr(eq + 1);
        pos = comma + 1;
    }
    return parts;
}

} // namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    // Embedded-label names make one family span several entries, so
    // the TYPE line is emitted at the family's first appearance only.
    std::set<std::string> typed;
    const auto typeLine = [&](const std::string &family,
                              const char *kind) {
        if (typed.insert(family).second)
            os << "# TYPE " << family << " " << kind << "\n";
    };
    for (const auto &entry : entries_) {
        const NameParts parts = splitEmbedded(entry->name);
        std::map<std::string, std::string> all = labels_;
        for (const auto &[key, value] : parts.labels)
            all[key] = value;
        const std::string labels = promLabels(all);
        switch (entry->kind) {
          case Kind::kCounter: {
            const std::string name = promName(parts.base) + "_total";
            typeLine(name, "counter");
            os << name << labels << " " << entry->counter->value()
               << "\n";
            break;
          }
          case Kind::kGauge: {
            const std::string name = promName(parts.base);
            typeLine(name, "gauge");
            os << name << labels << " "
               << jsonNumber(entry->gauge->value()) << "\n";
            break;
          }
          case Kind::kHistogram: {
            const Histogram &h = *entry->histogram;
            const std::string name = promName(parts.base);
            const bool scaled = h.unitScale() != 1.0;
            typeLine(name, "histogram");
            // Scaled edges render with %.9g: "1e-09" instead of the
            // %.17g round-trip noise ("1.0000000000000001e-09") —
            // `le` is a display edge, not a re-parsed value.
            const auto edgeString = [&](std::uint64_t raw) {
                if (!scaled)
                    return std::to_string(raw);
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.9g",
                              double(raw) * h.unitScale());
                return std::string(buf);
            };
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.bucketCount(); ++i) {
                cumulative += h.bucket(i);
                const std::string edge =
                    edgeString(h.bucketUpperEdge(i));
                os << name << "_bucket"
                   << promLabelsWith(all, "le", edge) << " "
                   << cumulative << "\n";
            }
            os << name << "_bucket"
               << promLabelsWith(all, "le", "+Inf") << " "
               << h.count() << "\n";
            os << name << "_sum" << labels << " ";
            if (scaled)
                os << jsonNumber(double(h.sum()) * h.unitScale());
            else
                os << h.sum();
            os << "\n";
            os << name << "_count" << labels << " " << h.count()
               << "\n";
            break;
          }
          case Kind::kSeries:
            // No Prometheus equivalent (per-run cycle axis).
            break;
        }
    }
}

std::string
renderPrometheus(const MetricsRegistry &metrics)
{
    std::ostringstream os;
    metrics.writePrometheus(os);
    return os.str();
}

// ------------------------------------------------------------- phase timer

namespace
{

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ScopedPhaseTimer::ScopedPhaseTimer(Gauge &gauge)
    : gauge_(gauge), startNs_(nowNs())
{
}

ScopedPhaseTimer::~ScopedPhaseTimer()
{
    gauge_.add(double(nowNs() - startNs_) * 1e-9);
}

} // namespace mfusim
