/**
 * @file
 * PipeTraceRecorder implementation and the Chrome-trace / pipeview
 * exporters.
 */

#include "mfusim/obs/pipe_trace.hh"

#include "mfusim/obs/trace_event.hh"

#include <algorithm>
#include <map>
#include <string>

namespace mfusim
{

// ----------------------------------------------------------------- recorder

void
PipeTraceRecorder::ensure(std::size_t op)
{
    if (op < issue_.size())
        return;
    const std::size_t n = op + 1;
    issue_.resize(n, kNoCycle);
    dispatch_.resize(n, kNoCycle);
    complete_.resize(n, kNoCycle);
    insert_.resize(n, kNoCycle);
    commit_.resize(n, kNoCycle);
    issueUnit_.resize(n, -1);
    completeUnit_.resize(n, -1);
}

void
PipeTraceRecorder::onEvent(const AuditEvent &event)
{
    ensure(event.op);
    switch (event.phase) {
      case AuditPhase::kIssue:
        issue_[event.op] = event.cycle;
        issueUnit_[event.op] = event.unit;
        break;
      case AuditPhase::kDispatch:
        dispatch_[event.op] = event.cycle;
        break;
      case AuditPhase::kComplete:
        complete_[event.op] = event.cycle;
        completeUnit_[event.op] = event.unit;
        break;
      case AuditPhase::kInsert:
        insert_[event.op] = event.cycle;
        break;
      case AuditPhase::kCommit:
        commit_[event.op] = event.cycle;
        break;
      case AuditPhase::kWrongPath:
      case AuditPhase::kSquash:
        // Speculation events have no per-op lane in the pipeline
        // view; the attributed mispredict/squash stalls cover them.
        break;
    }
}

void
PipeTraceRecorder::onStall(const StallSample &sample)
{
    stalls_.push_back(sample);
}

ClockCycle
PipeTraceRecorder::front(std::size_t i) const
{
    return insert_[i] != kNoCycle ? insert_[i] : issue_[i];
}

ClockCycle
PipeTraceRecorder::exec(std::size_t i) const
{
    return dispatch_[i] != kNoCycle ? dispatch_[i] : front(i);
}

// ------------------------------------------------------------- chrome trace

namespace
{

// Track (tid) layout inside the single process: stable numbers keep
// Perfetto's track order meaningful across runs.
constexpr std::int64_t kTidIssueBase = 10;   // + issue slot
constexpr std::int64_t kTidFuBase = 100;     // + FuClass
constexpr std::int64_t kTidBusBase = 200;    // + bus id
constexpr std::int64_t kTidStalls = 300;
constexpr std::int64_t kTidInflight = 301;

// Thin adapters over the shared emitters: the pipeline exporter
// stamps integer cycles, which the shared layer takes pre-formatted.
void
writeEvent(std::ostream &os, bool &first, const std::string &name,
           const char *ph, std::int64_t tid, ClockCycle ts,
           ClockCycle dur, const std::string &args)
{
    trace_event::event(os, first, name, ph, tid, std::to_string(ts),
                       std::to_string(dur), args);
}

void
writeThreadName(std::ostream &os, bool &first, std::int64_t tid,
                const std::string &name, std::int64_t sortIndex)
{
    trace_event::threadName(os, first, tid, name, sortIndex);
}

} // namespace

void
writeChromeTrace(std::ostream &os, const PipeTraceRecorder &recorder,
                 const DecodedTrace &trace, const std::string &label)
{
    const std::size_t n =
        std::min(recorder.opCount(), trace.size());

    os << "{\n\"traceEvents\": [";
    bool first = true;

    trace_event::processName(os, first, label);

    // Discover the used issue slots, FU classes and busses so only
    // live tracks get names.
    std::map<std::int32_t, bool> slots, busses;
    std::map<unsigned, bool> fus;
    for (std::size_t i = 0; i < n; ++i) {
        if (recorder.front(i) == PipeTraceRecorder::kNoCycle)
            continue;
        slots[std::max(recorder.issueUnit(i), 0)] = true;
        if (recorder.complete(i) != PipeTraceRecorder::kNoCycle) {
            fus[unsigned(trace.fu(i))] = true;
            busses[std::max(recorder.completeUnit(i), 0)] = true;
        }
    }
    for (const auto &[slot, used] : slots)
        writeThreadName(os, first, kTidIssueBase + slot,
                        "issue slot " + std::to_string(slot), slot);
    for (const auto &[fu, used] : fus)
        writeThreadName(os, first, kTidFuBase + fu,
                        std::string("FU ") + fuClassName(FuClass(fu)),
                        100 + fu);
    for (const auto &[bus, used] : busses)
        writeThreadName(os, first, kTidBusBase + bus,
                        "result bus " + std::to_string(bus),
                        200 + bus);
    if (!recorder.stalls().empty())
        writeThreadName(os, first, kTidStalls, "front stalls", 300);

    // Per-op slices.
    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle front = recorder.front(i);
        if (front == PipeTraceRecorder::kNoCycle)
            continue;
        const std::string name = mnemonicOf(trace.op(i));
        const std::string args = "\"op\": " + std::to_string(i);

        // Front-end occupancy: from the front event until execution
        // starts (1 cycle minimum so the slice is visible).
        const ClockCycle exec = recorder.exec(i);
        const std::int64_t slot =
            kTidIssueBase + std::max(recorder.issueUnit(i), 0);
        const ClockCycle frontEnd =
            exec != PipeTraceRecorder::kNoCycle && exec > front
                ? exec
                : front + 1;
        writeEvent(os, first, name, "X", slot, front,
                   frontEnd - front, args);

        // Execution: [exec, complete) on the op's FU-class track.
        const ClockCycle complete = recorder.complete(i);
        if (complete != PipeTraceRecorder::kNoCycle &&
            exec != PipeTraceRecorder::kNoCycle) {
            const ClockCycle dur = complete > exec ? complete - exec
                                                   : 1;
            writeEvent(os, first, name, "X",
                       kTidFuBase + std::int64_t(unsigned(trace.fu(i))),
                       exec, dur, args);
            // Completion slot on the result bus track.
            writeEvent(os, first, name, "X",
                       kTidBusBase +
                           std::max(recorder.completeUnit(i), 0),
                       complete, 1, args);
        }
    }

    // Attributed stalls.
    for (const StallSample &s : recorder.stalls()) {
        writeEvent(os, first, stallCauseName(s.cause), "X",
                   kTidStalls, s.from, s.cycles,
                   "\"op\": " + std::to_string(s.op));
    }

    // In-flight counter: +1 at each front event, -1 at commit (or
    // completion when the machine has no commit stage).
    std::map<ClockCycle, std::int64_t> delta;
    for (std::size_t i = 0; i < n; ++i) {
        const ClockCycle front = recorder.front(i);
        if (front == PipeTraceRecorder::kNoCycle)
            continue;
        ClockCycle out = recorder.commit(i);
        if (out == PipeTraceRecorder::kNoCycle)
            out = recorder.complete(i);
        if (out == PipeTraceRecorder::kNoCycle)
            out = front + 1;
        ++delta[front];
        --delta[out];
    }
    std::int64_t live = 0;
    for (const auto &[cycle, d] : delta) {
        live += d;
        writeEvent(os, first, "in-flight ops", "C", kTidInflight,
                   cycle, 0,
                   "\"ops\": " + std::to_string(live));
    }

    os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

// ---------------------------------------------------------------- pipeview

void
writePipeview(std::ostream &os, const PipeTraceRecorder &recorder,
              const DecodedTrace &trace, std::size_t maxOps,
              std::size_t maxCols)
{
    const std::size_t n =
        std::min(recorder.opCount(), trace.size());
    const std::size_t shown = std::min(n, maxOps);
    if (shown == 0) {
        os << "(empty pipeview)\n";
        return;
    }

    // Window: from the first shown op's front event to the last
    // shown op's final event, clamped to maxCols columns.
    ClockCycle base = PipeTraceRecorder::kNoCycle;
    ClockCycle last = 0;
    for (std::size_t i = 0; i < shown; ++i) {
        const ClockCycle front = recorder.front(i);
        if (front == PipeTraceRecorder::kNoCycle)
            continue;
        base = std::min(base, front);
        for (const ClockCycle c :
             { recorder.complete(i), recorder.commit(i) })
            if (c != PipeTraceRecorder::kNoCycle)
                last = std::max(last, c);
        last = std::max(last, front);
    }
    if (base == PipeTraceRecorder::kNoCycle) {
        os << "(no recorded events)\n";
        return;
    }
    const std::size_t cols =
        std::min<std::size_t>(std::size_t(last - base) + 1, maxCols);

    os << "pipeview: cycles " << base << ".." << (base + cols - 1)
       << "  (I issue/insert, D dispatch, C complete, R retire, "
          "= exec, . wait)\n";

    for (std::size_t i = 0; i < shown; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%5zu %-10.10s |", i,
                      mnemonicOf(trace.op(i)));
        os << buf;

        const ClockCycle front = recorder.front(i);
        const ClockCycle exec = recorder.exec(i);
        const ClockCycle complete = recorder.complete(i);
        const ClockCycle commit = recorder.commit(i);
        const ClockCycle issue = recorder.issue(i);
        const ClockCycle insert = recorder.insert(i);
        const ClockCycle dispatch = recorder.dispatch(i);

        std::string row(cols, ' ');
        const auto col = [&](ClockCycle c) -> std::int64_t {
            if (c == PipeTraceRecorder::kNoCycle || c < base)
                return -1;
            const ClockCycle rel = c - base;
            return rel < cols ? std::int64_t(rel) : -1;
        };
        const auto fill = [&](ClockCycle from, ClockCycle to,
                              char ch) {
            if (from == PipeTraceRecorder::kNoCycle ||
                to == PipeTraceRecorder::kNoCycle || to <= from)
                return;
            for (ClockCycle c = from; c < to && c - base < cols; ++c)
                if (c >= base)
                    row[std::size_t(c - base)] = ch;
        };

        fill(front, exec, '.');         // waiting in the front end
        fill(exec, complete, '=');      // executing
        // Markers override spans; later stages win at shared cycles.
        if (const auto c = col(insert); c >= 0)
            row[std::size_t(c)] = 'I';
        if (const auto c = col(issue); c >= 0)
            row[std::size_t(c)] = 'I';
        if (const auto c = col(dispatch); c >= 0)
            row[std::size_t(c)] = 'D';
        if (const auto c = col(complete); c >= 0)
            row[std::size_t(c)] = 'C';
        if (const auto c = col(commit); c >= 0)
            row[std::size_t(c)] = 'R';

        os << row << "\n";
    }
    if (shown < n)
        os << "  ... (" << (n - shown) << " more ops)\n";
}

} // namespace mfusim
