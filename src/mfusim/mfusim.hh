/**
 * @file
 * Umbrella header: the complete public API of mfusim.
 *
 * mfusim is a from-scratch reproduction of Pleszkun & Sohi, "The
 * Performance Potential of Multiple Functional Unit Processors"
 * (UW-Madison CS TR #752 / ISCA 1988): a CRAY-1-like scalar ISA, a
 * macro-assembler and functional interpreter for trace generation,
 * the 14 Livermore loops as benchmark programs, a family of
 * trace-driven issue-timing simulators (serial, scoreboarded
 * single-issue, multiple-issue buffers, RUU dependency resolution),
 * dataflow/resource limit analyzers, an experiment harness that
 * regenerates every table of the paper, and a simulation-as-a-service
 * HTTP daemon (`mfusim serve`) with result caching, admission
 * control and Prometheus metrics.
 */

#ifndef MFUSIM_MFUSIM_HH
#define MFUSIM_MFUSIM_HH

#include "mfusim/codegen/assembler.hh"
#include "mfusim/codegen/interpreter.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/codegen/reference_kernels.hh"
#include "mfusim/codegen/synthetic.hh"
#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"
#include "mfusim/core/instruction.hh"
#include "mfusim/core/branch_policy.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/core/opcode.hh"
#include "mfusim/core/registers.hh"
#include "mfusim/core/shutdown.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/core/table.hh"
#include "mfusim/core/trace.hh"
#include "mfusim/core/trace_io.hh"
#include "mfusim/core/types.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/dataflow/trace_analysis.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/funits/functional_unit.hh"
#include "mfusim/funits/memory_port.hh"
#include "mfusim/funits/result_bus.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/harness/spec_parse.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/obs/metrics.hh"
#include "mfusim/obs/obs_sink.hh"
#include "mfusim/obs/pipe_trace.hh"
#include "mfusim/obs/run_metrics.hh"
#include "mfusim/serve/http.hh"
#include "mfusim/serve/json.hh"
#include "mfusim/serve/result_cache.hh"
#include "mfusim/serve/server.hh"
#include "mfusim/serve/sim_service.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/simulator.hh"
#include "mfusim/sim/steady_state.hh"
#include "mfusim/sim/tomasulo_sim.hh"

#endif // MFUSIM_MFUSIM_HH
