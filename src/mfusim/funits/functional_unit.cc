/**
 * @file
 * Functional unit timing.
 */

#include "mfusim/funits/functional_unit.hh"

#include <algorithm>
#include <cassert>

namespace mfusim
{

void
FunctionalUnit::accept(ClockCycle when, unsigned latency,
                       unsigned occupancy)
{
    assert(canAccept(when) && "accepted an op while busy");
    assert(occupancy >= 1);
    if (discipline_ == FuDiscipline::kSegmented) {
        // A segmented unit starts one new operation per cycle; a
        // vector operation feeds it one element per cycle and so
        // holds it for its whole occupancy.
        nextFree_ = when + occupancy;
    } else {
        nextFree_ = when + std::max(latency, occupancy);
    }
}

} // namespace mfusim
