/**
 * @file
 * Result-bus reservation implementation.
 */

#include "mfusim/funits/result_bus.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mfusim
{

std::uint64_t
CycleReservations::maskFor(ClockCycle t) const
{
    assert(t >= base_ && "reservation in the forgotten past");
    assert(t < base_ + 64 && "reservation beyond the 64-cycle window");
    return std::uint64_t(1) << (t - base_);
}

bool
CycleReservations::isReserved(ClockCycle t) const
{
    if (t < base_)
        return false;
    if (t >= base_ + 64)
        return false;
    return (bits_ & (std::uint64_t(1) << (t - base_))) != 0;
}

bool
CycleReservations::tryReserve(ClockCycle t)
{
    const std::uint64_t mask = maskFor(t);
    if (bits_ & mask)
        return false;
    bits_ |= mask;
    return true;
}

void
CycleReservations::advanceTo(ClockCycle now)
{
    if (now <= base_)
        return;
    const ClockCycle shift = now - base_;
    bits_ = shift >= 64 ? 0 : bits_ >> shift;
    base_ = now;
}

void
CycleReservations::reset()
{
    base_ = 0;
    bits_ = 0;
}

ClockCycle
CycleReservations::nextFreeSlot(ClockCycle from) const
{
    if (from < base_)
        return from;                    // forgotten past: free
    if (from >= base_ + 64)
        return from;                    // beyond the window: free
    // countr_one finds the run of reserved cycles starting at
    // `from`; the window's high bits are zero past base_ + 64, so
    // the scan always terminates inside it.
    const std::uint64_t occupied = bits_ >> (from - base_);
    return from + std::countr_one(occupied);
}

ClockCycle
ResultBusSet::earliestReserve(unsigned unit,
                              ClockCycle completion) const
{
    switch (kind_) {
      case BusKind::kSingle:
        return busses_[0].nextFreeSlot(completion);
      case BusKind::kPerUnit:
        assert(unit < busses_.size());
        return busses_[unit].nextFreeSlot(completion);
      default:  // crossbar: first cycle at which any bus is free
        {
            ClockCycle best = busses_[0].nextFreeSlot(completion);
            for (std::size_t b = 1; b < busses_.size(); ++b) {
                best = std::min(best,
                                busses_[b].nextFreeSlot(completion));
            }
            return best;
        }
    }
}

void
ResultBusSet::shiftTime(ClockCycle delta)
{
    for (CycleReservations &bus : busses_)
        bus.shiftTime(delta);
}

void
ResultBusSet::appendSignature(ClockCycle base,
                              std::vector<std::uint64_t> &out)
{
    for (CycleReservations &bus : busses_) {
        bus.advanceTo(base);
        out.push_back(bus.bits());
    }
}

const char *
busKindName(BusKind kind)
{
    switch (kind) {
      case BusKind::kPerUnit:
        return "N-Bus";
      case BusKind::kSingle:
        return "1-Bus";
      default:
        return "X-Bar";
    }
}

ResultBusSet::ResultBusSet(BusKind kind, unsigned numUnits)
    : kind_(kind)
{
    assert(numUnits >= 1);
    const unsigned count = kind == BusKind::kSingle ? 1 : numUnits;
    busses_.resize(count);
}

bool
ResultBusSet::canReserve(unsigned unit, ClockCycle completion) const
{
    switch (kind_) {
      case BusKind::kSingle:
        return !busses_[0].isReserved(completion);
      case BusKind::kPerUnit:
        assert(unit < busses_.size());
        return !busses_[unit].isReserved(completion);
      default:  // crossbar: any free bus will do
        for (const CycleReservations &bus : busses_) {
            if (!bus.isReserved(completion))
                return true;
        }
        return false;
    }
}

void
ResultBusSet::reserve(unsigned unit, ClockCycle completion)
{
    switch (kind_) {
      case BusKind::kSingle:
        {
            const bool ok = busses_[0].tryReserve(completion);
            assert(ok && "1-Bus slot taken");
            (void)ok;
        }
        break;
      case BusKind::kPerUnit:
        {
            assert(unit < busses_.size());
            const bool ok = busses_[unit].tryReserve(completion);
            assert(ok && "N-Bus slot taken");
            (void)ok;
        }
        break;
      default:
        for (CycleReservations &bus : busses_) {
            if (bus.tryReserve(completion))
                return;
        }
        assert(false && "X-Bar: all busses taken");
        break;
    }
}

void
ResultBusSet::advanceTo(ClockCycle now)
{
    for (CycleReservations &bus : busses_)
        bus.advanceTo(now);
}

void
ResultBusSet::reset()
{
    for (CycleReservations &bus : busses_)
        bus.reset();
}

} // namespace mfusim
