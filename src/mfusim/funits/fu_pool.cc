/**
 * @file
 * Functional unit pool implementation.
 */

#include "mfusim/funits/fu_pool.hh"

#include <cassert>

namespace mfusim
{

FuPool::FuPool(const FuPoolConfig &poolCfg,
               const MachineConfig &machineCfg)
    : machineCfg_(machineCfg), fuCopies_(poolCfg.fuCopies)
{
    assert(poolCfg.fuCopies >= 1 && poolCfg.memPorts >= 1);
    units_.assign(std::size_t(kNumFuClasses) * poolCfg.fuCopies,
                  FunctionalUnit(poolCfg.fuDiscipline));
    memory_.assign(poolCfg.memPorts,
                   MemoryPort(poolCfg.memDiscipline,
                              machineCfg.memLatency));
}

bool
FuPool::usesPool(Op op)
{
    const FuClass fu = traitsOf(op).fu;
    return fu != FuClass::kTransfer && fu != FuClass::kBranch;
}

const FunctionalUnit &
FuPool::bestUnit(Op op) const
{
    const auto base =
        std::size_t(traitsOf(op).fu) * fuCopies_;
    std::size_t best = base;
    for (std::size_t i = base + 1; i < base + fuCopies_; ++i) {
        if (units_[i].nextFree() < units_[best].nextFree())
            best = i;
    }
    return units_[best];
}

FunctionalUnit &
FuPool::bestUnit(Op op)
{
    return const_cast<FunctionalUnit &>(
        const_cast<const FuPool *>(this)->bestUnit(op));
}

const MemoryPort &
FuPool::bestPort() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < memory_.size(); ++i) {
        if (memory_[i].nextFree() < memory_[best].nextFree())
            best = i;
    }
    return memory_[best];
}

MemoryPort &
FuPool::bestPort()
{
    return const_cast<MemoryPort &>(
        const_cast<const FuPool *>(this)->bestPort());
}

bool
FuPool::canAccept(Op op, ClockCycle when) const
{
    if (!usesPool(op))
        return true;
    if (isMemory(op))
        return bestPort().canAccept(when);
    return bestUnit(op).canAccept(when);
}

ClockCycle
FuPool::earliestAccept(Op op, ClockCycle when) const
{
    if (!usesPool(op))
        return when;
    const ClockCycle free = isMemory(op) ? bestPort().nextFree()
                                         : bestUnit(op).nextFree();
    return free > when ? free : when;
}

ClockCycle
FuPool::accept(Op op, ClockCycle when, unsigned occupancy)
{
    const unsigned latency = latencyOf(op, machineCfg_);
    if (!usesPool(op))
        return when + latency + occupancy - 1;
    if (isMemory(op))
        return bestPort().accept(when, occupancy);
    bestUnit(op).accept(when, latency, occupancy);
    return when + latency + occupancy - 1;
}

void
FuPool::reset()
{
    for (FunctionalUnit &unit : units_)
        unit.reset();
    for (MemoryPort &port : memory_)
        port.reset();
}

} // namespace mfusim
