/**
 * @file
 * Functional unit pool implementation: the Op-keyed convenience
 * overloads, delegating to the inline FuClass fast paths.
 */

#include "mfusim/funits/fu_pool.hh"

#include <cassert>

namespace mfusim
{

FuPool::FuPool(const FuPoolConfig &poolCfg,
               const MachineConfig &machineCfg)
    : machineCfg_(machineCfg), fuCopies_(poolCfg.fuCopies)
{
    assert(poolCfg.fuCopies >= 1 && poolCfg.memPorts >= 1);
    units_.assign(std::size_t(kNumFuClasses) * poolCfg.fuCopies,
                  FunctionalUnit(poolCfg.fuDiscipline));
    memory_.assign(poolCfg.memPorts,
                   MemoryPort(poolCfg.memDiscipline,
                              machineCfg.memLatency));
}

bool
FuPool::canAccept(Op op, ClockCycle when) const
{
    return canAccept(traitsOf(op).fu, when);
}

ClockCycle
FuPool::earliestAccept(Op op, ClockCycle when) const
{
    return earliestAccept(traitsOf(op).fu, when);
}

ClockCycle
FuPool::accept(Op op, ClockCycle when, unsigned occupancy)
{
    return accept(traitsOf(op).fu, when, latencyOf(op, machineCfg_),
                  occupancy);
}

void
FuPool::reset()
{
    for (FunctionalUnit &unit : units_)
        unit.reset();
    for (MemoryPort &port : memory_)
        port.reset();
}

} // namespace mfusim
