/**
 * @file
 * The memory system as a "functional unit".
 *
 * The paper treats memory as a heavily used functional unit with a
 * long latency (11 cycles slow / 5 cycles fast) and varies whether
 * it is:
 *
 *  - "serial": at most one outstanding request; a request occupies
 *    the memory for its full latency (the SerialMemory machine);
 *  - "interleaved": a new request can be accepted every cycle and
 *    requests complete in pipelined fashion (the NonSegmented,
 *    CRAY-like, and all multiple-issue machines).
 */

#ifndef MFUSIM_FUNITS_MEMORY_PORT_HH
#define MFUSIM_FUNITS_MEMORY_PORT_HH

#include "mfusim/core/types.hh"

namespace mfusim
{

/** Memory organization. */
enum class MemDiscipline
{
    kSerial,        //!< one request at a time, busy for full latency
    kInterleaved,   //!< pipelined, one new request per cycle
};

/**
 * Accept-availability timeline of the memory port.
 */
class MemoryPort
{
  public:
    MemoryPort(MemDiscipline discipline, unsigned latency)
        : discipline_(discipline), latency_(latency)
    {}

    /** Earliest cycle at which a new request can be accepted. */
    ClockCycle nextFree() const { return nextFree_; }

    bool
    canAccept(ClockCycle when) const
    {
        return when >= nextFree_;
    }

    /**
     * Accept a request at cycle @p when; returns the cycle at which
     * its result (for a load: the destination register) is
     * available.  @p occupancy > 1 models a vector reference
     * streaming one word per cycle.
     */
    ClockCycle accept(ClockCycle when, unsigned occupancy = 1);

    unsigned latency() const { return latency_; }
    MemDiscipline discipline() const { return discipline_; }

    void reset() { nextFree_ = 0; }

    /** Shift the timeline forward (steady-state extrapolation). */
    void shiftTime(ClockCycle delta) { nextFree_ += delta; }

  private:
    MemDiscipline discipline_;
    unsigned latency_;
    ClockCycle nextFree_ = 0;
};

} // namespace mfusim

#endif // MFUSIM_FUNITS_MEMORY_PORT_HH
