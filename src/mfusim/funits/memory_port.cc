/**
 * @file
 * Memory port timing.
 */

#include "mfusim/funits/memory_port.hh"

#include <cassert>

namespace mfusim
{

ClockCycle
MemoryPort::accept(ClockCycle when, unsigned occupancy)
{
    assert(canAccept(when) && "memory accepted a request while busy");
    assert(occupancy >= 1);
    if (discipline_ == MemDiscipline::kInterleaved)
        nextFree_ = when + occupancy;
    else
        nextFree_ = when + latency_ + occupancy - 1;
    return when + latency_ + occupancy - 1;
}

} // namespace mfusim
