/**
 * @file
 * Timing model of one hardware functional unit.
 *
 * The paper distinguishes two functional-unit disciplines:
 *
 *  - "non-segmented": a unit is busy for the full latency of each
 *    operation it accepts (CDC-6600 style; the paper's SerialMemory
 *    and NonSegmented machines);
 *  - "segmented" (pipelined): a unit accepts a new independent
 *    operation every clock cycle (CRAY style).
 *
 * A FunctionalUnit tracks only when it can next *accept* work; the
 * per-operation result latency is the caller's business.
 */

#ifndef MFUSIM_FUNITS_FUNCTIONAL_UNIT_HH
#define MFUSIM_FUNITS_FUNCTIONAL_UNIT_HH

#include "mfusim/core/types.hh"

namespace mfusim
{

/** Pipelining discipline of a functional unit. */
enum class FuDiscipline
{
    kSegmented,     //!< accepts one operation per cycle
    kNonSegmented,  //!< busy for the whole operation latency
};

/**
 * One functional unit's accept-availability timeline.
 */
class FunctionalUnit
{
  public:
    explicit FunctionalUnit(FuDiscipline discipline =
                            FuDiscipline::kSegmented)
        : discipline_(discipline)
    {}

    /** Earliest cycle at which a new operation can be accepted. */
    ClockCycle nextFree() const { return nextFree_; }

    /** True if an operation can be accepted at cycle @p when. */
    bool
    canAccept(ClockCycle when) const
    {
        return when >= nextFree_;
    }

    /**
     * Accept an operation at cycle @p when with result latency
     * @p latency.  @p when must be >= nextFree().
     *
     * @param occupancy cycles the unit is held by this operation: 1
     *        for scalar ops; a vector op streams one element per
     *        cycle and holds even a segmented unit for VL cycles.
     */
    void accept(ClockCycle when, unsigned latency,
                unsigned occupancy = 1);

    FuDiscipline discipline() const { return discipline_; }

    /** Forget all reservations (start a new simulation). */
    void reset() { nextFree_ = 0; }

    /**
     * Shift the timeline forward by @p delta cycles (steady-state
     * extrapolation): behavior relative to the equally shifted
     * simulation clock is unchanged.
     */
    void shiftTime(ClockCycle delta) { nextFree_ += delta; }

  private:
    FuDiscipline discipline_;
    ClockCycle nextFree_ = 0;
};

} // namespace mfusim

#endif // MFUSIM_FUNITS_FUNCTIONAL_UNIT_HH
