/**
 * @file
 * The complete functional-unit complement of the base machine.
 *
 * One unit of each FuClass (address add/multiply, scalar add,
 * logical, shift, floating add/multiply, reciprocal approximation)
 * plus the memory port.  Register-transfer operations use dedicated
 * data paths and never contend for a unit; branches are resolved by
 * the issue stage and likewise bypass the pool.
 */

#ifndef MFUSIM_FUNITS_FU_POOL_HH
#define MFUSIM_FUNITS_FU_POOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/opcode.hh"
#include "mfusim/funits/functional_unit.hh"
#include "mfusim/funits/memory_port.hh"

namespace mfusim
{

/** Hardware organization of the execution resources. */
struct FuPoolConfig
{
    FuDiscipline fuDiscipline = FuDiscipline::kSegmented;
    MemDiscipline memDiscipline = MemDiscipline::kInterleaved;

    /**
     * Copies of each functional unit (extension).  The paper's base
     * machine has exactly one of each ("there is only 1 floating
     * point multiply unit and this unit can only accept 1 new
     * floating point operation every clock cycle"); replicating
     * units tests the paper's opening premise that performance can
     * be sought by "increasing the number of functional units".
     */
    unsigned fuCopies = 1;

    /** Independent memory ports (extension; the base machine: 1). */
    unsigned memPorts = 1;
};

/**
 * Accept-availability of every execution resource of the machine.
 *
 * The FuClass overloads are the pre-decoded fast path: callers that
 * already resolved an op's unit class and latency (DecodedTrace)
 * skip the traitsOf()/latencyOf() lookups entirely.  The Op
 * overloads delegate to them.
 */
class FuPool
{
  public:
    FuPool(const FuPoolConfig &poolCfg, const MachineConfig &machineCfg);

    /** True if @p op's execution resource can accept it at @p when. */
    bool canAccept(Op op, ClockCycle when) const;

    /** Earliest cycle >= @p when at which @p op can be accepted. */
    ClockCycle earliestAccept(Op op, ClockCycle when) const;

    /**
     * Accept @p op at cycle @p when; returns the cycle at which its
     * result is usable by dependents (when + latency; for a vector
     * op with @p occupancy elements, when + latency + occupancy - 1,
     * the last element).
     */
    ClockCycle accept(Op op, ClockCycle when, unsigned occupancy = 1);

    /** Fast path of canAccept(Op): unit class already resolved. */
    bool
    canAccept(FuClass fu, ClockCycle when) const
    {
        if (!usesPool(fu))
            return true;
        if (fu == FuClass::kMemory)
            return bestPort().canAccept(when);
        return bestUnit(fu).canAccept(when);
    }

    /** Fast path of earliestAccept(Op). */
    ClockCycle
    earliestAccept(FuClass fu, ClockCycle when) const
    {
        if (!usesPool(fu))
            return when;
        const ClockCycle free = fu == FuClass::kMemory
                                    ? bestPort().nextFree()
                                    : bestUnit(fu).nextFree();
        return free > when ? free : when;
    }

    /**
     * Fast path of accept(Op): @p latency must equal
     * latencyOf(op, machineCfg) of the accepted op.
     */
    ClockCycle
    accept(FuClass fu, ClockCycle when, unsigned latency,
           unsigned occupancy = 1)
    {
        if (!usesPool(fu))
            return when + latency + occupancy - 1;
        if (fu == FuClass::kMemory)
            return bestPort().accept(when, occupancy);
        bestUnit(fu).accept(when, latency, occupancy);
        return when + latency + occupancy - 1;
    }

    void reset();

    /**
     * Shift every unit's and port's timeline forward by @p delta
     * cycles (steady-state extrapolation).
     */
    void
    shiftTime(ClockCycle delta)
    {
        for (FunctionalUnit &unit : units_)
            unit.shiftTime(delta);
        for (MemoryPort &port : memory_)
            port.shiftTime(delta);
    }

    /**
     * Append the pool's live state, rebased to @p base, to @p out:
     * one value per unit and port, max(nextFree, base) - base.  The
     * clamp is exact for state matching — a unit free at or before
     * @p base accepts any later request, however long it has idled.
     */
    void
    appendSignature(ClockCycle base,
                    std::vector<std::uint64_t> &out) const
    {
        for (const FunctionalUnit &unit : units_) {
            const ClockCycle free = unit.nextFree();
            out.push_back(free > base ? free - base : 0);
        }
        for (const MemoryPort &port : memory_) {
            const ClockCycle free = port.nextFree();
            out.push_back(free > base ? free - base : 0);
        }
    }

  private:
    /** True if ops of @p fu contend for a pool resource at all. */
    static bool
    usesPool(FuClass fu)
    {
        return fu != FuClass::kTransfer && fu != FuClass::kBranch;
    }

    /** The copy of the class's unit that frees up first. */
    const FunctionalUnit &
    bestUnit(FuClass fu) const
    {
        const auto base = std::size_t(fu) * fuCopies_;
        std::size_t best = base;
        for (std::size_t i = base + 1; i < base + fuCopies_; ++i) {
            if (units_[i].nextFree() < units_[best].nextFree())
                best = i;
        }
        return units_[best];
    }

    FunctionalUnit &
    bestUnit(FuClass fu)
    {
        return const_cast<FunctionalUnit &>(
            const_cast<const FuPool *>(this)->bestUnit(fu));
    }

    const MemoryPort &
    bestPort() const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < memory_.size(); ++i) {
            if (memory_[i].nextFree() < memory_[best].nextFree())
                best = i;
        }
        return memory_[best];
    }

    MemoryPort &
    bestPort()
    {
        return const_cast<MemoryPort &>(
            const_cast<const FuPool *>(this)->bestPort());
    }

    MachineConfig machineCfg_;
    // units_[class * fuCopies + copy]
    std::vector<FunctionalUnit> units_;
    std::vector<MemoryPort> memory_;
    unsigned fuCopies_;
};

} // namespace mfusim

#endif // MFUSIM_FUNITS_FU_POOL_HH
