/**
 * @file
 * The complete functional-unit complement of the base machine.
 *
 * One unit of each FuClass (address add/multiply, scalar add,
 * logical, shift, floating add/multiply, reciprocal approximation)
 * plus the memory port.  Register-transfer operations use dedicated
 * data paths and never contend for a unit; branches are resolved by
 * the issue stage and likewise bypass the pool.
 */

#ifndef MFUSIM_FUNITS_FU_POOL_HH
#define MFUSIM_FUNITS_FU_POOL_HH

#include <array>
#include <vector>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/opcode.hh"
#include "mfusim/funits/functional_unit.hh"
#include "mfusim/funits/memory_port.hh"

namespace mfusim
{

/** Hardware organization of the execution resources. */
struct FuPoolConfig
{
    FuDiscipline fuDiscipline = FuDiscipline::kSegmented;
    MemDiscipline memDiscipline = MemDiscipline::kInterleaved;

    /**
     * Copies of each functional unit (extension).  The paper's base
     * machine has exactly one of each ("there is only 1 floating
     * point multiply unit and this unit can only accept 1 new
     * floating point operation every clock cycle"); replicating
     * units tests the paper's opening premise that performance can
     * be sought by "increasing the number of functional units".
     */
    unsigned fuCopies = 1;

    /** Independent memory ports (extension; the base machine: 1). */
    unsigned memPorts = 1;
};

/**
 * Accept-availability of every execution resource of the machine.
 */
class FuPool
{
  public:
    FuPool(const FuPoolConfig &poolCfg, const MachineConfig &machineCfg);

    /** True if @p op's execution resource can accept it at @p when. */
    bool canAccept(Op op, ClockCycle when) const;

    /** Earliest cycle >= @p when at which @p op can be accepted. */
    ClockCycle earliestAccept(Op op, ClockCycle when) const;

    /**
     * Accept @p op at cycle @p when; returns the cycle at which its
     * result is usable by dependents (when + latency; for a vector
     * op with @p occupancy elements, when + latency + occupancy - 1,
     * the last element).
     */
    ClockCycle accept(Op op, ClockCycle when, unsigned occupancy = 1);

    void reset();

  private:
    /** True if @p op contends for a pool resource at all. */
    static bool usesPool(Op op);

    /** The copy of @p op's unit class that frees up first. */
    const FunctionalUnit &bestUnit(Op op) const;
    FunctionalUnit &bestUnit(Op op);
    const MemoryPort &bestPort() const;
    MemoryPort &bestPort();

    MachineConfig machineCfg_;
    // units_[class * fuCopies + copy]
    std::vector<FunctionalUnit> units_;
    std::vector<MemoryPort> memory_;
    unsigned fuCopies_;
};

} // namespace mfusim

#endif // MFUSIM_FUNITS_FU_POOL_HH
