/**
 * @file
 * Result-bus reservation models.
 *
 * A result bus carries a completing instruction's result from its
 * functional unit to the register file.  An instruction reserves a
 * bus slot for its completion cycle at issue time; if no slot is
 * available, issue blocks.  The paper studies three interconnects
 * for an N-issue-unit machine:
 *
 *  - N-Bus: N busses, the instruction issued by unit i must use
 *    bus i;
 *  - 1-Bus: a single shared bus (single register-file write port);
 *  - X-Bar: N busses, any instruction may use any free bus (the
 *    paper found this "essentially the same" as N-Bus).
 *
 * Branches and stores produce no register result and use no bus.
 */

#ifndef MFUSIM_FUNITS_RESULT_BUS_HH
#define MFUSIM_FUNITS_RESULT_BUS_HH

#include <cstdint>
#include <vector>

#include "mfusim/core/types.hh"

namespace mfusim
{

/**
 * A sliding 64-cycle window of single-cycle reservations.
 *
 * Reservations are made at absolute cycles within [base, base+64);
 * advanceTo() slides the window forward as simulated time advances.
 * 64 cycles comfortably covers the maximum operation latency (14 for
 * the reciprocal unit, 11 for slow memory).
 */
class CycleReservations
{
  public:
    /** True if cycle @p t is already reserved. */
    bool isReserved(ClockCycle t) const;

    /** Reserve cycle @p t; returns false if it was already taken. */
    bool tryReserve(ClockCycle t);

    /** Slide the window so cycles before @p now can be forgotten. */
    void advanceTo(ClockCycle now);

    /**
     * Earliest unreserved cycle >= @p from.  Exact: reservations are
     * never cancelled, so between state changes this is the first
     * cycle at which tryReserve(@p from-or-later) can succeed.
     */
    ClockCycle nextFreeSlot(ClockCycle from) const;

    /** Shift the whole window forward (steady-state extrapolation). */
    void shiftTime(ClockCycle delta) { base_ += delta; }

    /** Raw occupancy bits relative to base() (state signatures). */
    std::uint64_t bits() const { return bits_; }
    ClockCycle base() const { return base_; }

    void reset();

  private:
    std::uint64_t maskFor(ClockCycle t) const;

    ClockCycle base_ = 0;
    std::uint64_t bits_ = 0;
};

/** Result-bus interconnect styles from the paper. */
enum class BusKind
{
    kPerUnit,   //!< N-Bus: issue unit i owns bus i
    kSingle,    //!< 1-Bus: one shared bus
    kCrossbar,  //!< X-Bar: any unit may use any free bus
};

/** Short display name: "N-Bus", "1-Bus" or "X-Bar". */
const char *busKindName(BusKind kind);

/**
 * The set of result busses of an N-issue-unit machine.
 */
class ResultBusSet
{
  public:
    ResultBusSet(BusKind kind, unsigned numUnits);

    /**
     * Can the instruction issued by unit @p unit deliver a result at
     * cycle @p completion?
     */
    bool canReserve(unsigned unit, ClockCycle completion) const;

    /** Commit the reservation; canReserve() must hold. */
    void reserve(unsigned unit, ClockCycle completion);

    /**
     * Earliest cycle >= @p completion at which unit @p unit could
     * deliver a result (the exact next-event time of a bus-conflict
     * stall: nothing changes before it while no new reservations are
     * made).
     */
    ClockCycle earliestReserve(unsigned unit,
                               ClockCycle completion) const;

    /** Slide all bus windows forward to @p now. */
    void advanceTo(ClockCycle now);

    /** Shift all windows forward (steady-state extrapolation). */
    void shiftTime(ClockCycle delta);

    /**
     * Append the busses' live state to @p out, rebased to @p base:
     * slides the windows to @p base (reservations strictly before it
     * can never conflict again) and records each occupancy word.
     */
    void appendSignature(ClockCycle base,
                         std::vector<std::uint64_t> &out);

    void reset();

    BusKind kind() const { return kind_; }
    unsigned numBusses() const { return unsigned(busses_.size()); }

  private:
    BusKind kind_;
    std::vector<CycleReservations> busses_;
};

} // namespace mfusim

#endif // MFUSIM_FUNITS_RESULT_BUS_HH
