/**
 * @file
 * Cached dynamic traces of the 14 Livermore loops.
 *
 * Trace generation (assemble + interpret + validate) costs far more
 * than a timing simulation, and every experiment sweeps the same 14
 * traces over dozens of machine configurations, so traces are built
 * once per process and shared.
 */

#ifndef MFUSIM_HARNESS_TRACE_LIBRARY_HH
#define MFUSIM_HARNESS_TRACE_LIBRARY_HH

#include <array>
#include <memory>

#include "mfusim/core/trace.hh"

namespace mfusim
{

/**
 * Lazily built, process-wide cache of the benchmark traces.
 */
class TraceLibrary
{
  public:
    /** The process-wide instance. */
    static TraceLibrary &instance();

    /**
     * The validated dynamic trace of Livermore loop @p loopId
     * (1..14).  Built (and checked against the C++ reference
     * kernels) on first use; throws if validation fails.
     */
    const DynTrace &trace(int loopId);

  private:
    TraceLibrary() = default;
    std::array<std::unique_ptr<DynTrace>, 15> traces_;
};

} // namespace mfusim

#endif // MFUSIM_HARNESS_TRACE_LIBRARY_HH
