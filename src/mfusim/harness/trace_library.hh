/**
 * @file
 * Cached dynamic traces of the 14 Livermore loops.
 *
 * Trace generation (assemble + interpret + validate) costs far more
 * than a timing simulation, and every experiment sweeps the same 14
 * traces over dozens of machine configurations, so traces are built
 * once per process and shared.  The same goes one level down: a
 * DecodedTrace of a (loop, machine configuration) pair is built once
 * and reused by every simulator timing that pair.
 *
 * Both caches are thread safe, so parallel sweep workers (sweep.hh)
 * can share the library without external locking.
 */

#ifndef MFUSIM_HARNESS_TRACE_LIBRARY_HH
#define MFUSIM_HARNESS_TRACE_LIBRARY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/**
 * Lazily built, process-wide cache of the benchmark traces.
 */
class TraceLibrary
{
  public:
    /** The process-wide instance. */
    static TraceLibrary &instance();

    /**
     * The validated dynamic trace of Livermore loop @p loopId
     * (1..14).  Built (and checked against the C++ reference
     * kernels) on first use; throws if validation fails.  Safe to
     * call from multiple threads: exactly one builds the trace,
     * the rest wait.
     */
    const DynTrace &trace(int loopId);

    /**
     * The pre-decoded trace of loop @p loopId under @p cfg.  Decoded
     * on first use per (loop, configuration) pair and cached for the
     * life of the process; thread safe.
     */
    const DecodedTrace &decoded(int loopId, const MachineConfig &cfg);

  private:
    TraceLibrary() = default;

    std::array<std::unique_ptr<DynTrace>, 15> traces_;
    std::array<std::once_flag, 15> traceOnce_;

    // The decoded cache is sharded per loop: parallel sweep workers
    // overwhelmingly ask for different loops at once (the sweep
    // runner fans out one loop per task), so one mutex per loop
    // removes the single global lock from the sweep hot path.  The
    // per-shard key folds the configuration fields that decoding
    // depends on into one integer.
    struct DecodedShard
    {
        std::mutex mutex;
        std::unordered_map<std::uint64_t,
                           std::unique_ptr<DecodedTrace>>
            cache;
    };
    std::array<DecodedShard, 15> decodedShards_;
};

} // namespace mfusim

#endif // MFUSIM_HARNESS_TRACE_LIBRARY_HH
