/**
 * @file
 * Experiment runner: loop classes x machine configurations ->
 * harmonic-mean issue rates, in the paper's reporting conventions.
 */

#ifndef MFUSIM_HARNESS_EXPERIMENT_HH
#define MFUSIM_HARNESS_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <vector>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/** Builds a simulator for a given machine configuration. */
using SimFactory =
    std::function<std::unique_ptr<Simulator>(const MachineConfig &)>;

/** The paper's two loop classes. */
enum class LoopClass { kScalar, kVectorizable };

/** Loop ids of a class ({5,6,11,13,14} or {1,2,3,4,7,8,9,10,12}). */
const std::vector<int> &loopsOf(LoopClass cls);

/** "Scalar" / "Vectorizable". */
const char *loopClassName(LoopClass cls);

/** Per-loop issue rates of @p factory's machine over @p loops. */
std::vector<double> perLoopRates(const SimFactory &factory,
                                 const std::vector<int> &loops,
                                 const MachineConfig &cfg);

/**
 * The paper's reported number: the harmonic mean of the per-loop
 * issue rates of one loop class on one machine.
 */
double meanIssueRate(const SimFactory &factory, LoopClass cls,
                     const MachineConfig &cfg);

/**
 * meanIssueRate across the four standard configurations, in table
 * order (M11BR5, M11BR2, M5BR5, M5BR2).
 */
std::vector<double> meanIssueRateAllConfigs(const SimFactory &factory,
                                            LoopClass cls);

} // namespace mfusim

#endif // MFUSIM_HARNESS_EXPERIMENT_HH
