/**
 * @file
 * Spec string parsing shared by the CLI and the serve daemon.
 */

#include "mfusim/harness/spec_parse.hh"

#include <sstream>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

namespace mfusim
{

MachineConfig
parseConfigSpec(const std::string &name)
{
    for (const MachineConfig &cfg : standardConfigs()) {
        if (cfg.name() == name)
            return cfg;
    }
    throw ConfigError("unknown config '" + name + "'");
}

Kernel
parseKernelSpec(const std::string &spec)
{
    try {
        if (!spec.empty() && spec.back() == 'v') {
            return buildVectorizedKernel(
                std::stoi(spec.substr(0, spec.size() - 1)));
        }
        const auto x = spec.find('x');
        if (x == std::string::npos)
            return buildKernel(std::stoi(spec));
        return buildUnrolledKernel(std::stoi(spec.substr(0, x)),
                                   std::stoi(spec.substr(x + 1)));
    } catch (const Error &) {
        throw;
    } catch (const std::exception &e) {
        throw ConfigError("bad loop '" + spec + "': " + e.what());
    }
}

DynTrace
traceForLoopSpec(const std::string &spec)
{
    const Kernel kernel = parseKernelSpec(spec);
    KernelRun run = runKernel(kernel, "LL" + spec);
    if (run.mismatches != 0) {
        throw Error("loop " + spec + " failed reference validation (" +
                    std::to_string(run.mismatches) + "/" +
                    std::to_string(run.checkedCells) + " cells)");
    }
    return std::move(run.trace);
}

std::unique_ptr<Simulator>
parseMachineSpec(const std::string &spec, const MachineConfig &cfg)
{
    // Split "name,opt,opt" on commas.
    std::vector<std::string> parts;
    std::stringstream in(spec);
    std::string part;
    while (std::getline(in, part, ','))
        parts.push_back(part);
    if (parts.empty())
        throw ConfigError("empty machine spec");

    BusKind bus = BusKind::kPerUnit;
    BranchPolicy policy = BranchPolicy::kBlocking;
    // ",pred=<spec>" arms a branch predictor on this machine's copy
    // of the config (MultiIssue / RUU only; others reject it).
    MachineConfig machineCfg = cfg;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "1bus")
            bus = BusKind::kSingle;
        else if (parts[i] == "xbar")
            bus = BusKind::kCrossbar;
        else if (parts[i] == "btfn")
            policy = BranchPolicy::kBtfn;
        else if (parts[i] == "oracle")
            policy = BranchPolicy::kOracle;
        else if (parts[i].rfind("pred=", 0) == 0) {
            machineCfg.predictor =
                PredictorSpec::parse(parts[i].substr(5));
            machineCfg.predictor.validate();
        } else
            throw ConfigError("unknown machine option '" + parts[i] +
                              "'");
    }

    // Split the machine name on colons: name[:w[:size]].
    std::vector<std::string> fields;
    std::stringstream name_in(parts[0]);
    while (std::getline(name_in, part, ':'))
        fields.push_back(part);
    if (fields.empty())
        throw ConfigError("empty machine spec");

    const auto arg = [&](std::size_t i) -> unsigned {
        if (i >= fields.size())
            throw ConfigError("machine spec '" + spec +
                              "' needs more fields");
        try {
            std::size_t used = 0;
            const unsigned long value = std::stoul(fields[i], &used);
            if (used != fields[i].size())
                throw std::invalid_argument(fields[i]);
            return unsigned(value);
        } catch (const std::exception &) {
            throw ConfigError("bad numeric field '" + fields[i] +
                              "' in machine spec '" + spec + "'");
        }
    };

    if (fields[0] == "simple")
        return std::make_unique<SimpleSim>(machineCfg);
    if (fields[0] == "serialmem" || fields[0] == "nonseg" ||
        fields[0] == "cray") {
        ScoreboardConfig org =
            fields[0] == "serialmem" ?
                ScoreboardConfig::serialMemory() :
                fields[0] == "nonseg" ?
                    ScoreboardConfig::nonSegmented() :
                    ScoreboardConfig::crayLike();
        org.branchPolicy = policy;
        return std::make_unique<ScoreboardSim>(org, machineCfg);
    }
    if (fields[0] == "seq" || fields[0] == "ooo") {
        MultiIssueConfig org{ arg(1), fields[0] == "ooo", bus, false,
                              policy };
        return std::make_unique<MultiIssueSim>(org, machineCfg);
    }
    if (fields[0] == "ruu") {
        RuuConfig org{ arg(1), arg(2), bus, policy };
        return std::make_unique<RuuSim>(org, machineCfg);
    }
    if (fields[0] == "cdc") {
        Cdc6600Config org;
        // ",xbar" lifts the single-result-bus completion model.
        org.modelResultBus = bus != BusKind::kCrossbar;
        org.branchPolicy = policy;
        return std::make_unique<Cdc6600Sim>(org, machineCfg);
    }
    if (fields[0] == "tomasulo") {
        TomasuloConfig org;
        if (fields.size() > 1)
            org.stationsPerFu = arg(1);
        if (fields.size() > 2)
            org.cdbCount = arg(2);
        org.branchPolicy = policy;
        return std::make_unique<TomasuloSim>(org, machineCfg);
    }
    throw ConfigError("unknown machine '" + parts[0] + "'");
}

} // namespace mfusim
