/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Every paper table is a grid of independent cells: (simulator
 * organization) x (machine configuration) x (loop).  Each cell is a
 * pure function of its inputs, so the grid can be evaluated by a
 * worker pool in any order — provided the *output* is assembled in
 * index order, the printed tables are bit-identical to a serial run.
 *
 * runGrid() is that primitive: it runs `body(i)` for every cell
 * index i on a pool of threads, with each body writing its result
 * into its own pre-sized slot.  Determinism is by construction: no
 * cell reads another cell's output, and the caller prints the slots
 * serially afterwards.
 *
 * The worker count defaults to the MFUSIM_JOBS environment variable,
 * falling back to the hardware concurrency; `mfusim --jobs N` and
 * tests override it per process with setDefaultSweepJobs().
 */

#ifndef MFUSIM_HARNESS_SWEEP_HH
#define MFUSIM_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "mfusim/harness/experiment.hh"
#include "mfusim/obs/metrics.hh"

namespace mfusim
{

/**
 * The worker count runGrid() uses when none is given: the last
 * setDefaultSweepJobs() value, else the MFUSIM_JOBS environment
 * variable, else std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultSweepJobs();

/** Override the process-wide default worker count (0 = reset). */
void setDefaultSweepJobs(unsigned jobs);

/** What runGrid() does with the cells left after a body throws. */
enum class GridFailurePolicy
{
    /**
     * Keep evaluating every remaining cell; all failures are
     * aggregated.  The default: an overnight 500-cell sweep reports
     * every bad cell, not just whichever one a worker hit first.
     */
    kContinue,
    /** Drain the remaining cells as soon as any body throws. */
    kStopOnFailure,
};

/**
 * Evaluate @p body(i) for every i in [0, cells) on a pool of
 * @p jobs worker threads (0 = defaultSweepJobs()).
 *
 * Work is handed out by an atomic counter, so the *execution* order
 * is nondeterministic; callers must make each body write only to its
 * own index's result slot, which makes the *results* deterministic.
 * With one job (or one cell, or when called from inside a runGrid
 * worker) the bodies run inline on the calling thread.
 *
 * Failure handling: exceptions thrown by bodies are collected — every
 * one of them under GridFailurePolicy::kContinue, the ones already
 * caught when the grid drains under kStopOnFailure — and rethrown on
 * the calling thread as one SweepError listing each failed cell index
 * with its message, sorted by cell.
 *
 * Shutdown: once shutdownRequested() (core/shutdown.hh) is set, no
 * further cells are started; in-flight cells complete.  Callers that
 * installed the handler check the flag afterwards and flush partial
 * results.  Without the handler installed the flag never fires and
 * behaviour is unchanged.
 *
 * @throws SweepError (a std::runtime_error) if any body threw.
 */
void runGrid(std::size_t cells,
             const std::function<void(std::size_t)> &body,
             unsigned jobs = 0,
             GridFailurePolicy policy = GridFailurePolicy::kContinue);

/**
 * Parallel perLoopRates(): one grid cell per loop, each timing the
 * library's cached pre-decoded trace of (loop, cfg) on a fresh
 * simulator from @p factory.  Results are in @p loops order,
 * bit-identical to the serial loop.
 *
 * Cells whose simulator exposes a cacheKey() identity are memoized
 * in the process-wide ResultCache (serve/result_cache.hh): a
 * repeated (machine, loop, config, audit) cell within one process is
 * served from the cache without re-simulating.
 *
 * When auditRequested() is set (MFUSIM_AUDIT=1 or --audit), every
 * cell runs under a SimAudit legality check via runAudited(); rates
 * are unchanged, but an invariant violation fails the cell with an
 * AuditError.
 *
 * @throws SweepError naming each failed loop as
 *         "loop <id> (<config>): <message>"; all cells are always
 *         attempted.
 */
std::vector<double> parallelPerLoopRates(const SimFactory &factory,
                                         const std::vector<int> &loops,
                                         const MachineConfig &cfg,
                                         unsigned jobs = 0);

/**
 * Batched parallelPerLoopRates(): many machine variants swept over
 * the same loops and config in one call.  One grid cell per loop;
 * within a cell the variants that miss the ResultCache advance over
 * the loop's decoded trace together through the batched lockstep
 * kernel (sim/batched.hh) — one trace pass, many configs — and every
 * computed cell is stored back, so one simulate fills many cache
 * entries.  Lanes the kernel does not cover (out-of-order issue,
 * RUU, audited cells) fall back to the scalar path inside the same
 * call; results are bit-identical to per-variant
 * parallelPerLoopRates() either way.
 *
 * Returns rates[variant][loop index].  Audit and failure reporting
 * as in parallelPerLoopRates(); a failing variant fails its whole
 * loop cell.
 */
std::vector<std::vector<double>>
batchedPerLoopRates(const std::vector<SimFactory> &variants,
                    const std::vector<int> &loops,
                    const MachineConfig &cfg, unsigned jobs = 0);

/** Result of an instrumented sweep: rates plus merged metrics. */
struct SweepMetrics
{
    /** Issue rate per loop, in @p loops order. */
    std::vector<double> rates;
    /**
     * All per-cell registries merged in loop order: counters and
     * histograms aggregate across the sweep, per-loop rates appear
     * as "rate.LL<id>" gauges.  Deterministic for a given loop list
     * regardless of the worker count.
     */
    MetricsRegistry metrics;
};

/**
 * parallelPerLoopRates() with full observability: every cell runs
 * with a PipeTraceRecorder attached (which disables the steady-state
 * fast path, so cell metrics are cycle-exact) and populates its own
 * MetricsRegistry via populateRunMetrics(); the per-cell registries
 * are merged serially in @p loops order.
 */
SweepMetrics parallelPerLoopMetrics(const SimFactory &factory,
                                    const std::vector<int> &loops,
                                    const MachineConfig &cfg,
                                    unsigned jobs = 0);

} // namespace mfusim

#endif // MFUSIM_HARNESS_SWEEP_HH
