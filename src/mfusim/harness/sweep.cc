/**
 * @file
 * Parallel sweep runner implementation.
 */

#include "mfusim/harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "mfusim/core/error.hh"
#include "mfusim/core/shutdown.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/obs/pipe_trace.hh"
#include "mfusim/obs/run_metrics.hh"
#include "mfusim/serve/result_cache.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

namespace
{

std::atomic<unsigned> g_jobs_override{ 0 };

// True on threads that are themselves runGrid workers: a body that
// calls back into runGrid (a table driver invoking a parallel
// helper) runs the nested grid inline instead of spawning a second
// pool.
thread_local bool t_in_worker = false;

unsigned
jobsFromEnvironment()
{
    if (const char *env = std::getenv("MFUSIM_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return unsigned(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

unsigned
defaultSweepJobs()
{
    const unsigned jobs = g_jobs_override.load();
    return jobs > 0 ? jobs : jobsFromEnvironment();
}

void
setDefaultSweepJobs(unsigned jobs)
{
    g_jobs_override.store(jobs);
}

namespace
{

std::string
describeCurrentException()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

} // namespace

void
runGrid(std::size_t cells,
        const std::function<void(std::size_t)> &body, unsigned jobs,
        GridFailurePolicy policy)
{
    if (cells == 0)
        return;
    if (jobs == 0)
        jobs = defaultSweepJobs();
    if (jobs > cells)
        jobs = unsigned(cells);

    std::vector<SweepError::Failure> failures;
    std::mutex failures_mutex;

    if (jobs <= 1 || t_in_worker) {
        for (std::size_t i = 0; i < cells; ++i) {
            // Cooperative shutdown (core/shutdown.hh): stop handing
            // out cells after SIGINT/SIGTERM so the caller can flush
            // partial output.  Inert unless the entry point installed
            // the handler.
            if (shutdownRequested())
                break;
            try {
                body(i);
            } catch (...) {
                failures.push_back(
                    SweepError::Failure{ i,
                                         describeCurrentException() });
                if (policy == GridFailurePolicy::kStopOnFailure)
                    break;
            }
        }
        if (!failures.empty())
            throw SweepError(std::move(failures), cells);
        return;
    }

    std::atomic<std::size_t> next{ 0 };

    const auto work = [&] {
        t_in_worker = true;
        for (;;) {
            if (shutdownRequested())
                break;
            const std::size_t i = next.fetch_add(1);
            if (i >= cells)
                break;
            try {
                body(i);
            } catch (...) {
                const std::string what = describeCurrentException();
                std::lock_guard<std::mutex> lock(failures_mutex);
                failures.push_back(SweepError::Failure{ i, what });
                if (policy == GridFailurePolicy::kStopOnFailure) {
                    // Drain the remaining cells so all workers stop
                    // promptly.
                    next.store(cells);
                    break;
                }
            }
        }
        t_in_worker = false;
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (unsigned w = 1; w < jobs; ++w)
        pool.emplace_back(work);
    work();     // the calling thread is worker 0
    for (std::thread &thread : pool)
        thread.join();

    if (!failures.empty()) {
        // Workers finish in nondeterministic order; sort so the
        // report (and tests) are stable.
        std::sort(failures.begin(), failures.end(),
                  [](const SweepError::Failure &a,
                     const SweepError::Failure &b) {
                      return a.cell < b.cell;
                  });
        throw SweepError(std::move(failures), cells);
    }
}

std::vector<double>
parallelPerLoopRates(const SimFactory &factory,
                     const std::vector<int> &loops,
                     const MachineConfig &cfg, unsigned jobs)
{
    // The single-variant sweep is a one-lane batch per loop, which
    // runBatch() routes to the plain scalar path.
    return batchedPerLoopRates({ factory }, loops, cfg, jobs)
        .front();
}

std::vector<std::vector<double>>
batchedPerLoopRates(const std::vector<SimFactory> &variants,
                    const std::vector<int> &loops,
                    const MachineConfig &cfg, unsigned jobs)
{
    std::vector<std::vector<double>> rates(
        variants.size(), std::vector<double>(loops.size()));
    const bool audit = auditRequested();
    try {
        runGrid(loops.size(), [&](std::size_t i) {
            const DecodedTrace &trace =
                TraceLibrary::instance().decoded(loops[i], cfg);
            const std::string traceKey =
                "LL" + std::to_string(loops[i]);
            ResultCache &cache = ResultCache::instance();

            // Cells whose simulator states a complete cache identity
            // are memoized process-wide (serve/result_cache.hh):
            // re-sweeping the same (machine, loop, config) cell — a
            // table bench revisiting a column, `rate all` re-run by
            // the serve daemon — skips the simulation entirely.
            // The remaining variants advance over the trace together
            // in one lockstep pass, then every computed cell is
            // stored back (one simulate, many cache fills).
            std::vector<std::unique_ptr<Simulator>> sims(
                variants.size());
            std::vector<std::string> keys(variants.size());
            std::vector<std::size_t> missed;
            for (std::size_t v = 0; v < variants.size(); ++v) {
                sims[v] = variants[v](cfg);
                keys[v] = sims[v]->cacheKey();
                SimResult cached;
                if (!keys[v].empty() &&
                    cache.probe(keys[v], traceKey, cfg, audit,
                                &cached)) {
                    rates[v][i] = cached.issueRate();
                    continue;
                }
                missed.push_back(v);
            }
            if (audit) {
                // Audited cells need the complete per-op event
                // stream: scalar path, as before.
                for (const std::size_t v : missed) {
                    const SimResult result =
                        runAudited(*sims[v], trace);
                    if (!keys[v].empty())
                        cache.store(keys[v], traceKey, cfg, audit,
                                    result);
                    rates[v][i] = result.issueRate();
                }
                return;
            }
            std::vector<BatchLane> lanes;
            lanes.reserve(missed.size());
            for (const std::size_t v : missed)
                lanes.push_back({ sims[v].get(), &trace });
            const BatchOutcome out = runBatch(lanes);
            for (std::size_t m = 0; m < missed.size(); ++m) {
                const std::size_t v = missed[m];
                if (!keys[v].empty())
                    cache.store(keys[v], traceKey, cfg, audit,
                                out.results[m]);
                rates[v][i] = out.results[m].issueRate();
            }
        }, jobs, GridFailurePolicy::kContinue);
    } catch (const SweepError &e) {
        // Re-key the cell indices as loop ids so the report reads in
        // the caller's terms.
        std::vector<SweepError::Failure> failures;
        failures.reserve(e.failures().size());
        for (const SweepError::Failure &f : e.failures()) {
            failures.push_back(SweepError::Failure{
                f.cell,
                "loop " + std::to_string(loops[f.cell]) + " (" +
                    cfg.name() + "): " + f.message });
        }
        throw SweepError(std::move(failures), loops.size());
    }
    return rates;
}

SweepMetrics
parallelPerLoopMetrics(const SimFactory &factory,
                       const std::vector<int> &loops,
                       const MachineConfig &cfg, unsigned jobs)
{
    SweepMetrics out;
    out.rates.resize(loops.size());
    std::vector<MetricsRegistry> cells(loops.size());
    // One flag per cell, set as the body's last step: after an
    // interrupted sweep (core/shutdown.hh) the merge below can count
    // how many cells actually completed.
    std::vector<char> done(loops.size(), 0);
    try {
        runGrid(loops.size(), [&](std::size_t i) {
            const DecodedTrace &trace =
                TraceLibrary::instance().decoded(loops[i], cfg);
            auto sim = factory(cfg);
            PipeTraceRecorder recorder;
            sim->attachAudit(&recorder);
            const SimResult result = sim->run(trace);
            sim->attachAudit(nullptr);
            out.rates[i] = result.issueRate();
            populateRunMetrics(cells[i], trace, recorder, result,
                               *sim);
            cells[i]
                .gauge("rate.LL" + std::to_string(loops[i]))
                .set(result.issueRate());
            done[i] = 1;
        }, jobs, GridFailurePolicy::kContinue);
    } catch (const SweepError &e) {
        std::vector<SweepError::Failure> failures;
        failures.reserve(e.failures().size());
        for (const SweepError::Failure &f : e.failures()) {
            failures.push_back(SweepError::Failure{
                f.cell,
                "loop " + std::to_string(loops[f.cell]) + " (" +
                    cfg.name() + "): " + f.message });
        }
        throw SweepError(std::move(failures), loops.size());
    }
    // Serial index-order merge: deterministic regardless of the
    // worker schedule.
    out.metrics.setLabel("config", cfg.name());
    std::size_t completed = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (done[i])
            ++completed;
        out.metrics.merge(cells[i]);
    }
    out.metrics.gauge("sweep.cells_total")
        .set(double(loops.size()));
    out.metrics.gauge("sweep.cells_completed").set(double(completed));
    if (shutdownRequested())
        out.metrics.setLabel("interrupted",
                             shutdownSignal() == SIGTERM ? "SIGTERM"
                                                         : "SIGINT");
    ResultCache::instance().appendMetrics(out.metrics);
    return out;
}

} // namespace mfusim
