/**
 * @file
 * Parallel sweep runner implementation.
 */

#include "mfusim/harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "mfusim/harness/trace_library.hh"

namespace mfusim
{

namespace
{

std::atomic<unsigned> g_jobs_override{ 0 };

// True on threads that are themselves runGrid workers: a body that
// calls back into runGrid (a table driver invoking a parallel
// helper) runs the nested grid inline instead of spawning a second
// pool.
thread_local bool t_in_worker = false;

unsigned
jobsFromEnvironment()
{
    if (const char *env = std::getenv("MFUSIM_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return unsigned(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

unsigned
defaultSweepJobs()
{
    const unsigned jobs = g_jobs_override.load();
    return jobs > 0 ? jobs : jobsFromEnvironment();
}

void
setDefaultSweepJobs(unsigned jobs)
{
    g_jobs_override.store(jobs);
}

void
runGrid(std::size_t cells,
        const std::function<void(std::size_t)> &body, unsigned jobs)
{
    if (cells == 0)
        return;
    if (jobs == 0)
        jobs = defaultSweepJobs();
    if (jobs > cells)
        jobs = unsigned(cells);

    if (jobs <= 1 || t_in_worker) {
        for (std::size_t i = 0; i < cells; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{ 0 };
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto work = [&] {
        t_in_worker = true;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cells)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Drain the remaining cells so all workers stop
                // promptly; the first error is what the caller sees.
                next.store(cells);
                break;
            }
        }
        t_in_worker = false;
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (unsigned w = 1; w < jobs; ++w)
        pool.emplace_back(work);
    work();     // the calling thread is worker 0
    for (std::thread &thread : pool)
        thread.join();

    if (error)
        std::rethrow_exception(error);
}

std::vector<double>
parallelPerLoopRates(const SimFactory &factory,
                     const std::vector<int> &loops,
                     const MachineConfig &cfg, unsigned jobs)
{
    std::vector<double> rates(loops.size());
    runGrid(loops.size(), [&](std::size_t i) {
        const DecodedTrace &trace =
            TraceLibrary::instance().decoded(loops[i], cfg);
        auto sim = factory(cfg);
        rates[i] = sim->run(trace).issueRate();
    }, jobs);
    return rates;
}

} // namespace mfusim
