/**
 * @file
 * The paper's published numbers (Tables 1-8), embedded for
 * side-by-side comparison in the bench binaries and for
 * shape-checking in tests.
 *
 * Values are transcribed from Pleszkun & Sohi, UW-Madison CS TR
 * #752, February 1988.  A few cells of Table 4/5/6 (row 8 of some
 * columns) and of Table 8's M11BR5 block are illegible in the
 * available scan; those cells are reconstructed by monotone
 * continuation of the adjacent rows and are flagged in
 * paper_data.cc.
 *
 * Configuration index convention everywhere: 0 = M11BR5,
 * 1 = M11BR2, 2 = M5BR5, 3 = M5BR2 (the order of
 * standardConfigs()).
 */

#ifndef MFUSIM_HARNESS_PAPER_DATA_HH
#define MFUSIM_HARNESS_PAPER_DATA_HH

#include <array>

#include "mfusim/harness/experiment.hh"

namespace mfusim
{
namespace paper
{

/** Machine row index for table1(). */
enum Table1Machine
{
    kSimple = 0,
    kSerialMemory = 1,
    kNonSegmented = 2,
    kCrayLike = 3,
};

/** Table 1: single-issue machine issue rates. */
double table1(LoopClass cls, int machine, int cfg);

/** One row of Table 2. */
struct Table2Row
{
    double pseudo;
    double resource;
    double actual;
};

/** Table 2: dataflow limits ("Pure" when !serial, else "Serial"). */
Table2Row table2(bool serial, LoopClass cls, int cfg);

/** Tables 3/4: sequential multi-issue; stations in 1..8. */
double table3_4(LoopClass cls, int cfg, int stations, bool oneBus);

/** Tables 5/6: out-of-order multi-issue; stations in 1..8. */
double table5_6(LoopClass cls, int cfg, int stations, bool oneBus);

/** RUU sizes used by Tables 7/8: {10, 20, 30, 40, 50, 100}. */
const std::array<int, 6> &ruuSizes();

/**
 * Tables 7/8: RUU machines; sizeIdx indexes ruuSizes(), units in
 * 1..4.
 */
double table7_8(LoopClass cls, int cfg, int sizeIdx, int units,
                bool oneBus);

} // namespace paper
} // namespace mfusim

#endif // MFUSIM_HARNESS_PAPER_DATA_HH
