/**
 * @file
 * Experiment runner implementation.
 */

#include "mfusim/harness/experiment.hh"

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"

namespace mfusim
{

const std::vector<int> &
loopsOf(LoopClass cls)
{
    return cls == LoopClass::kScalar ? scalarLoopIds()
                                     : vectorizableLoopIds();
}

const char *
loopClassName(LoopClass cls)
{
    return cls == LoopClass::kScalar ? "Scalar" : "Vectorizable";
}

std::vector<double>
perLoopRates(const SimFactory &factory, const std::vector<int> &loops,
             const MachineConfig &cfg)
{
    // The parallel runner with the library's decoded cache is also
    // the best serial path (decode once per (loop, cfg), reuse
    // across every organization swept over it).
    return parallelPerLoopRates(factory, loops, cfg);
}

double
meanIssueRate(const SimFactory &factory, LoopClass cls,
              const MachineConfig &cfg)
{
    const std::vector<double> rates =
        perLoopRates(factory, loopsOf(cls), cfg);
    return harmonicMean(rates);
}

std::vector<double>
meanIssueRateAllConfigs(const SimFactory &factory, LoopClass cls)
{
    std::vector<double> means;
    for (const MachineConfig &cfg : standardConfigs())
        means.push_back(meanIssueRate(factory, cls, cfg));
    return means;
}

} // namespace mfusim
