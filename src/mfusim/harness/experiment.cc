/**
 * @file
 * Experiment runner implementation.
 */

#include "mfusim/harness/experiment.hh"

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/harness/trace_library.hh"

namespace mfusim
{

const std::vector<int> &
loopsOf(LoopClass cls)
{
    return cls == LoopClass::kScalar ? scalarLoopIds()
                                     : vectorizableLoopIds();
}

const char *
loopClassName(LoopClass cls)
{
    return cls == LoopClass::kScalar ? "Scalar" : "Vectorizable";
}

std::vector<double>
perLoopRates(const SimFactory &factory, const std::vector<int> &loops,
             const MachineConfig &cfg)
{
    std::vector<double> rates;
    rates.reserve(loops.size());
    for (int loop : loops) {
        const DynTrace &trace = TraceLibrary::instance().trace(loop);
        auto sim = factory(cfg);
        rates.push_back(sim->run(trace).issueRate());
    }
    return rates;
}

double
meanIssueRate(const SimFactory &factory, LoopClass cls,
              const MachineConfig &cfg)
{
    const std::vector<double> rates =
        perLoopRates(factory, loopsOf(cls), cfg);
    return harmonicMean(rates);
}

std::vector<double>
meanIssueRateAllConfigs(const SimFactory &factory, LoopClass cls)
{
    std::vector<double> means;
    for (const MachineConfig &cfg : standardConfigs())
        means.push_back(meanIssueRate(factory, cls, cfg));
    return means;
}

} // namespace mfusim
