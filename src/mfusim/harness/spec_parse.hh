/**
 * @file
 * Textual spec parsing shared by the CLI and the serve daemon.
 *
 * The grammar is the CLI's:
 *
 *   config   M11BR5 | M11BR2 | M5BR5 | M5BR2
 *   loop     <id> | <id>x<factor> | <id>v        (e.g. 5, 1x4, 7v)
 *   machine  simple | serialmem | nonseg | cray | cdc |
 *            tomasulo[:<rs>[:<cdb>]] | seq:<w> | ooo:<w> |
 *            ruu:<w>:<size>
 *            with optional ",1bus" / ",xbar" and ",btfn" / ",oracle"
 *            suffixes, e.g. "ruu:4:50,1bus,oracle"
 *
 * Unlike the original CLI helpers these functions never exit the
 * process — bad input throws ConfigError, so a long-lived daemon can
 * map it to a 400 and keep serving.  The CLI wraps them to keep its
 * historical exit codes.
 */

#ifndef MFUSIM_HARNESS_SPEC_PARSE_HH
#define MFUSIM_HARNESS_SPEC_PARSE_HH

#include <memory>
#include <string>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/sim/simulator.hh"

namespace mfusim
{

/**
 * Named standard configuration.
 * @throws ConfigError on an unknown name.
 */
MachineConfig parseConfigSpec(const std::string &name);

/**
 * "5" -> canonical loop 5; "1x4" -> loop 1 unrolled by 4; "7v" ->
 * loop 7 compiled for the vector unit.
 * @throws ConfigError on unparseable input or an unknown loop.
 */
Kernel parseKernelSpec(const std::string &spec);

/**
 * Build the loop's kernel, execute it against the reference model
 * and return its validated dynamic trace.
 * @throws ConfigError on a bad spec; Error if the kernel's results
 *         disagree with the reference model.
 */
DynTrace traceForLoopSpec(const std::string &spec);

/**
 * Instantiate a simulator from a machine spec string.
 * @throws ConfigError on an unknown machine / option / malformed
 *         numeric field.
 */
std::unique_ptr<Simulator> parseMachineSpec(const std::string &spec,
                                            const MachineConfig &cfg);

} // namespace mfusim

#endif // MFUSIM_HARNESS_SPEC_PARSE_HH
