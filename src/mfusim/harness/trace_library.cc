/**
 * @file
 * Trace cache implementation.
 */

#include "mfusim/harness/trace_library.hh"

#include <stdexcept>

#include "mfusim/codegen/livermore.hh"

namespace mfusim
{

namespace
{

void
checkLoopId(int loopId)
{
    if (loopId < 1 || loopId > 14) {
        throw std::invalid_argument(
            "TraceLibrary: loop id must be 1..14");
    }
}

} // namespace

TraceLibrary &
TraceLibrary::instance()
{
    static TraceLibrary library;
    return library;
}

const DynTrace &
TraceLibrary::trace(int loopId)
{
    checkLoopId(loopId);
    auto &slot = traces_[std::size_t(loopId)];
    // call_once rather than double-checked locking: concurrent first
    // uses of the same loop build it exactly once, and a build that
    // throws (validation failure) leaves the flag unset so the next
    // caller retries and sees the same exception.
    std::call_once(traceOnce_[std::size_t(loopId)], [&] {
        slot = std::make_unique<DynTrace>(traceKernel(loopId));
    });
    return *slot;
}

const DecodedTrace &
TraceLibrary::decoded(int loopId, const MachineConfig &cfg)
{
    checkLoopId(loopId);
    DecodedShard &shard = decodedShards_[std::size_t(loopId)];
    const std::uint64_t key =
        (std::uint64_t(cfg.memLatency) << 32) | cfg.branchTime;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.cache.find(key);
        if (it != shard.cache.end())
            return *it->second;
    }
    // Build outside the lock (decoding may itself trigger a trace
    // build, and other configurations of the same loop should not
    // serialize behind it); a racing duplicate build loses and is
    // discarded.
    auto built = std::make_unique<DecodedTrace>(trace(loopId), cfg);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.cache.emplace(key, std::move(built));
    return *it->second;
}

} // namespace mfusim
