/**
 * @file
 * Trace cache implementation.
 */

#include "mfusim/harness/trace_library.hh"

#include <stdexcept>

#include "mfusim/codegen/livermore.hh"

namespace mfusim
{

TraceLibrary &
TraceLibrary::instance()
{
    static TraceLibrary library;
    return library;
}

const DynTrace &
TraceLibrary::trace(int loopId)
{
    if (loopId < 1 || loopId > 14) {
        throw std::invalid_argument(
            "TraceLibrary: loop id must be 1..14");
    }
    auto &slot = traces_[std::size_t(loopId)];
    if (!slot)
        slot = std::make_unique<DynTrace>(traceKernel(loopId));
    return *slot;
}

} // namespace mfusim
