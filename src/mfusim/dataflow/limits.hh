/**
 * @file
 * Performance limits: pseudo-dataflow, resource, actual, serial
 * (paper section 4, Table 2).
 *
 * The pseudo-dataflow limit assumes the program is stored as a
 * dataflow graph and every instruction executes the moment its
 * operands exist — unlimited issue width, unlimited buffering, pure
 * value flow (registers renamed away) — except that "different
 * portions of the dynamic program graph, i.e., different loop
 * iterations, cannot start until the appropriate branch conditions
 * have been resolved": every instruction is additionally gated on
 * the resolve time of the most recent preceding branch.
 *
 * The resource limit bounds execution by the busiest functional unit
 * of the *base machine*: a program with c operations on a unit of
 * latency L cannot finish before c + L cycles.
 *
 * The actual limit of a program is the tighter of the two; the
 * paper's class numbers are harmonic means of per-loop actual
 * limits.
 *
 * The serial variant adds the constraint of a machine with no WAW
 * result buffering: instructions that write the same architectural
 * register must *complete* in program order ("forcing it to finish,
 * at best, at the same time").
 */

#ifndef MFUSIM_DATAFLOW_LIMITS_HH
#define MFUSIM_DATAFLOW_LIMITS_HH

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/** The three limits of one trace under one machine configuration. */
struct LimitResult
{
    double pseudoRate = 0.0;    //!< pseudo-dataflow issue-rate limit
    double resourceRate = 0.0;  //!< resource issue-rate limit
    double actualRate = 0.0;    //!< min of the two

    ClockCycle pseudoCycles = 0;
    ClockCycle resourceCycles = 0;
};

/**
 * Compute the limits of @p trace under @p cfg.
 *
 * @param serialWaw  apply the serial (in-order completion per
 *                   architectural register) constraint to the
 *                   critical-path computation.
 * @param fuCopies   copies of each functional unit assumed by the
 *                   resource limit (the paper's base machine: 1)
 * @param memPorts   memory ports assumed by the resource limit
 */
LimitResult computeLimits(const DynTrace &trace,
                          const MachineConfig &cfg,
                          bool serialWaw = false,
                          unsigned fuCopies = 1,
                          unsigned memPorts = 1);

/**
 * Compute the limits of a pre-decoded trace (under the configuration
 * it was decoded for).  The hot path for sweeps: per-op latencies,
 * occupancies and the trace statistics come straight out of the
 * decoded arrays, with no trait lookups.
 */
LimitResult computeLimits(const DecodedTrace &trace,
                          bool serialWaw = false,
                          unsigned fuCopies = 1,
                          unsigned memPorts = 1);

} // namespace mfusim

#endif // MFUSIM_DATAFLOW_LIMITS_HH
