/**
 * @file
 * Trace structure analysis implementation.
 */

#include "mfusim/dataflow/trace_analysis.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

namespace mfusim
{

DependenceStats
dependenceDistances(const DynTrace &trace)
{
    DependenceStats stats;
    std::vector<std::int64_t> last_writer(kNumRegs, -1);
    std::uint64_t distance_sum = 0;

    const auto &ops = trace.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const DynOp &op = ops[i];
        for (const RegId src : { op.srcA, op.srcB }) {
            if (src == kNoReg)
                continue;
            const std::int64_t writer = last_writer[src];
            if (writer < 0)
                continue;
            const std::uint64_t dist = std::uint64_t(
                std::int64_t(i) - writer);
            stats.totalDeps++;
            distance_sum += dist;
            if (dist <= DependenceStats::kBuckets)
                stats.histogram[dist - 1]++;
            else
                stats.longer++;
        }
        if (op.dst != kNoReg)
            last_writer[op.dst] = std::int64_t(i);
    }
    if (stats.totalDeps > 0) {
        stats.meanDistance =
            double(distance_sum) / double(stats.totalDeps);
    }
    return stats;
}

BasicBlockStats
basicBlocks(const DynTrace &trace)
{
    BasicBlockStats stats;
    std::uint64_t current = 0;
    for (const DynOp &op : trace.ops()) {
        ++current;
        if (isBranch(op.op)) {
            stats.blocks++;
            stats.totalOps += current;
            stats.maxLength = std::max(stats.maxLength, current);
            current = 0;
        }
    }
    if (current > 0) {
        stats.blocks++;
        stats.totalOps += current;
        stats.maxLength = std::max(stats.maxLength, current);
    }
    return stats;
}

WidthProfile
widthProfile(const DynTrace &trace, const MachineConfig &cfg)
{
    WidthProfile profile;
    if (trace.empty())
        return profile;

    // The pseudo-dataflow schedule: each op starts at the max of its
    // renamed operand ready times and the last branch resolve time.
    std::vector<ClockCycle> value_ready(kNumRegs, 0);
    ClockCycle ctrl_ready = 0;
    std::map<ClockCycle, std::uint64_t> starts;
    ClockCycle critical = 0;

    for (const DynOp &op : trace.ops()) {
        const unsigned latency = latencyOf(op.op, cfg);
        ClockCycle start = ctrl_ready;
        if (op.srcA != kNoReg)
            start = std::max(start, value_ready[op.srcA]);
        if (op.srcB != kNoReg)
            start = std::max(start, value_ready[op.srcB]);
        starts[start]++;
        const ClockCycle done = start + latency;
        if (isBranch(op.op)) {
            ctrl_ready = start + cfg.branchTime;
            critical = std::max(critical, ctrl_ready);
        } else {
            if (op.dst != kNoReg)
                value_ready[op.dst] = done;
            critical = std::max(critical, done);
        }
    }

    profile.levels = critical;
    profile.meanWidth = critical == 0 ?
        0.0 : double(trace.size()) / double(critical);
    for (const auto &[cycle, count] : starts)
        profile.peakWidth = std::max(profile.peakWidth, count);
    profile.activeFraction = critical == 0 ?
        0.0 : double(starts.size()) / double(critical);
    return profile;
}

BufferDemand
bufferDemand(const DynTrace &trace, const MachineConfig &cfg)
{
    BufferDemand demand;
    if (trace.empty())
        return demand;

    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    // Pseudo-dataflow schedule: start/done per op (renamed values,
    // branch gating), as in computeLimits().
    std::vector<ClockCycle> done(n, 0);
    std::vector<std::size_t> last_writer(kNumRegs, SIZE_MAX);
    // Death time of each producing op's value: max start time of a
    // consumer (at least the production time).
    std::vector<ClockCycle> death(n, 0);
    std::vector<ClockCycle> value_ready(kNumRegs, 0);
    ClockCycle ctrl_ready = 0;
    ClockCycle critical = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const DynOp &op = ops[i];
        ClockCycle start = ctrl_ready;
        for (const RegId src : { op.srcA, op.srcB }) {
            if (src == kNoReg)
                continue;
            start = std::max(start, value_ready[src]);
        }
        const ClockCycle finish =
            start + latencyOf(op.op, cfg);
        for (const RegId src : { op.srcA, op.srcB }) {
            if (src == kNoReg)
                continue;
            const std::size_t producer = last_writer[src];
            if (producer != SIZE_MAX)
                death[producer] = std::max(death[producer], start);
        }
        if (isBranch(op.op)) {
            ctrl_ready = start + cfg.branchTime;
            critical = std::max(critical, ctrl_ready);
        } else {
            if (op.dst != kNoReg) {
                value_ready[op.dst] = finish;
                last_writer[op.dst] = i;
                done[i] = finish;
                death[i] = finish;      // at least until produced
            }
            critical = std::max(critical, finish);
        }
    }

    // Sweep: +1 at each value's production, -1 after its death.
    std::map<ClockCycle, std::int64_t> events;
    std::uint64_t values = 0;
    double live_integral = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (done[i] == 0 && !producesResult(ops[i].op))
            continue;
        if (ops[i].dst == kNoReg)
            continue;
        events[done[i]] += 1;
        events[death[i] + 1] -= 1;
        live_integral += double(death[i] + 1 - done[i]);
        ++values;
    }
    std::int64_t live = 0;
    for (const auto &[cycle, delta] : events) {
        live += delta;
        demand.peakLiveValues =
            std::max(demand.peakLiveValues, std::uint64_t(live));
    }
    demand.meanLiveValues =
        critical == 0 ? 0.0 : live_integral / double(critical);
    (void)values;
    return demand;
}

std::string
analyzeTrace(const DynTrace &trace, const MachineConfig &cfg)
{
    std::ostringstream os;
    const TraceStats stats = trace.stats();
    const DependenceStats deps = dependenceDistances(trace);
    const BasicBlockStats blocks = basicBlocks(trace);
    const WidthProfile width = widthProfile(trace, cfg);

    os << "trace '" << trace.name() << "' (" << trace.size()
       << " ops, " << cfg.name() << ")\n";

    os << "  mix:";
    for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
        if (stats.perFu[fu] == 0)
            continue;
        os << ' ' << fuClassName(static_cast<FuClass>(fu)) << '='
           << (100 * stats.perFu[fu] + stats.totalOps / 2) /
              stats.totalOps
           << '%';
    }
    os << '\n';

    os << "  branches: every "
       << (stats.branches == 0 ?
           0.0 : double(stats.totalOps) / double(stats.branches))
       << " ops, " << 100.0 * stats.btfnAccuracy()
       << "% BTFN-predictable\n";

    os << "  basic blocks: mean " << blocks.meanLength() << " ops, max "
       << blocks.maxLength << '\n';

    os << "  dependences: mean distance " << deps.meanDistance
       << " ops, " << 100.0 * deps.adjacentFraction()
       << "% adjacent\n";

    const BufferDemand demand = bufferDemand(trace, cfg);
    os << "  dataflow width: mean " << width.meanWidth << ", peak "
       << width.peakWidth << ", active cycles "
       << 100.0 * width.activeFraction << "%\n";
    os << "  buffering demand at the dataflow limit: peak "
       << demand.peakLiveValues << " live values (mean "
       << demand.meanLiveValues << ")\n";
    return os.str();
}

} // namespace mfusim
