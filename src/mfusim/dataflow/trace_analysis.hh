/**
 * @file
 * Trace structure analysis: why a trace achieves the issue rate it
 * does.
 *
 * The paper's argument rests on properties of the dynamic
 * instruction stream — "It is rare that 2 consecutive instructions
 * are independent and can issue simultaneously", branch density, the
 * width of the dataflow graph.  This module measures those
 * properties directly so the issue-rate results can be explained,
 * not just reported.
 */

#ifndef MFUSIM_DATAFLOW_TRACE_ANALYSIS_HH
#define MFUSIM_DATAFLOW_TRACE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <string>

#include "mfusim/core/machine_config.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/**
 * Distribution of register dependence distances: for every source
 * operand with an in-trace producer, the number of dynamic
 * instructions between producer and consumer.
 */
struct DependenceStats
{
    /** Bucket for distances 1..15; histogram[0] = distance 1. */
    static constexpr unsigned kBuckets = 15;
    std::array<std::uint64_t, kBuckets> histogram{};
    std::uint64_t longer = 0;       //!< distances >= 16
    std::uint64_t totalDeps = 0;
    double meanDistance = 0.0;

    /**
     * Fraction of dependences with distance 1 — consecutive
     * dependent instructions, the case the paper highlights as the
     * issue-rate killer.
     */
    double
    adjacentFraction() const
    {
        return totalDeps == 0 ?
            0.0 : double(histogram[0]) / double(totalDeps);
    }
};

/** Compute register (RAW) dependence distances over @p trace. */
DependenceStats dependenceDistances(const DynTrace &trace);

/** Dynamic basic-block structure (runs between branches). */
struct BasicBlockStats
{
    std::uint64_t blocks = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t maxLength = 0;

    double
    meanLength() const
    {
        return blocks == 0 ? 0.0 : double(totalOps) / double(blocks);
    }
};

/** Measure dynamic basic blocks of @p trace. */
BasicBlockStats basicBlocks(const DynTrace &trace);

/**
 * Width profile of the branch-gated dataflow graph: how many
 * instructions become executable at each dataflow level (the same
 * schedule the pseudo-dataflow limit uses).
 */
struct WidthProfile
{
    std::uint64_t levels = 0;       //!< critical path length (cycles)
    double meanWidth = 0.0;         //!< ops / levels
    std::uint64_t peakWidth = 0;    //!< max ops starting in one cycle
    /** Fraction of cycles in which at least one op starts. */
    double activeFraction = 0.0;
};

/** Compute the dataflow width profile of @p trace under @p cfg. */
WidthProfile widthProfile(const DynTrace &trace,
                          const MachineConfig &cfg);

/**
 * Buffering the pseudo-dataflow limit implicitly assumes.
 *
 * Table 2's "Pure" limits assume "an unlimited amount of buffer
 * storage is available to store temporary or intermediate results".
 * This measures how much that really is: scheduling the trace at its
 * pseudo-dataflow times, a value is buffered from its production
 * until its last consumer has started; the peak count of
 * simultaneously buffered values approximates the reservation
 * station / RUU capacity needed to reach the limit — directly
 * comparable with the RUU-size saturation points of Tables 7/8.
 */
struct BufferDemand
{
    std::uint64_t peakLiveValues = 0;
    double meanLiveValues = 0.0;
};

/** Measure the dataflow schedule's buffering demand. */
BufferDemand bufferDemand(const DynTrace &trace,
                          const MachineConfig &cfg);

/** Multi-line human-readable analysis of @p trace. */
std::string analyzeTrace(const DynTrace &trace,
                         const MachineConfig &cfg);

} // namespace mfusim

#endif // MFUSIM_DATAFLOW_TRACE_ANALYSIS_HH
