/**
 * @file
 * Periodic-structure detection implementation.
 */

#include "mfusim/dataflow/period_detector.hh"

#include <algorithm>

namespace mfusim
{

namespace
{

constexpr std::uint32_t kNoProd = DecodedTrace::kNoProducer;

/** Segments shorter than this many periods are not worth reporting.
 *  One period has no boundary pair to match; two periods already pay
 *  off once the segment's family was confirmed earlier in the run
 *  (the tracker then skips on the first in-segment match). */
constexpr std::size_t kMinPeriods = 2;

/** Static per-op signature equality (everything but the links). */
bool
sigEqual(const DecodedTrace &t, std::size_t a, std::size_t b)
{
    return t.op(a) == t.op(b) && t.fu(a) == t.fu(b) &&
        t.flags(a) == t.flags(b) && t.latency(a) == t.latency(b) &&
        t.occupancy(a) == t.occupancy(b) && t.dst(a) == t.dst(b) &&
        t.srcA(a) == t.srcA(b) && t.srcB(a) == t.srcB(b);
}

/**
 * Are the links of op @p i and its image one period earlier
 * compatible with exact periodicity?  Either both absent, or the
 * later one is the earlier one shifted by a period, or both name the
 * same fixed producer before the segment (loop-invariant operand).
 */
bool
linkOk(std::uint32_t cur, std::uint32_t prev, std::size_t period,
       std::size_t segBase)
{
    if (cur == kNoProd || prev == kNoProd)
        return cur == prev;
    if (cur == std::uint64_t(prev) + period)
        return true;
    return cur == prev && cur < segBase;
}

/**
 * Canonical body key of a segment: the per-op signature of its last
 * (steady-state) period with links normalized to backward distances.
 * Two segments with equal keys behave identically once their
 * per-iteration state converged, so they form one family.  The
 * encoding distinguishes absent links (0), in-segment links by their
 * distance, and pre-segment (loop-invariant) links by a marker; the
 * marker deliberately ignores *which* ancient op it is — families
 * only gate when the steady-state tracker trusts a first match, the
 * exactness of a skip always rests on the full state signature.
 */
std::vector<std::uint64_t>
familyKey(const DecodedTrace &t, std::size_t base, std::size_t period,
          std::size_t count)
{
    constexpr std::uint64_t kAncient = ~std::uint64_t(0);
    std::vector<std::uint64_t> key;
    key.reserve(1 + period * 11);
    key.push_back(period);
    const std::size_t start = base + (count - 1) * period;
    for (std::size_t i = start; i < start + period; ++i) {
        key.push_back(std::uint64_t(t.op(i)));
        key.push_back(std::uint64_t(t.fu(i)));
        key.push_back(t.flags(i));
        key.push_back(t.latency(i));
        key.push_back(t.occupancy(i));
        key.push_back(t.dst(i));
        key.push_back(t.srcA(i));
        key.push_back(t.srcB(i));
        for (const std::uint32_t link :
             { t.prodA(i), t.prodB(i), t.prevWriter(i) }) {
            if (link == kNoProd)
                key.push_back(0);
            else if (link < base)
                key.push_back(kAncient);
            else
                key.push_back(i - link);
        }
    }
    return key;
}

/** Ops [start, start+period) repeat ops [start-period, start). */
bool
periodMatches(const DecodedTrace &t, std::size_t start,
              std::size_t period, std::size_t segBase)
{
    for (std::size_t i = start; i < start + period; ++i) {
        if (!sigEqual(t, i, i - period))
            return false;
        if (!linkOk(t.prodA(i), t.prodA(i - period), period, segBase))
            return false;
        if (!linkOk(t.prodB(i), t.prodB(i - period), period, segBase))
            return false;
        if (!linkOk(t.prevWriter(i), t.prevWriter(i - period), period,
                    segBase)) {
            return false;
        }
    }
    return true;
}

} // namespace

TracePeriodicity
detectPeriods(const DecodedTrace &trace)
{
    TracePeriodicity out;
    const std::size_t n = trace.size();

    // Anchor candidates: positions of taken branches (back-edges).
    std::vector<std::size_t> anchors;
    for (std::size_t i = 0; i < n; ++i) {
        if (trace.isBranch(i) && trace.taken(i))
            anchors.push_back(i);
    }

    // Family assignment: canonical body keys of the segments found
    // so far, in family-id order.
    std::vector<std::vector<std::uint64_t>> familyKeys;

    std::size_t m = 0;
    while (m + 1 < anchors.size()) {
        const std::size_t period = anchors[m + 1] - anchors[m];
        const std::size_t segBase = anchors[m] + 1;
        // Periods run (anchor, next anchor]; the first candidate
        // period is ops [segBase, segBase + period).  Extend while
        // the branch spacing holds and each new period repeats the
        // previous one exactly.
        std::size_t count = 1;
        while (m + count + 1 < anchors.size() &&
               anchors[m + count + 1] - anchors[m + count] == period &&
               periodMatches(trace, segBase + count * period, period,
                             segBase)) {
            ++count;
        }
        if (count < kMinPeriods) {
            ++m;
            continue;
        }

        TraceSegment seg;
        seg.base = segBase;
        seg.period = period;
        seg.count = count;
        seg.lookback = period;
        // Harvest the dependence horizon, the fixed pre-segment
        // producers and the insert count from the last period: by
        // link compatibility, a link that still reaches before the
        // segment there is fixed in every period, and in-segment
        // link distances there are the steady-state distances.
        for (std::size_t i = segBase + (count - 1) * period;
             i < segBase + count * period; ++i) {
            if (!trace.isBranch(i))
                ++seg.inserts;
            for (const std::uint32_t link :
                 { trace.prodA(i), trace.prodB(i),
                   trace.prevWriter(i) }) {
                if (link == kNoProd)
                    continue;
                if (link < segBase)
                    seg.ancients.push_back(link);
                else
                    seg.lookback = std::max(seg.lookback, i - link);
            }
        }
        std::sort(seg.ancients.begin(), seg.ancients.end());
        seg.ancients.erase(std::unique(seg.ancients.begin(),
                                       seg.ancients.end()),
                           seg.ancients.end());
        std::vector<std::uint64_t> key =
            familyKey(trace, seg.base, seg.period, seg.count);
        const auto at = std::find(familyKeys.begin(),
                                  familyKeys.end(), key);
        seg.family = std::uint32_t(at - familyKeys.begin());
        if (at == familyKeys.end())
            familyKeys.push_back(std::move(key));
        out.coveredOps += seg.period * seg.count;
        out.segments.push_back(std::move(seg));
        // Resume after this segment's last anchor.
        m += count;
    }
    return out;
}

const TracePeriodicity &
DecodedTrace::periodicity() const
{
    // call_once so concurrent simulators analyzing the same shared
    // trace race safely; the analysis itself is deterministic.
    std::call_once(periodicityOnce_, [&] {
        periodicity_ =
            std::make_shared<const TracePeriodicity>(
                detectPeriods(*this));
    });
    return *periodicity_;
}

} // namespace mfusim
