/**
 * @file
 * Dataflow limit computation.
 */

#include "mfusim/dataflow/limits.hh"

#include <algorithm>
#include <array>

namespace mfusim
{

LimitResult
computeLimits(const DynTrace &trace, const MachineConfig &cfg,
              bool serialWaw, unsigned fuCopies, unsigned memPorts)
{
    return computeLimits(DecodedTrace(trace, cfg), serialWaw,
                         fuCopies, memPorts);
}

LimitResult
computeLimits(const DecodedTrace &trace, bool serialWaw,
              unsigned fuCopies, unsigned memPorts)
{
    const MachineConfig &cfg = trace.config();
    LimitResult result;
    if (trace.empty())
        return result;

    // ---- pseudo-dataflow: critical path with branch gating --------
    // valueReady: when the current value of each architectural
    // register exists (registers renamed: each write creates a new
    // value, so WAW/WAR impose nothing unless serialWaw).
    std::array<ClockCycle, kNumRegs> value_ready{};
    // lastDone: completion time of the previous writer of each
    // architectural register (for the serial constraint).
    std::array<ClockCycle, kNumRegs> last_done{};
    ClockCycle ctrl_ready = 0;      // resolve time of last branch
    ClockCycle critical = 0;

    const std::size_t n_ops = trace.size();
    for (std::size_t i = 0; i < n_ops; ++i) {
        const unsigned latency = trace.latency(i);
        const unsigned elements = trace.occupancy(i);
        const RegId srcA = trace.srcA(i);
        const RegId srcB = trace.srcB(i);
        const RegId dst = trace.dst(i);

        ClockCycle start = ctrl_ready;
        if (srcA != kNoReg)
            start = std::max(start, value_ready[srcA]);
        if (srcB != kNoReg)
            start = std::max(start, value_ready[srcB]);

        // Pure dataflow is elementwise for vector ops: the first
        // result element exists after one unit latency (perfect
        // chaining), the op completes after streaming all elements.
        ClockCycle done = start + latency + (elements - 1);
        if (serialWaw && dst != kNoReg) {
            // No buffering: must finish no earlier than the previous
            // writer of the same register.
            done = std::max(done, last_done[dst]);
        }

        if (trace.isBranch(i)) {
            // Later instructions (the next loop iteration) are gated
            // on this branch resolving.
            ctrl_ready = start + cfg.branchTime;
            critical = std::max(critical, ctrl_ready);
        } else {
            if (dst != kNoReg) {
                // A chained vector consumer sees the first element
                // one latency after the producer starts.
                value_ready[dst] = elements > 1 ?
                    start + latency + 1 : done;
                last_done[dst] = done;
            }
            critical = std::max(critical, done);
        }
    }

    // ---- resource limit: busiest functional unit ------------------
    const TraceStats &stats = trace.stats();
    ClockCycle resource = 0;
    for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
        const auto fu_class = static_cast<FuClass>(fu);
        if (fu_class == FuClass::kTransfer ||
            fu_class == FuClass::kBranch) {
            // Register data paths and the issue stage are not
            // functional-unit resources of the base machine.
            continue;
        }
        // A vector op holds its unit for one cycle per element: its
        // element count replaces its single perFu slot in the
        // class's busy time.
        std::uint64_t count = stats.perFu[fu] -
            stats.vectorOpsPerFu[fu] + stats.vectorElementsPerFu[fu];
        if (count == 0)
            continue;
        unsigned latency;
        if (fu_class == FuClass::kMemory) {
            latency = cfg.memLatency;
            count = (count + memPorts - 1) / memPorts;
        } else {
            count = (count + fuCopies - 1) / fuCopies;
        }
        if (fu_class != FuClass::kMemory) {
            // All ops of a class share the unit latency; find it
            // from any op of that class (fixed trait latency).
            latency = 0;
            for (unsigned o = 0; o < kNumOps; ++o) {
                if (traitsOf(static_cast<Op>(o)).fu == fu_class) {
                    latency = traitsOf(static_cast<Op>(o)).latency;
                    break;
                }
            }
        }
        resource = std::max(resource, ClockCycle(count + latency));
    }

    const double n = double(trace.size());
    result.pseudoCycles = critical;
    result.resourceCycles = resource;
    result.pseudoRate = critical == 0 ? 0.0 : n / double(critical);
    result.resourceRate = resource == 0 ? 0.0 : n / double(resource);
    if (result.resourceRate == 0.0)
        result.actualRate = result.pseudoRate;
    else
        result.actualRate =
            std::min(result.pseudoRate, result.resourceRate);
    return result;
}

} // namespace mfusim
